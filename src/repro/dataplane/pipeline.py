"""Newton switch pipeline.

Wires together ``newton_init`` (ternary traffic dispatch), the module
layout, and the installed query slices.  The pipeline executes packets the
way the paper's Figure 6 walkthrough describes: dispatch, then the query's
modules in logical order across the stages, then — under cross-switch
execution — snapshot the results for the next hop (``newton_fin``).

Rule banks are **epoch-versioned** for the transactional control plane
(:mod:`repro.ctrlplane`):

* ``install_slice`` places rules in the *active* bank (visible at once),
  preserving the original runtime-install behaviour;
* ``stage_slice`` places rules in a *shadow* bank tagged with a future
  rule epoch — physically resident (they consume table capacity and
  register space, the real cost of make-before-break) but invisible to
  packets until the epoch flip;
* ``retire_query`` marks the active version to stop serving at the flip;
* ``commit_epoch`` is the atomic flip (one counter write);
* ``rollback_epoch`` / ``abort_staged`` undo a partially applied
  transaction, restoring the prior bank exactly;
* ``gc_retired`` physically deletes entries no packet can reach anymore.

Packets are stamped with the ingress switch's rule epoch in their SP
header; downstream switches serve the stamped bank, so a packet observes
one consistent rule set end to end even while a multi-switch flip is in
progress.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.core.packet import Packet
from repro.core.rules import ModuleRuleSpec, QuerySlice, Report
from repro.dataplane.hashing import HashFamily
from repro.dataplane.layout import LayoutKind, ModuleLayout
from repro.dataplane.modules import (
    DEFAULT_REGISTER_ARRAY_SIZE,
    ExecutionEnv,
    StateBankModule,
)
from repro.dataplane.phv import PhvContext
from repro.dataplane.tables import (
    DEFAULT_TABLE_CAPACITY,
    TernaryRule,
    TernaryTable,
)
from repro.network.snapshot import SnapshotEntry, SnapshotHeader

__all__ = ["NewtonPipeline", "PipelineResult", "TOFINO_DEFAULT_STAGES"]

TOFINO_DEFAULT_STAGES = 12

#: Epoch-tagged storage key of one module rule: (qid, step, rule epoch).
StorageKey = Tuple[str, int, int]


@dataclass
class PipelineResult:
    """Outcome of pushing one packet through the pipeline."""

    reports: List[Report] = field(default_factory=list)
    initiated: List[str] = field(default_factory=list)
    continued: List[str] = field(default_factory=list)
    completed: List[str] = field(default_factory=list)
    #: qid -> rule-bank epoch of the version that served this packet
    #: (atomicity witness: across a path, each qid must map to one epoch).
    rule_epochs: Dict[str, int] = field(default_factory=dict)


@dataclass
class _Installed:
    """Book-keeping for one installed version of one slice."""

    query_slice: QuerySlice
    #: (local stage, spec, epoch-tagged storage key) per module rule.
    placed: Tuple[Tuple[int, ModuleRuleSpec, StorageKey], ...]
    init_rules: Tuple[TernaryRule, ...]
    #: First rule epoch this version serves.
    epoch_from: int
    #: Exclusive end of service (None = open); set by ``retire_query``.
    epoch_until: Optional[int] = None

    def valid_at(self, epoch: int) -> bool:
        if epoch < self.epoch_from:
            return False
        return self.epoch_until is None or epoch < self.epoch_until

    @property
    def entry_count(self) -> int:
        return len(self.placed) + len(self.init_rules)


class NewtonPipeline:
    """One switch's Newton component: dispatch + modules + slices."""

    def __init__(
        self,
        switch_id: object = "sw",
        num_stages: int = TOFINO_DEFAULT_STAGES,
        layout_kind: str = LayoutKind.COMPACT,
        table_capacity: int = DEFAULT_TABLE_CAPACITY,
        array_size: int = DEFAULT_REGISTER_ARRAY_SIZE,
        hash_family: Optional[HashFamily] = None,
        report_sink: Optional[Callable[[Report], None]] = None,
    ):
        self.switch_id = switch_id
        self.layout = ModuleLayout(
            num_stages=num_stages,
            kind=layout_kind,
            table_capacity=table_capacity,
            array_size=array_size,
        )
        self.newton_init: TernaryTable[str] = TernaryTable(
            name=f"newton_init@{switch_id}", capacity=table_capacity
        )
        #: All switches of a deployment share the hash family so CQE slices
        #: index registers consistently across hops.
        self.hash_family = hash_family or HashFamily()
        self.report_sink = report_sink
        #: Runtime invariant checker threaded into every packet's
        #: execution env (observe-only; ``None`` when sanitizing is off).
        self.sanitizer = None
        #: 100 ms measurement-window counter (register reset cadence).
        self.epoch = 0
        #: Active rule-bank epoch (flipped by the transaction manager).
        self.rule_epoch = 0
        #: Monotone counter bumped on every rule mutation (place, unplace,
        #: retire mark, epoch flip, abort).  Execution engines key their
        #: compiled rule-program caches on ``(rule_epoch, mutation_seq)``
        #: so a stale program can never serve a packet.
        self.mutation_seq = 0
        #: Shard execution filter (fabric plane): when set, ``newton_init``
        #: only dispatches the listed sub-query ids — the rules stay
        #: resident (placement, epochs, and admission are identical on
        #: every shard replica) but non-owned queries never initiate, so
        #: their registers, reports, and SP entries stay untouched here
        #: and live solely on the owning shard.  ``None`` = own everything.
        self.query_filter: Optional[FrozenSet[str]] = None
        #: (qid, slice_index) -> resident versions, oldest first.
        self._slices: Dict[Tuple[str, int], List[_Installed]] = {}

    # ------------------------------------------------------------------ #
    # Rule management                                                    #
    # ------------------------------------------------------------------ #

    def _versions(self, qid: str, slice_index: int) -> List[_Installed]:
        return self._slices.get((qid, slice_index), [])

    def _version_at(self, qid: str, slice_index: int,
                    at_epoch: int) -> Optional[_Installed]:
        for installed in self._versions(qid, slice_index):
            if installed.valid_at(at_epoch):
                return installed
        return None

    def _place(self, query_slice: QuerySlice, epoch_from: int,
               epoch_until: Optional[int] = None) -> _Installed:
        """Physically insert a slice's rules tagged with ``epoch_from``.

        Insertion is transactional at the switch level: a failure (full
        table, exhausted register array) rolls back everything already
        inserted — Newton must never wedge a running switch halfway
        through a rule operation.
        """
        placed: List[Tuple[int, ModuleRuleSpec, StorageKey]] = []
        init_rules: List[TernaryRule] = []
        # Make-before-break hint: when staging a future-epoch replacement
        # over a currently-active version of the same slice, the active
        # bank's register slices will free at post-commit GC — tell the
        # allocator so repeated hitless updates do not fragment the array
        # (see RegisterArray.allocate).
        vacating: Tuple[StorageKey, ...] = ()
        if epoch_from > self.rule_epoch:
            outgoing = self._version_at(
                query_slice.qid, query_slice.slice_index, self.rule_epoch
            )
            if outgoing is not None and outgoing.epoch_from != epoch_from:
                vacating = tuple(sk for _, _, sk in outgoing.placed)
        try:
            for spec in sorted(query_slice.specs, key=lambda s: s.step):
                local_stage = spec.stage - query_slice.stage_base
                module = self.layout.module_at(local_stage, spec.module_type)
                if module is None:
                    raise ValueError(
                        f"layout has no {spec.module_type.symbol} module in "
                        f"stage {local_stage}"
                    )
                storage_key: StorageKey = (spec.qid, spec.step, epoch_from)
                if vacating and isinstance(module, StateBankModule):
                    module.install(spec, key=storage_key, vacating=vacating)
                else:
                    module.install(spec, key=storage_key)
                placed.append((local_stage, spec, storage_key))
            for entry in query_slice.init_entries:
                rule = TernaryRule(
                    match=entry.match, priority=entry.priority, action=entry.qid
                )
                self.newton_init.insert(
                    rule, epoch_from=epoch_from, epoch_until=epoch_until
                )
                init_rules.append(rule)
        except Exception:
            for local_stage, spec, storage_key in placed:
                module = self.layout.module_at(local_stage, spec.module_type)
                assert module is not None
                module.remove(storage_key)
            for rule in init_rules:
                self.newton_init.remove(rule, epoch_from=epoch_from)
            raise
        return _Installed(
            query_slice=query_slice,
            placed=tuple(placed),
            init_rules=tuple(init_rules),
            epoch_from=epoch_from,
            epoch_until=epoch_until,
        )

    def _unplace(self, installed: _Installed) -> int:
        """Physically delete one version's rules; returns entries removed."""
        removed = 0
        for local_stage, spec, storage_key in installed.placed:
            module = self.layout.module_at(local_stage, spec.module_type)
            assert module is not None
            module.remove(storage_key)
            removed += 1
        for rule in installed.init_rules:
            self.newton_init.remove(rule, epoch_from=installed.epoch_from)
            removed += 1
        key = (installed.query_slice.qid, installed.query_slice.slice_index)
        versions = self._slices.get(key)
        if versions is not None:
            versions.remove(installed)
            if not versions:
                del self._slices[key]
        return removed

    def install_slice(self, query_slice: QuerySlice) -> int:
        """Install a slice into the active bank (visible immediately);
        returns the number of table entries added."""
        key = (query_slice.qid, query_slice.slice_index)
        if self._version_at(query_slice.qid, query_slice.slice_index,
                            self.rule_epoch) is not None:
            raise ValueError(
                f"slice {query_slice.slice_index} of query "
                f"{query_slice.qid!r} already installed"
            )
        installed = self._place(query_slice, epoch_from=self.rule_epoch)
        self._slices.setdefault(key, []).append(installed)
        self.mutation_seq += 1
        return installed.entry_count

    def stage_slice(self, query_slice: QuerySlice, epoch: int) -> int:
        """Install a slice into the shadow bank of rule epoch ``epoch``.

        The rules are resident (consuming real capacity) but serve no
        packet until :meth:`commit_epoch` flips to ``epoch``.
        """
        if epoch <= self.rule_epoch:
            raise ValueError(
                f"stage epoch {epoch} is not in the future "
                f"(active epoch {self.rule_epoch})"
            )
        if self.has_staged(query_slice.qid, query_slice.slice_index, epoch):
            raise ValueError(
                f"slice {query_slice.slice_index} of query "
                f"{query_slice.qid!r} already staged for epoch {epoch}"
            )
        installed = self._place(query_slice, epoch_from=epoch)
        key = (query_slice.qid, query_slice.slice_index)
        self._slices.setdefault(key, []).append(installed)
        self.mutation_seq += 1
        return installed.entry_count

    def has_staged(self, qid: str, slice_index: int, epoch: int) -> bool:
        """True iff this exact slice is already staged for ``epoch``
        (the idempotency probe for retried control messages)."""
        return any(
            installed.epoch_from == epoch
            for installed in self._versions(qid, slice_index)
        )

    def retire_query(self, qid: str, epoch: int) -> int:
        """Mark every active version of ``qid`` to stop serving at
        ``epoch``; returns the number of physical entries newly marked.

        Idempotent: re-marking with the same epoch is a no-op, so a
        retried control message after an acknowledgement loss is safe.
        """
        if epoch <= self.rule_epoch:
            raise ValueError(
                f"retire epoch {epoch} is not in the future "
                f"(active epoch {self.rule_epoch})"
            )
        marked = 0
        for (slice_qid, _), versions in self._slices.items():
            if slice_qid != qid:
                continue
            for installed in versions:
                if not installed.valid_at(self.rule_epoch):
                    continue
                if installed.epoch_until == epoch:
                    continue
                installed.epoch_until = epoch
                for rule in installed.init_rules:
                    self.newton_init.retire(
                        rule, epoch, epoch_from=installed.epoch_from
                    )
                marked += installed.entry_count
        if marked:
            self.mutation_seq += 1
        return marked

    def commit_epoch(self, epoch: int) -> bool:
        """Atomically flip the active rule bank to ``epoch``.

        Monotonic and idempotent; returns True iff the epoch advanced.
        """
        if epoch <= self.rule_epoch:
            return False
        self.rule_epoch = epoch
        self.mutation_seq += 1
        return True

    def rollback_epoch(self, epoch: int) -> bool:
        """Return to a prior rule epoch (partial-failure recovery).

        Only steps backwards; pair with :meth:`abort_staged` to also drop
        the now-unreachable shadow bank.
        """
        if epoch >= self.rule_epoch:
            return False
        self.rule_epoch = epoch
        self.mutation_seq += 1
        return True

    def abort_staged(self) -> int:
        """Drop every staged (future-epoch) version and clear pending
        retire marks, restoring the active bank exactly; returns the
        number of physical entries removed."""
        removed = 0
        staged = [
            installed
            for versions in list(self._slices.values())
            for installed in list(versions)
            if installed.epoch_from > self.rule_epoch
        ]
        for installed in staged:
            removed += self._unplace(installed)
        for versions in self._slices.values():
            for installed in versions:
                if (installed.epoch_until is not None
                        and installed.epoch_until > self.rule_epoch):
                    installed.epoch_until = None
        self.newton_init.unretire(self.rule_epoch)
        self.mutation_seq += 1
        return removed

    def gc_retired(self) -> int:
        """Physically delete versions retired at or before the active
        epoch; returns the number of table entries removed."""
        removed = 0
        retired = [
            installed
            for versions in list(self._slices.values())
            for installed in list(versions)
            if installed.epoch_until is not None
            and installed.epoch_until <= self.rule_epoch
        ]
        for installed in retired:
            removed += self._unplace(installed)
        return removed

    def wipe(self) -> int:
        """ASIC crash: every resident bank — active, staged, retired —
        and all register allocations are lost; returns entries removed.

        The rule epoch resets to 0 (the restarted ASIC knows nothing of
        the control plane's epoch sequence); the next commit or beacon
        re-synchronizes it.  Recovery must re-stage from the controller's
        placement records (:mod:`repro.resilience`).
        """
        removed = 0
        for versions in list(self._slices.values()):
            for installed in list(versions):
                removed += self._unplace(installed)
        self.rule_epoch = 0
        self.mutation_seq += 1
        return removed

    def remove_query(self, qid: str) -> int:
        """Remove every resident version of ``qid`` immediately; returns
        table entries removed.  (The direct, non-transactional path; the
        transactional controller retires + flips + garbage-collects.)"""
        removed = 0
        doomed = [
            installed
            for (slice_qid, _), versions in list(self._slices.items())
            if slice_qid == qid
            for installed in list(versions)
        ]
        for installed in doomed:
            removed += self._unplace(installed)
        return removed

    def version_for(self, qid: str, slice_index: int,
                    at_epoch: Optional[int] = None) -> Optional[_Installed]:
        """The installed version of a slice serving ``at_epoch`` (public
        handle for execution engines compiling rule programs)."""
        epoch = self.rule_epoch if at_epoch is None else at_epoch
        return self._version_at(qid, slice_index, epoch)

    def resident_versions(self):
        """Iterate ``(qid, slice_index, installed)`` over every resident
        version — active, staged, and retired-awaiting-GC alike."""
        for (qid, slice_index), versions in self._slices.items():
            for installed in versions:
                yield qid, slice_index, installed

    def hosts_slice(self, qid: str, slice_index: int,
                    at_epoch: Optional[int] = None) -> bool:
        epoch = self.rule_epoch if at_epoch is None else at_epoch
        return self._version_at(qid, slice_index, epoch) is not None

    def installed_qids(self) -> Tuple[str, ...]:
        return tuple(sorted({
            qid for (qid, index), versions in self._slices.items()
            for installed in versions
            if installed.valid_at(self.rule_epoch)
        }))

    def state_storage_key(
        self, qid: str, slice_index: int, rule_key: Tuple[str, int],
        at_epoch: Optional[int] = None,
    ) -> Optional[StorageKey]:
        """Storage key of the rule ``rule_key`` in the bank serving
        ``at_epoch`` (default: the active bank) — the epoch-aware handle
        register readout needs to address the right version's state."""
        epoch = self.rule_epoch if at_epoch is None else at_epoch
        installed = self._version_at(qid, slice_index, epoch)
        if installed is None:
            return None
        for _, spec, storage_key in installed.placed:
            if spec.key == rule_key:
                return storage_key
        return None

    @property
    def rule_count(self) -> int:
        """Total physical table entries resident (modules + dispatch),
        including staged and retired-awaiting-GC banks."""
        return (
            sum(
                len(installed.placed)
                for versions in self._slices.values()
                for installed in versions
            )
            + len(self.newton_init)
        )

    @property
    def staged_rule_count(self) -> int:
        """Physical entries in shadow banks (staged, not yet active)."""
        return sum(
            installed.entry_count
            for versions in self._slices.values()
            for installed in versions
            if installed.epoch_from > self.rule_epoch
        )

    @property
    def retired_rule_count(self) -> int:
        """Physical entries retired but not yet garbage-collected."""
        return sum(
            installed.entry_count
            for versions in self._slices.values()
            for installed in versions
            if installed.epoch_until is not None
            and installed.epoch_until <= self.rule_epoch
        )

    # ------------------------------------------------------------------ #
    # Packet processing                                                  #
    # ------------------------------------------------------------------ #

    def process(
        self,
        packet: Packet,
        snapshot: Optional[SnapshotHeader] = None,
        ingress_edge: bool = True,
    ) -> PipelineResult:
        """Push one packet through the Newton component.

        ``snapshot`` is the packet's SP header under cross-switch query
        execution; it is mutated in place (cursor advances, completed
        queries are stripped) exactly like ``newton_fin`` would on wire.

        ``ingress_edge`` is true when this switch is the packet's first
        hop.  On hardware, ``newton_init`` matches the ingress port so a
        query only initiates where monitored traffic *enters* the network;
        downstream switches merely continue in-flight queries.

        The ingress switch stamps its active rule epoch into the SP
        header; downstream switches serve the stamped bank, so the packet
        observes one consistent rule set even mid-flip.
        """
        result = PipelineResult()
        fields = packet.field_values()
        if snapshot is not None and ingress_edge:
            snapshot.rule_epoch = self.rule_epoch
        if snapshot is not None and snapshot.rule_epoch is not None:
            at_epoch = snapshot.rule_epoch
        else:
            at_epoch = self.rule_epoch
        env = ExecutionEnv(
            fields=fields,
            ts=packet.ts,
            epoch=self.epoch,
            switch_id=self.switch_id,
            hash_family=self.hash_family,
            report_sink=self.report_sink,
            sanitizer=self.sanitizer,
        )

        # Continue in-flight queries first (parser decodes SP, §5.1).
        if snapshot is not None:
            for qid, entry in snapshot.items():
                installed = self._version_at(qid, entry.cursor, at_epoch)
                if installed is None:
                    continue
                self._run_slice(installed, entry.ctx, env)
                entry.cursor += 1
                result.continued.append(qid)
                result.rule_epochs[qid] = installed.epoch_from
                if entry.complete or entry.ctx.stopped:
                    snapshot.pop(qid)
                    result.completed.append(qid)

        # Dispatch fresh queries via newton_init (first hop only).
        if not ingress_edge:
            result.reports = env.reports
            return result
        seen: set = set()
        for rule in self.newton_init.lookup_all(fields, at_epoch=at_epoch):
            qid = rule.action
            if (self.query_filter is not None
                    and qid not in self.query_filter):
                continue
            if qid in seen:
                continue
            seen.add(qid)
            if snapshot is not None and qid in snapshot:
                continue  # already in flight, do not re-initiate
            if qid in result.continued:
                continue
            installed = self._version_at(qid, 0, at_epoch)
            if installed is None:
                continue
            ctx = PhvContext()
            self._run_slice(installed, ctx, env)
            result.initiated.append(qid)
            result.rule_epochs[qid] = installed.epoch_from
            total = installed.query_slice.total_slices
            if total > 1 and not ctx.stopped:
                if snapshot is None:
                    raise RuntimeError(
                        f"query {qid!r} spans {total} switches but no SP "
                        f"header is available (single-switch processing)"
                    )
                snapshot.put(
                    qid, SnapshotEntry(cursor=1, total_slices=total, ctx=ctx)
                )
            else:
                result.completed.append(qid)

        result.reports = env.reports
        return result

    def _run_slice(self, installed: _Installed, ctx: PhvContext,
                   env: ExecutionEnv) -> None:
        for local_stage, spec, storage_key in installed.placed:
            if ctx.stopped:
                break
            module = self.layout.module_at(local_stage, spec.module_type)
            assert module is not None
            module.execute(spec, ctx, env, key=storage_key)

    # ------------------------------------------------------------------ #
    # Windows                                                            #
    # ------------------------------------------------------------------ #

    def advance_window(self) -> None:
        """Roll the 100 ms window: reset registers, bump the epoch."""
        self.epoch += 1
        for bank in self.layout.state_banks():
            assert isinstance(bank, StateBankModule)
            bank.reset_window()
