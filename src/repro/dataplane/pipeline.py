"""Newton switch pipeline.

Wires together ``newton_init`` (ternary traffic dispatch), the module
layout, and the installed query slices.  The pipeline executes packets the
way the paper's Figure 6 walkthrough describes: dispatch, then the query's
modules in logical order across the stages, then — under cross-switch
execution — snapshot the results for the next hop (``newton_fin``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.packet import Packet
from repro.core.rules import ModuleRuleSpec, QuerySlice, Report
from repro.dataplane.hashing import HashFamily
from repro.dataplane.layout import LayoutKind, ModuleLayout
from repro.dataplane.modules import (
    DEFAULT_REGISTER_ARRAY_SIZE,
    ExecutionEnv,
    StateBankModule,
)
from repro.dataplane.phv import PhvContext
from repro.dataplane.tables import (
    DEFAULT_TABLE_CAPACITY,
    TernaryRule,
    TernaryTable,
)
from repro.network.snapshot import SnapshotEntry, SnapshotHeader

__all__ = ["NewtonPipeline", "PipelineResult", "TOFINO_DEFAULT_STAGES"]

TOFINO_DEFAULT_STAGES = 12


@dataclass
class PipelineResult:
    """Outcome of pushing one packet through the pipeline."""

    reports: List[Report] = field(default_factory=list)
    initiated: List[str] = field(default_factory=list)
    continued: List[str] = field(default_factory=list)
    completed: List[str] = field(default_factory=list)


@dataclass
class _Installed:
    """Book-keeping for one installed slice."""

    query_slice: QuerySlice
    placed: Tuple[Tuple[int, ModuleRuleSpec], ...]  # (local stage, spec)
    init_rules: Tuple[TernaryRule, ...]


class NewtonPipeline:
    """One switch's Newton component: dispatch + modules + slices."""

    def __init__(
        self,
        switch_id: object = "sw",
        num_stages: int = TOFINO_DEFAULT_STAGES,
        layout_kind: str = LayoutKind.COMPACT,
        table_capacity: int = DEFAULT_TABLE_CAPACITY,
        array_size: int = DEFAULT_REGISTER_ARRAY_SIZE,
        hash_family: Optional[HashFamily] = None,
        report_sink: Optional[Callable[[Report], None]] = None,
    ):
        self.switch_id = switch_id
        self.layout = ModuleLayout(
            num_stages=num_stages,
            kind=layout_kind,
            table_capacity=table_capacity,
            array_size=array_size,
        )
        self.newton_init: TernaryTable[str] = TernaryTable(
            name=f"newton_init@{switch_id}", capacity=table_capacity
        )
        #: All switches of a deployment share the hash family so CQE slices
        #: index registers consistently across hops.
        self.hash_family = hash_family or HashFamily()
        self.report_sink = report_sink
        self.epoch = 0
        self._slices: Dict[Tuple[str, int], _Installed] = {}

    # ------------------------------------------------------------------ #
    # Rule management                                                    #
    # ------------------------------------------------------------------ #

    def install_slice(self, query_slice: QuerySlice) -> int:
        """Install a query slice; returns the number of table entries added.

        Installation is transactional: a failure (e.g. a full table or an
        exhausted register array) rolls back everything already inserted,
        leaving the pipeline untouched — Newton must never wedge a running
        switch halfway through a query operation.
        """
        key = (query_slice.qid, query_slice.slice_index)
        if key in self._slices:
            raise ValueError(
                f"slice {query_slice.slice_index} of query "
                f"{query_slice.qid!r} already installed"
            )
        placed: List[Tuple[int, ModuleRuleSpec]] = []
        init_rules: List[TernaryRule] = []
        installed_specs: List[ModuleRuleSpec] = []
        try:
            for spec in sorted(query_slice.specs, key=lambda s: s.step):
                local_stage = spec.stage - query_slice.stage_base
                module = self.layout.module_at(local_stage, spec.module_type)
                if module is None:
                    raise ValueError(
                        f"layout has no {spec.module_type.symbol} module in "
                        f"stage {local_stage}"
                    )
                module.install(spec)
                installed_specs.append(spec)
                placed.append((local_stage, spec))
            for entry in query_slice.init_entries:
                rule = TernaryRule(
                    match=entry.match, priority=entry.priority, action=entry.qid
                )
                self.newton_init.insert(rule)
                init_rules.append(rule)
        except Exception:
            for spec in installed_specs:
                local_stage = spec.stage - query_slice.stage_base
                module = self.layout.module_at(local_stage, spec.module_type)
                assert module is not None
                module.remove(spec.key)
            for rule in init_rules:
                self.newton_init.remove(rule)
            raise
        self._slices[key] = _Installed(
            query_slice=query_slice,
            placed=tuple(placed),
            init_rules=tuple(init_rules),
        )
        return len(placed) + len(init_rules)

    def remove_query(self, qid: str) -> int:
        """Remove every slice of ``qid``; returns table entries removed."""
        removed = 0
        for key in [k for k in self._slices if k[0] == qid]:
            installed = self._slices.pop(key)
            for local_stage, spec in installed.placed:
                module = self.layout.module_at(local_stage, spec.module_type)
                assert module is not None
                module.remove(spec.key)
                removed += 1
            for rule in installed.init_rules:
                self.newton_init.remove(rule)
                removed += 1
        return removed

    def hosts_slice(self, qid: str, slice_index: int) -> bool:
        return (qid, slice_index) in self._slices

    def installed_qids(self) -> Tuple[str, ...]:
        return tuple(sorted({qid for qid, _ in self._slices}))

    @property
    def rule_count(self) -> int:
        """Total table entries currently installed (modules + dispatch)."""
        return (
            sum(len(inst.placed) for inst in self._slices.values())
            + len(self.newton_init)
        )

    # ------------------------------------------------------------------ #
    # Packet processing                                                  #
    # ------------------------------------------------------------------ #

    def process(
        self,
        packet: Packet,
        snapshot: Optional[SnapshotHeader] = None,
        ingress_edge: bool = True,
    ) -> PipelineResult:
        """Push one packet through the Newton component.

        ``snapshot`` is the packet's SP header under cross-switch query
        execution; it is mutated in place (cursor advances, completed
        queries are stripped) exactly like ``newton_fin`` would on wire.

        ``ingress_edge`` is true when this switch is the packet's first
        hop.  On hardware, ``newton_init`` matches the ingress port so a
        query only initiates where monitored traffic *enters* the network;
        downstream switches merely continue in-flight queries.
        """
        result = PipelineResult()
        fields = packet.field_values()
        env = ExecutionEnv(
            fields=fields,
            ts=packet.ts,
            epoch=self.epoch,
            switch_id=self.switch_id,
            hash_family=self.hash_family,
            report_sink=self.report_sink,
        )

        # Continue in-flight queries first (parser decodes SP, §5.1).
        if snapshot is not None:
            for qid, entry in snapshot.items():
                installed = self._slices.get((qid, entry.cursor))
                if installed is None:
                    continue
                self._run_slice(installed, entry.ctx, env)
                entry.cursor += 1
                result.continued.append(qid)
                if entry.complete or entry.ctx.stopped:
                    snapshot.pop(qid)
                    result.completed.append(qid)

        # Dispatch fresh queries via newton_init (first hop only).
        if not ingress_edge:
            result.reports = env.reports
            return result
        seen: set = set()
        for rule in self.newton_init.lookup_all(fields):
            qid = rule.action
            if qid in seen:
                continue
            seen.add(qid)
            if snapshot is not None and qid in snapshot:
                continue  # already in flight, do not re-initiate
            if qid in result.continued:
                continue
            installed = self._slices.get((qid, 0))
            if installed is None:
                continue
            ctx = PhvContext()
            self._run_slice(installed, ctx, env)
            result.initiated.append(qid)
            total = installed.query_slice.total_slices
            if total > 1 and not ctx.stopped:
                if snapshot is None:
                    raise RuntimeError(
                        f"query {qid!r} spans {total} switches but no SP "
                        f"header is available (single-switch processing)"
                    )
                snapshot.put(
                    qid, SnapshotEntry(cursor=1, total_slices=total, ctx=ctx)
                )
            else:
                result.completed.append(qid)

        result.reports = env.reports
        return result

    def _run_slice(self, installed: _Installed, ctx: PhvContext,
                   env: ExecutionEnv) -> None:
        for local_stage, spec in installed.placed:
            if ctx.stopped:
                break
            module = self.layout.module_at(local_stage, spec.module_type)
            assert module is not None
            module.execute(spec, ctx, env)

    # ------------------------------------------------------------------ #
    # Windows                                                            #
    # ------------------------------------------------------------------ #

    def advance_window(self) -> None:
        """Roll the 100 ms window: reset registers, bump the epoch."""
        self.epoch += 1
        for bank in self.layout.state_banks():
            assert isinstance(bank, StateBankModule)
            bank.reset_window()
