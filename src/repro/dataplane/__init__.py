"""PISA data-plane substrate: stages, tables, registers, Newton modules."""
