"""Packet header vector (PHV) context for Newton module execution.

The compact module layout (paper §4.2) eliminates write-read dependencies
by giving the pipeline *two independent metadata sets* plus one shared
*global result* field.  A metadata set holds the operation keys written by
K, the hash result written by H, and the state result written by S; R reads
a state result and may update the global result.

:class:`PhvContext` is the mutable per-packet (and, under CQE, per-query)
execution state threaded through the modules.  The result snapshot protocol
serialises exactly this state between switches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["MetadataSet", "PhvContext", "NUM_METADATA_SETS"]

#: The compact layout provisions exactly two metadata sets (paper Figure 5).
NUM_METADATA_SETS = 2


@dataclass
class MetadataSet:
    """Operation keys + hash result + state result for one module chain."""

    #: Packed operation keys as produced by :meth:`FieldRegistry.pack`.
    oper_keys: bytes = b""
    #: Readable masked field values behind ``oper_keys`` (for reports).
    oper_fields: Dict[str, int] = field(default_factory=dict)
    #: Output of the H module (register index or direct field value).
    hash_result: Optional[int] = None
    #: Output of the S module (stateful ALU result, or forwarded hash).
    state_result: Optional[int] = None

    def clear(self) -> None:
        self.oper_keys = b""
        self.oper_fields = {}
        self.hash_result = None
        self.state_result = None

    def copy(self) -> "MetadataSet":
        return MetadataSet(
            oper_keys=self.oper_keys,
            oper_fields=dict(self.oper_fields),
            hash_result=self.hash_result,
            state_result=self.state_result,
        )


@dataclass
class PhvContext:
    """Per-packet execution state for one query program.

    ``stopped`` is set by an R module whose ternary match decides the query
    should not continue for this packet (e.g. a failed filter); subsequent
    modules of the query become no-ops, exactly like a gateway disabling
    later tables in hardware.
    """

    sets: list = None  # type: ignore[assignment]
    global_result: Optional[int] = None
    stopped: bool = False

    def __post_init__(self) -> None:
        if self.sets is None:
            self.sets = [MetadataSet() for _ in range(NUM_METADATA_SETS)]
        if len(self.sets) != NUM_METADATA_SETS:
            raise ValueError(
                f"PhvContext requires {NUM_METADATA_SETS} metadata sets, "
                f"got {len(self.sets)}"
            )

    def set(self, set_id: int) -> MetadataSet:
        """Metadata set by id (0 or 1).

        The paper draws these as the "blue" and "red" module chains; we use
        integer ids throughout the compiler and the schedule.
        """
        if set_id < 0 or set_id >= NUM_METADATA_SETS:
            raise IndexError(f"metadata set id out of range: {set_id}")
        return self.sets[set_id]

    def copy(self) -> "PhvContext":
        return PhvContext(
            sets=[s.copy() for s in self.sets],
            global_result=self.global_result,
            stopped=self.stopped,
        )

    def report_payload(self) -> Dict[str, object]:
        """The metadata snapshot uploaded by an R ``report`` action.

        Matches the paper's description of §4.3: operation keys, hash
        results, state results, and the global result travel to the
        software analyzer via mirroring.
        """
        payload: Dict[str, object] = {"global_result": self.global_result}
        for set_id, mset in enumerate(self.sets):
            payload[f"set{set_id}_fields"] = dict(mset.oper_fields)
            payload[f"set{set_id}_hash"] = mset.hash_result
            payload[f"set{set_id}_state"] = mset.state_result
        return payload
