"""ALU operation vocabulary.

The state bank (S) exposes four stateful ALUs executed transactionally on a
register (paper Figure 2): read, add, bitwise-or, and max.  ``|`` suffices
for Bloom filters, ``+`` for Count-Min sketches.  The result-process module
(R) additionally executes small stateless ALUs over results, e.g. ``min``
to merge Count-Min rows into the global result.

Register values saturate at the register width instead of wrapping, which
matches Tofino SALU saturating-add behaviour and keeps sketch counters
monotone within a window.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["StatefulOp", "ResultOp", "apply_stateful", "apply_result", "REGISTER_MAX"]

#: 32-bit registers, the common Tofino configuration.
REGISTER_MAX = (1 << 32) - 1


class StatefulOp(Enum):
    """Stateful ALU executed by S on the indexed register."""

    READ = "read"  # return register, leave unchanged
    ADD = "add"    # register += operand; return new value
    OR = "or"      # register |= operand; return new value
    MAX = "max"    # register = max(register, operand); return new value


class ResultOp(Enum):
    """Stateless ALU executed by R over (state result, global result)."""

    PASS = "pass"      # global_result := state_result
    ADD = "add"        # global_result += state_result
    SUB = "sub"        # global_result -= state_result (floored at 0)
    MIN = "min"        # global_result := min(global_result, state_result)
    MAX = "max"        # global_result := max(global_result, state_result)
    NOP = "nop"        # leave global_result untouched


def apply_stateful(op: StatefulOp, register_value: int, operand: int) -> int:
    """Return the post-operation register value (also the ALU output)."""
    if op is StatefulOp.READ:
        return register_value
    if op is StatefulOp.ADD:
        return min(register_value + operand, REGISTER_MAX)
    if op is StatefulOp.OR:
        return (register_value | operand) & REGISTER_MAX
    if op is StatefulOp.MAX:
        return min(max(register_value, operand), REGISTER_MAX)
    raise ValueError(f"unsupported stateful ALU: {op}")


def apply_result(op: ResultOp, global_result, state_result):
    """Fold ``state_result`` into ``global_result`` per the R-module ALU.

    ``None`` global results (no prior R executed) behave as the identity of
    the operation, so e.g. the first ``MIN`` simply loads the state result.
    """
    if op is ResultOp.NOP:
        return global_result
    if state_result is None:
        return global_result
    if op is ResultOp.PASS:
        return state_result
    if global_result is None:
        return state_result
    if op is ResultOp.ADD:
        return min(global_result + state_result, REGISTER_MAX)
    if op is ResultOp.SUB:
        return max(global_result - state_result, 0)
    if op is ResultOp.MIN:
        return min(global_result, state_result)
    if op is ResultOp.MAX:
        return max(global_result, state_result)
    raise ValueError(f"unsupported result ALU: {op}")
