"""Data-plane resource accounting.

Programmable pipelines slice seven resource categories evenly across
physical stages (paper §2.1): match crossbar bytes, SRAM and TCAM blocks,
VLIW action slots, hash bits, stateful ALUs, and gateways (if/else
predication).  Table 3 of the paper reports Newton's usage of each category
normalised by the total usage of ``switch.p4``.

The paper's percentages are mutually consistent with small *integer* unit
costs per module — e.g. every VLIW figure in Table 3 is a multiple of
1/284 — so this module stores those integer costs and the recovered
``switch.p4`` usage vector.  Dividing one by the other regenerates Table 3
to rounding error (see ``benchmarks/bench_table3.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dc_fields
from typing import Dict, Iterable

from repro.dataplane.module_types import ModuleType

__all__ = [
    "ResourceVector",
    "RESOURCE_CATEGORIES",
    "MODULE_COSTS",
    "STAGE_CAPACITY",
    "SWITCH_P4_USAGE",
    "TOFINO_STAGES",
]

#: Stages per Tofino pipeline (paper §4.3 cites 12).
TOFINO_STAGES = 12

RESOURCE_CATEGORIES = (
    "crossbar",
    "sram",
    "tcam",
    "vliw",
    "hash_bits",
    "salu",
    "gateway",
)


@dataclass(frozen=True)
class ResourceVector:
    """Usage or capacity across the seven resource categories."""

    crossbar: float = 0.0
    sram: float = 0.0
    tcam: float = 0.0
    vliw: float = 0.0
    hash_bits: float = 0.0
    salu: float = 0.0
    gateway: float = 0.0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            **{f.name: getattr(self, f.name) + getattr(other, f.name)
               for f in dc_fields(self)}
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            **{f.name: getattr(self, f.name) - getattr(other, f.name)
               for f in dc_fields(self)}
        )

    def __mul__(self, scalar: float) -> "ResourceVector":
        return ResourceVector(
            **{f.name: getattr(self, f.name) * scalar for f in dc_fields(self)}
        )

    __rmul__ = __mul__

    def fits_within(self, capacity: "ResourceVector") -> bool:
        """True when every category is within ``capacity``."""
        return all(
            getattr(self, name) <= getattr(capacity, name)
            for name in RESOURCE_CATEGORIES
        )

    def normalized_by(self, basis: "ResourceVector") -> Dict[str, float]:
        """Per-category percentage of ``basis`` (Table 3's presentation)."""
        out = {}
        for name in RESOURCE_CATEGORIES:
            base = getattr(basis, name)
            out[name] = 100.0 * getattr(self, name) / base if base else 0.0
        return out

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in RESOURCE_CATEGORIES}

    @staticmethod
    def total(vectors: Iterable["ResourceVector"]) -> "ResourceVector":
        acc = ResourceVector()
        for vec in vectors:
            acc = acc + vec
        return acc


#: Per-instance cost of each module (one table + 256 rules + its registers
#: in the S case), in absolute hardware units.  These integers reproduce
#: Table 3's per-module percentages under ``SWITCH_P4_USAGE`` normalisation.
MODULE_COSTS: Dict[ModuleType, ResourceVector] = {
    ModuleType.KEY_SELECTION: ResourceVector(
        crossbar=4, sram=8, tcam=0, vliw=10, hash_bits=9, salu=0, gateway=4
    ),
    ModuleType.HASH_CALCULATION: ResourceVector(
        crossbar=44, sram=4, tcam=0, vliw=2, hash_bits=13, salu=0, gateway=0
    ),
    ModuleType.STATE_BANK: ResourceVector(
        crossbar=20, sram=40, tcam=4, vliw=6, hash_bits=18, salu=2, gateway=0
    ),
    ModuleType.RESULT_PROCESS: ResourceVector(
        crossbar=10, sram=4, tcam=8, vliw=30, hash_bits=0, salu=0, gateway=0
    ),
}

#: Total resource usage of the reference ``switch.p4`` build, recovered from
#: Table 3 (every published percentage equals cost / this vector).
SWITCH_P4_USAGE = ResourceVector(
    crossbar=1641,
    sram=1136,
    tcam=186,
    vliw=284,
    hash_bits=818,
    salu=36,
    gateway=280,
)

#: Capacity of one physical stage.  Sized so a full compact-layout stage
#: (one module of each type) fits with headroom for co-resident forwarding
#: tables, while a fifth module of any type never fits a full stage — the
#: constraint that makes the compact layout "compact".
STAGE_CAPACITY = ResourceVector(
    crossbar=160,
    sram=96,
    tcam=44,
    vliw=64,
    hash_bits=104,
    salu=3,
    gateway=16,
)
