"""Register arrays for the state bank (S) module.

Each S module instance owns one register array.  The "adjustable range of
the hash result" (paper §4.1) means multiple queries can carve
non-overlapping slices out of one array; :class:`RegisterArray` manages
those allocations, executes stateful ALUs, and supports the per-window
resets required by ``reduce``/``distinct`` (values evaluated and reset
every 100 ms, paper §6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.dataplane.alu import REGISTER_MAX, StatefulOp, apply_stateful

__all__ = ["Allocation", "RegisterArray", "AllocationError"]


class AllocationError(RuntimeError):
    """Raised when a register array cannot satisfy an allocation request."""


@dataclass(frozen=True)
class Allocation:
    """A contiguous slice of a register array leased to one query step."""

    owner: Tuple
    offset: int
    size: int

    @property
    def end(self) -> int:
        return self.offset + self.size


class RegisterArray:
    """Fixed-size array of 32-bit registers with slice allocations.

    Allocations use a simple first-fit policy over the free gaps; data-plane
    register allocation on real switches is similarly static per rule
    installation, so first-fit is faithful enough while keeping fragmentation
    observable (which CQE exploits: an array too fragmented for one query
    can still serve smaller slices — paper §5.1).
    """

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError(f"register array size must be positive, got {size}")
        self.size = size
        self._cells = np.zeros(size, dtype=np.int64)
        self._allocations: Dict[Tuple, Allocation] = {}
        #: Whether any cell may be non-zero.  Every mutating path sets
        #: it; :meth:`reset_all` clears it and skips the zeroing sweep
        #: for untouched arrays — on window rollover only the banks that
        #: actually saw traffic pay for their reset.
        self._dirty = False

    # ------------------------------------------------------------------ #
    # Allocation management                                              #
    # ------------------------------------------------------------------ #

    def allocate(self, owner: Tuple, size: int,
                 vacating: Iterable[Tuple] = ()) -> Allocation:
        """Lease ``size`` contiguous registers to ``owner``.

        Plain requests use first fit.  ``vacating`` names co-resident
        owners whose slices are about to be released (the outgoing bank
        of a make-before-break update, freed at post-commit GC): the new
        slice still never overlaps them — they are physically live until
        GC — but among the gaps that fit, the anchor is chosen to
        maximise the *post-GC* largest contiguous free block.  Without
        this, back-to-back hitless updates oscillate a query's slice
        between the two ends of its free space and whether a later grow
        fits becomes a function of the re-plan count's parity.
        """
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        if owner in self._allocations:
            raise AllocationError(f"owner {owner!r} already holds an allocation")
        vacating_allocs = [
            self._allocations[v] for v in vacating if v in self._allocations
        ]
        if vacating_allocs:
            offset = self._find_anchor(size, vacating_allocs)
        else:
            offset = self._find_gap(size)
        if offset is None:
            raise AllocationError(
                f"register array exhausted: need {size}, "
                f"free {self.free_registers()} (fragmented)"
            )
        alloc = Allocation(owner=owner, offset=offset, size=size)
        self._allocations[owner] = alloc
        return alloc

    def release(self, owner: Tuple) -> None:
        """Return ``owner``'s slice to the free pool and zero it."""
        alloc = self._allocations.pop(owner, None)
        if alloc is None:
            raise AllocationError(f"owner {owner!r} holds no allocation")
        self._cells[alloc.offset:alloc.end] = 0

    def allocation(self, owner: Tuple) -> Optional[Allocation]:
        return self._allocations.get(owner)

    def allocations(self) -> Tuple[Allocation, ...]:
        return tuple(self._allocations.values())

    def free_registers(self) -> int:
        used = sum(a.size for a in self._allocations.values())
        return self.size - used

    def _find_gap(self, size: int) -> Optional[int]:
        taken = sorted(
            (a.offset, a.end) for a in self._allocations.values()
        )
        cursor = 0
        for start, end in taken:
            if start - cursor >= size:
                return cursor
            cursor = max(cursor, end)
        if self.size - cursor >= size:
            return cursor
        return None

    def _find_anchor(self, size: int,
                     vacating: List[Allocation]) -> Optional[int]:
        """Pick the gap anchor maximising the post-GC largest free run.

        Candidates are the two ends of every currently-free gap that can
        hold ``size`` (never inside ``vacating`` slices — those registers
        are still live).  Each candidate is scored by the largest
        contiguous free block remaining once the vacating slices have
        been released; ties break to the lowest offset, so the policy is
        deterministic and degrades to first fit when scores are equal.
        """
        taken = sorted(
            (a.offset, a.end) for a in self._allocations.values()
        )
        gaps: List[Tuple[int, int]] = []
        cursor = 0
        for start, end in taken:
            if start - cursor >= size:
                gaps.append((cursor, start))
            cursor = max(cursor, end)
        if self.size - cursor >= size:
            gaps.append((cursor, self.size))
        if not gaps:
            return None
        doomed = {(a.offset, a.end) for a in vacating}
        surviving = [iv for iv in (
            (a.offset, a.end) for a in self._allocations.values()
        ) if iv not in doomed]
        best: Optional[Tuple[Tuple[int, int], int]] = None
        for gap_start, gap_end in gaps:
            for cand in {gap_start, gap_end - size}:
                occupied = sorted(surviving + [(cand, cand + size)])
                largest = 0
                edge = 0
                for start, end in occupied:
                    largest = max(largest, start - edge)
                    edge = max(edge, end)
                largest = max(largest, self.size - edge)
                score = (largest, -cand)
                if best is None or score > best[0]:
                    best = (score, cand)
        assert best is not None
        return best[1]

    # ------------------------------------------------------------------ #
    # Stateful execution                                                 #
    # ------------------------------------------------------------------ #

    def execute(self, owner: Tuple, index: int, op: StatefulOp,
                operand: int) -> Tuple[int, int]:
        """Run a stateful ALU on register ``index`` within ``owner``'s slice.

        ``index`` is the hash result and is interpreted relative to the
        slice (``offset + index % size``) so queries never see each other's
        registers regardless of their hash ranges.

        Returns ``(old_value, new_value)`` — Tofino SALUs can emit either,
        and Bloom-filter test-and-set needs the old value.
        """
        alloc = self._allocations.get(owner)
        if alloc is None:
            raise AllocationError(f"owner {owner!r} holds no allocation")
        cell = alloc.offset + (index % alloc.size)
        old_value = int(self._cells[cell])
        new_value = apply_stateful(op, old_value, operand)
        if op is not StatefulOp.READ:
            self._cells[cell] = min(new_value, REGISTER_MAX)
            self._dirty = True
        return old_value, new_value

    def execute_many(self, owner: Tuple, indices: np.ndarray,
                     op: StatefulOp,
                     operands: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Batch of :meth:`execute` calls with sequential semantics.

        ``indices`` are hash results in packet order; ``operands`` must be
        non-negative (register values and packet fields always are), which
        is what lets saturation-at-``REGISTER_MAX`` commute with the
        grouped scans below.  Returns ``(old_values, new_values)`` per
        call, bit-identical to executing the loop one packet at a time,
        and stores each touched register's final value.
        """
        alloc = self._allocations.get(owner)
        if alloc is None:
            raise AllocationError(f"owner {owner!r} holds no allocation")
        cells = alloc.offset + (indices % alloc.size)
        return self._execute_cells(cells, op, operands)

    def _execute_cells(self, cells: np.ndarray, op: StatefulOp,
                       operands: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        n = len(cells)
        old = np.empty(n, dtype=np.int64)
        new = np.empty(n, dtype=np.int64)
        if n == 0:
            return old, new
        # Stable sort groups same-cell hits while preserving packet order
        # inside each group — the order the sequential ALU would see.
        order = np.argsort(cells, kind="stable")
        c = cells[order]
        v = operands[order].astype(np.int64, copy=False)
        base = self._cells[c]
        starts = np.empty(n, dtype=bool)
        starts[0] = True
        starts[1:] = c[1:] != c[:-1]
        ends = np.empty(n, dtype=bool)
        ends[:-1] = starts[1:]
        ends[-1] = True
        if op is StatefulOp.READ:
            out_old = base
            out_new = base
        elif op is StatefulOp.ADD:
            self._dirty = True
            # Exact: with non-negative operands the sequential
            # saturate-per-step equals the clipped prefix sum.
            cum = np.cumsum(v)
            excl_global = cum - v
            start_idx = np.maximum.accumulate(
                np.where(starts, np.arange(n), 0)
            )
            excl = excl_global - excl_global[start_idx]
            out_old = np.minimum(base + excl, REGISTER_MAX)
            out_new = np.minimum(base + excl + v, REGISTER_MAX)
            self._cells[c[ends]] = out_new[ends]
        elif op is StatefulOp.OR or op is StatefulOp.MAX:
            self._dirty = True
            excl = _segmented_exclusive_scan(v, c, starts, op)
            if op is StatefulOp.OR:
                out_old = (base | excl) & REGISTER_MAX
                out_new = (base | excl | v) & REGISTER_MAX
            else:
                out_old = np.minimum(np.maximum(base, excl), REGISTER_MAX)
                out_new = np.minimum(
                    np.maximum(out_old, v), REGISTER_MAX
                )
            self._cells[c[ends]] = out_new[ends]
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unsupported stateful ALU: {op}")
        old[order] = out_old
        new[order] = out_new
        return old, new

    @property
    def cells(self) -> np.ndarray:
        """The live register file (engine-internal bulk access)."""
        return self._cells

    def dump(self) -> np.ndarray:
        """Copy of the whole register file (for differential testing)."""
        return self._cells.copy()

    def read_slice(self, owner: Tuple) -> np.ndarray:
        """Copy of ``owner``'s registers (control-plane style readout)."""
        alloc = self._allocations.get(owner)
        if alloc is None:
            raise AllocationError(f"owner {owner!r} holds no allocation")
        return self._cells[alloc.offset:alloc.end].copy()

    def reset_slice(self, owner: Tuple) -> None:
        """Zero ``owner``'s registers (window rollover)."""
        alloc = self._allocations.get(owner)
        if alloc is None:
            raise AllocationError(f"owner {owner!r} holds no allocation")
        self._cells[alloc.offset:alloc.end] = 0

    def reset_all(self) -> None:
        if not self._dirty:
            return
        self._cells[:] = 0
        self._dirty = False

    def corrupt(self, fraction: float, rng) -> int:
        """Overwrite a seeded ``fraction`` of each allocation's cells
        with random values (fault injection); returns cells corrupted.

        ``rng`` is a :class:`random.Random`-like source, so the damage
        is deterministic per seed — the chaos suite depends on that.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("corruption fraction outside [0, 1]")
        corrupted = 0
        for alloc in self._allocations.values():
            hits = int(round(alloc.size * fraction))
            if hits <= 0:
                continue
            cells = rng.sample(range(alloc.offset, alloc.end), hits)
            for cell in cells:
                self._cells[cell] = rng.randrange(0, REGISTER_MAX + 1)
            corrupted += hits
        if corrupted:
            self._dirty = True
        return corrupted

    def occupancy(self) -> float:
        """Fraction of registers currently leased (for resource reports)."""
        return 1.0 - self.free_registers() / self.size


def _segmented_exclusive_scan(values: np.ndarray, groups: np.ndarray,
                              starts: np.ndarray,
                              op: StatefulOp) -> np.ndarray:
    """Exclusive OR/MAX scan within contiguous equal-``groups`` runs.

    The identity (0) is correct for both ops here because registers and
    operands are non-negative.  Constant operands (the overwhelmingly
    common ``+1`` / ``|1`` rules) short-circuit: OR and MAX are
    idempotent, so the exclusive scan is just "identity at group starts,
    the constant everywhere else".
    """
    n = len(values)
    if n and bool(np.all(values == values[0])):
        return np.where(starts, np.int64(0), values)
    # Shift by one within each group, then Hillis-Steele inclusive scan.
    # OR/MAX are idempotent, so overlapping windows are harmless.
    shifted = np.zeros(n, dtype=np.int64)
    same = ~starts[1:]
    shifted[1:][same] = values[:-1][same]
    combine = np.bitwise_or if op is StatefulOp.OR else np.maximum
    out = shifted
    d = 1
    while d < n:
        same_d = groups[d:] == groups[:-d]
        out[d:] = np.where(same_d, combine(out[d:], out[:-d]), out[d:])
        d *= 2
    return out
