"""Register arrays for the state bank (S) module.

Each S module instance owns one register array.  The "adjustable range of
the hash result" (paper §4.1) means multiple queries can carve
non-overlapping slices out of one array; :class:`RegisterArray` manages
those allocations, executes stateful ALUs, and supports the per-window
resets required by ``reduce``/``distinct`` (values evaluated and reset
every 100 ms, paper §6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.dataplane.alu import REGISTER_MAX, StatefulOp, apply_stateful

__all__ = ["Allocation", "RegisterArray", "AllocationError"]


class AllocationError(RuntimeError):
    """Raised when a register array cannot satisfy an allocation request."""


@dataclass(frozen=True)
class Allocation:
    """A contiguous slice of a register array leased to one query step."""

    owner: Tuple
    offset: int
    size: int

    @property
    def end(self) -> int:
        return self.offset + self.size


class RegisterArray:
    """Fixed-size array of 32-bit registers with slice allocations.

    Allocations use a simple first-fit policy over the free gaps; data-plane
    register allocation on real switches is similarly static per rule
    installation, so first-fit is faithful enough while keeping fragmentation
    observable (which CQE exploits: an array too fragmented for one query
    can still serve smaller slices — paper §5.1).
    """

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError(f"register array size must be positive, got {size}")
        self.size = size
        self._cells = np.zeros(size, dtype=np.int64)
        self._allocations: Dict[Tuple, Allocation] = {}

    # ------------------------------------------------------------------ #
    # Allocation management                                              #
    # ------------------------------------------------------------------ #

    def allocate(self, owner: Tuple, size: int) -> Allocation:
        """Lease ``size`` contiguous registers to ``owner`` (first fit)."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        if owner in self._allocations:
            raise AllocationError(f"owner {owner!r} already holds an allocation")
        offset = self._find_gap(size)
        if offset is None:
            raise AllocationError(
                f"register array exhausted: need {size}, "
                f"free {self.free_registers()} (fragmented)"
            )
        alloc = Allocation(owner=owner, offset=offset, size=size)
        self._allocations[owner] = alloc
        return alloc

    def release(self, owner: Tuple) -> None:
        """Return ``owner``'s slice to the free pool and zero it."""
        alloc = self._allocations.pop(owner, None)
        if alloc is None:
            raise AllocationError(f"owner {owner!r} holds no allocation")
        self._cells[alloc.offset:alloc.end] = 0

    def allocation(self, owner: Tuple) -> Optional[Allocation]:
        return self._allocations.get(owner)

    def allocations(self) -> Tuple[Allocation, ...]:
        return tuple(self._allocations.values())

    def free_registers(self) -> int:
        used = sum(a.size for a in self._allocations.values())
        return self.size - used

    def _find_gap(self, size: int) -> Optional[int]:
        taken = sorted(
            (a.offset, a.end) for a in self._allocations.values()
        )
        cursor = 0
        for start, end in taken:
            if start - cursor >= size:
                return cursor
            cursor = max(cursor, end)
        if self.size - cursor >= size:
            return cursor
        return None

    # ------------------------------------------------------------------ #
    # Stateful execution                                                 #
    # ------------------------------------------------------------------ #

    def execute(self, owner: Tuple, index: int, op: StatefulOp,
                operand: int) -> Tuple[int, int]:
        """Run a stateful ALU on register ``index`` within ``owner``'s slice.

        ``index`` is the hash result and is interpreted relative to the
        slice (``offset + index % size``) so queries never see each other's
        registers regardless of their hash ranges.

        Returns ``(old_value, new_value)`` — Tofino SALUs can emit either,
        and Bloom-filter test-and-set needs the old value.
        """
        alloc = self._allocations.get(owner)
        if alloc is None:
            raise AllocationError(f"owner {owner!r} holds no allocation")
        cell = alloc.offset + (index % alloc.size)
        old_value = int(self._cells[cell])
        new_value = apply_stateful(op, old_value, operand)
        if op is not StatefulOp.READ:
            self._cells[cell] = min(new_value, REGISTER_MAX)
        return old_value, new_value

    def read_slice(self, owner: Tuple) -> np.ndarray:
        """Copy of ``owner``'s registers (control-plane style readout)."""
        alloc = self._allocations.get(owner)
        if alloc is None:
            raise AllocationError(f"owner {owner!r} holds no allocation")
        return self._cells[alloc.offset:alloc.end].copy()

    def reset_slice(self, owner: Tuple) -> None:
        """Zero ``owner``'s registers (window rollover)."""
        alloc = self._allocations.get(owner)
        if alloc is None:
            raise AllocationError(f"owner {owner!r} holds no allocation")
        self._cells[alloc.offset:alloc.end] = 0

    def reset_all(self) -> None:
        self._cells[:] = 0

    def occupancy(self) -> float:
        """Fraction of registers currently leased (for resource reports)."""
        return 1.0 - self.free_registers() / self.size
