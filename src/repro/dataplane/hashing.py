"""Hash units for the H (hash calculation) module.

Programmable switches expose a small family of seeded CRC-style hash units
per stage.  We model them with a deterministic, seed-parameterised 64-bit
mix (blake2b-based for quality and portability) reduced into a configurable
output range.  The same family backs the Bloom-filter and Count-Min sketch
reference implementations so data-plane and software results agree bit for
bit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["HashUnit", "HashFamily", "hash_bytes"]


def hash_bytes(data: bytes, seed: int) -> int:
    """Seeded 64-bit hash of ``data``.

    Deterministic across processes and Python versions (unlike ``hash``),
    which keeps every experiment reproducible.
    """
    digest = hashlib.blake2b(
        data, digest_size=8, key=seed.to_bytes(8, "big", signed=False)
    ).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class HashUnit:
    """One configured hash engine: a seed plus an output range.

    ``range_size`` mirrors the H module's "adjustable range of the hash
    result" (paper §4.1), which is what lets the state bank slice one
    register array among queries.
    """

    seed: int
    range_size: int

    def __post_init__(self) -> None:
        if self.range_size <= 0:
            raise ValueError(f"hash range must be positive, got {self.range_size}")

    def __call__(self, key: bytes) -> int:
        return hash_bytes(key, self.seed) % self.range_size


class HashFamily:
    """A family of pairwise-independent-ish hash units sharing a base seed.

    Sketches ask for ``unit(i)`` for row *i*; two families with the same
    base seed produce identical units, which is how a query sliced across
    switches (CQE) keeps consistent indexing on every hop.
    """

    def __init__(self, base_seed: int = 0x5EED):
        self.base_seed = base_seed

    def unit(self, index: int, range_size: int) -> HashUnit:
        """The ``index``-th unit of the family with the given output range."""
        if index < 0:
            raise ValueError(f"hash family index must be >= 0, got {index}")
        # Golden-ratio stride decorrelates consecutive indices.
        seed = (self.base_seed + index * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        return HashUnit(seed=seed, range_size=range_size)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, HashFamily) and other.base_seed == self.base_seed

    def __hash__(self) -> int:
        return hash(("HashFamily", self.base_seed))
