"""Hash units for the H (hash calculation) module.

Programmable switches expose a small family of seeded CRC-style hash units
per stage.  We model them with a deterministic, seed-parameterised 64-bit
mix (blake2b-based for quality and portability) reduced into a configurable
output range.  The same family backs the Bloom-filter and Count-Min sketch
reference implementations so data-plane and software results agree bit for
bit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

__all__ = ["HashUnit", "HashFamily", "hash_bytes", "hash_rows"]

#: Entries per seed kept in a family's bulk memo cache before it is cleared;
#: bounds memory on arbitrarily long runs while keeping steady-state traces
#: (whose key population recurs window after window) fully memoised.
_BULK_CACHE_LIMIT = 1 << 21


def hash_bytes(data: bytes, seed: int) -> int:
    """Seeded 64-bit hash of ``data``.

    Deterministic across processes and Python versions (unlike ``hash``),
    which keeps every experiment reproducible.
    """
    digest = hashlib.blake2b(
        data, digest_size=8, key=seed.to_bytes(8, "big", signed=False)
    ).digest()
    return int.from_bytes(digest, "big")


def hash_rows(rows: np.ndarray, seed: int,
              cache: Optional[Dict[bytes, int]] = None) -> np.ndarray:
    """Vectorized :func:`hash_bytes` over fixed-width key rows.

    ``rows`` is a ``(n, key_width)`` uint8 matrix where each row is one
    packed operation key.  Bit-identical to hashing each row's bytes with
    :func:`hash_bytes`: the digest itself stays a per-key blake2b call, but
    it runs once per *unique* key (``np.unique`` over the raw rows) and the
    results are gathered back, which is what makes the vectorized engine's
    hashing cost scale with distinct flows instead of packets.

    ``cache`` optionally memoises ``key bytes -> hash`` across calls for
    one seed (see :meth:`HashFamily.bulk_cache`).
    """
    n = rows.shape[0]
    out = np.empty(n, dtype=np.uint64)
    if n == 0:
        return out
    width = rows.shape[1]
    if width == 0:
        out.fill(hash_bytes(b"", seed))
        return out
    rows = np.ascontiguousarray(rows, dtype=np.uint8)
    as_void = rows.view(np.dtype((np.void, width))).ravel()
    uniq, inverse = np.unique(as_void, return_inverse=True)
    digests = np.empty(len(uniq), dtype=np.uint64)
    if cache is None:
        for i, key in enumerate(uniq):
            digests[i] = hash_bytes(key.tobytes(), seed)
    else:
        for i, key in enumerate(uniq):
            raw = key.tobytes()
            value = cache.get(raw)
            if value is None:
                value = hash_bytes(raw, seed)
                cache[raw] = value
            digests[i] = value
    out[:] = digests[inverse]
    return out


@dataclass(frozen=True)
class HashUnit:
    """One configured hash engine: a seed plus an output range.

    ``range_size`` mirrors the H module's "adjustable range of the hash
    result" (paper §4.1), which is what lets the state bank slice one
    register array among queries.
    """

    seed: int
    range_size: int

    def __post_init__(self) -> None:
        if self.range_size <= 0:
            raise ValueError(f"hash range must be positive, got {self.range_size}")

    def __call__(self, key: bytes) -> int:
        return hash_bytes(key, self.seed) % self.range_size

    def many(self, rows: np.ndarray,
             cache: Optional[Dict[bytes, int]] = None) -> np.ndarray:
        """Vectorized ``__call__`` over packed key rows (int64 indices)."""
        hashed = hash_rows(rows, self.seed, cache)
        return (hashed % np.uint64(self.range_size)).astype(np.int64)


class HashFamily:
    """A family of pairwise-independent-ish hash units sharing a base seed.

    Sketches ask for ``unit(i)`` for row *i*; two families with the same
    base seed produce identical units, which is how a query sliced across
    switches (CQE) keeps consistent indexing on every hop.
    """

    def __init__(self, base_seed: int = 0x5EED):
        self.base_seed = base_seed
        self._bulk_caches: Dict[int, Dict[bytes, int]] = {}

    def unit(self, index: int, range_size: int) -> HashUnit:
        """The ``index``-th unit of the family with the given output range."""
        if index < 0:
            raise ValueError(f"hash family index must be >= 0, got {index}")
        # Golden-ratio stride decorrelates consecutive indices.
        seed = (self.base_seed + index * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        return HashUnit(seed=seed, range_size=range_size)

    def bulk_cache(self, seed: int) -> Dict[bytes, int]:
        """Per-seed ``key bytes -> hash`` memo for :func:`hash_rows`.

        Shared by every vectorized hash op using that seed; the contents
        are a pure function of the seed, so sharing never changes results.
        """
        cache = self._bulk_caches.setdefault(seed, {})
        if len(cache) > _BULK_CACHE_LIMIT:
            cache.clear()
        return cache

    def __eq__(self, other: object) -> bool:
        return isinstance(other, HashFamily) and other.base_seed == self.base_seed

    def __hash__(self) -> int:
        return hash(("HashFamily", self.base_seed))
