"""Module-type vocabulary shared across the data plane and the compiler."""

from __future__ import annotations

from enum import Enum

__all__ = ["ModuleType", "MODULE_ORDER"]


class ModuleType(Enum):
    """The four reconfigurable Newton modules (paper §4.1)."""

    KEY_SELECTION = "K"
    HASH_CALCULATION = "H"
    STATE_BANK = "S"
    RESULT_PROCESS = "R"

    @property
    def symbol(self) -> str:
        return self.value


#: Intra-suite dataflow order: K writes keys read by H, H writes the hash
#: result read by S, S writes the state result read by R (paper Figure 4).
MODULE_ORDER = (
    ModuleType.KEY_SELECTION,
    ModuleType.HASH_CALCULATION,
    ModuleType.STATE_BANK,
    ModuleType.RESULT_PROCESS,
)
