"""Refinement ladder: coarse-to-fine key granularities for one field.

Sonata's iterative refinement, adapted to Newton's compiler: a ladder is
an ordered list of bit-masks (*rungs*) for one key field, coarsest
first.  A managed query starts at rung 0 — its ``map``/``reduce`` keys
masked to e.g. ``dip/8`` — so one coarse sketch summarises the whole key
space.  When a coarse bucket turns hot (it shows up in the window's
heavy keys), the planner *zooms*: it installs a child query one rung
finer, scoped to that bucket by a ``MASK_EQ`` filter, and the ladder
recurses until full key granularity.  Each zoom is an ordinary verified
2PC install, so refinement children obey every invariant the fleet
analyzer enforces on hand-written queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.ast import GLOBAL_FIELDS
from repro.core.compiler import refine_query
from repro.core.query import Query

__all__ = ["RefinementLadder"]


def _prefix_mask(bits: int, width_mask: int) -> int:
    """Top-``bits`` prefix mask within a field of ``width_mask`` extent."""
    width = width_mask.bit_length()
    if not 0 < bits <= width:
        raise ValueError(f"prefix length {bits} out of range for "
                         f"{width}-bit field")
    return ((1 << bits) - 1) << (width - bits)


@dataclass(frozen=True)
class RefinementLadder:
    """Coarse-to-fine masks for one key field (``None`` = full width)."""

    field: str
    rungs: Tuple[Optional[int], ...]

    def __post_init__(self) -> None:
        width_mask = GLOBAL_FIELDS.get(self.field).max_value
        if len(self.rungs) < 2:
            raise ValueError("a ladder needs at least two rungs")
        previous = -1
        for rung, mask in enumerate(self.rungs):
            effective = width_mask if mask is None else mask
            bits = bin(effective & width_mask).count("1")
            if bits <= previous:
                raise ValueError(
                    f"rung {rung} ({effective:#x}) is not finer than "
                    f"the previous rung"
                )
            previous = bits

    @staticmethod
    def ipv4(field: str = "dip", start_bits: int = 8,
             step: int = 8) -> "RefinementLadder":
        """The classic /8 → /16 → /24 → /32 prefix ladder."""
        rungs = tuple(
            _prefix_mask(bits, 0xFFFFFFFF)
            for bits in range(start_bits, 33, step)
        )
        return RefinementLadder(field=field, rungs=rungs)

    @property
    def max_rung(self) -> int:
        return len(self.rungs) - 1

    def mask_at(self, rung: int) -> int:
        """Effective (fully-resolved) mask of one rung."""
        mask = self.rungs[rung]
        if mask is None:
            return GLOBAL_FIELDS.get(self.field).max_value
        return mask

    def coarse(self, query: Query) -> Query:
        """The rung-0 variant a managed query is first installed as."""
        return refine_query(query, self.field, self.rungs[0])

    def zoom(self, variant: Query, rung: int, prefix: int,
             child_qid: str) -> Query:
        """One rung finer, scoped to a hot prefix of the current rung.

        ``variant`` is the currently-installed query at ``rung`` (which
        already carries any outer zoom scopes), so recursive refinement
        composes: each level adds one ``MASK_EQ`` predicate and sharpens
        the key mask.
        """
        if rung >= self.max_rung:
            raise ValueError(
                f"query is already at full granularity (rung {rung})"
            )
        return refine_query(
            variant, self.field, self.rungs[rung + 1],
            qid=child_qid, scope=(prefix, self.mask_at(rung)),
        )
