"""Plan-transaction driver: PlanSteps → 2PC transactions, journaled.

The driver is the only component that touches the controller.  It takes
a decided list of :class:`~repro.planner.plan.PlanStep` and executes
them sequentially, each step as exactly one verified make-before-break
transaction (``install_query`` / ``update_query`` / ``remove_query`` —
all of which route through :class:`~repro.ctrlplane.TransactionManager`
and its static-verifier + fleet-analyzer gate).  A failed step rolls
back inside the control plane — the running version keeps serving — and
the driver stops, marking the remaining steps ``skipped``: later steps
may depend on resources an earlier step was meant to free.

The controller may be a single-process
:class:`~repro.core.controller.NewtonController` or a sharded facade's
fan-out controller — the driver is agnostic, which is what lets the
planner run unchanged at fabric scale.
"""

from __future__ import annotations

from typing import List, Optional

from repro.planner.plan import PlanStep

__all__ = ["PlanDriver", "PlanError"]


class PlanError(RuntimeError):
    """A plan step could not be executed (surfaced from the step)."""


class PlanDriver:
    """Executes plan steps against a controller, one transaction each."""

    def __init__(self, controller, registry=None):
        self.controller = controller
        self._steps_total = (
            registry.counter(
                "planner_steps_total",
                "plan steps executed, by kind/trigger/outcome",
            )
            if registry is not None else None
        )

    def execute(self, steps: List[PlanStep],
                stop_on_failure: bool = True) -> List[PlanStep]:
        """Run the steps in order; mutates and returns them."""
        failed_at: Optional[int] = None
        for index, step in enumerate(steps):
            if failed_at is not None:
                step.status = "skipped"
                step.error = f"step {steps[failed_at].seq} failed earlier"
                self._count(step)
                continue
            try:
                result = self._dispatch(step)
            except Exception as exc:
                step.status = "failed"
                step.error = f"{type(exc).__name__}: {exc}"
                if stop_on_failure:
                    failed_at = index
            else:
                step.status = "committed"
                step.delay_s = result.delay_s
                step.rules_staged = getattr(result, "rules_staged", 0)
                step.rules_removed = getattr(result, "rules_removed", 0)
            self._count(step)
        return steps

    def _dispatch(self, step: PlanStep):
        if step.kind == "install":
            return self.controller.install_query(
                step.query, step.params, **step.deploy
            )
        if step.kind == "update":
            return self.controller.update_query(
                step.query, step.params, **step.deploy
            )
        if step.kind == "remove":
            return self.controller.remove_query(step.qid)
        raise PlanError(f"unknown plan step kind {step.kind!r}")

    def _count(self, step: PlanStep) -> None:
        if self._steps_total is not None:
            self._steps_total.inc(
                kind=step.kind, trigger=step.trigger, outcome=step.status
            )
