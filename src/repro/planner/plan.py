"""Plan and PlanStep — the explicit, replayable unit of control change.

The original controller API is one-shot: ``install_query`` compiles,
verifies, places, and emits rules in a single opaque call.  The planner
needs those stages to be *explicit* — decided in one place, executed in
another, journaled, and inspectable over the service plane — so every
control-plane change it makes is reified as a :class:`PlanStep`: what to
do (install/update/remove), why (the trigger and a human-readable
reason), with which artifacts (query variant, params, deployment spec),
and what happened (status, transaction latency, rules moved).

:class:`QueryPlan` is the planner's durable per-query state: the
currently-installed variant, its ladder position, refinement children,
and the re-plan cooldown.  :class:`PlanExecution` bundles one planning
round's steps for journaling and ``plan_changed`` service events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.compiler import QueryParams
from repro.core.query import QueryLike

__all__ = ["PlanStep", "QueryPlan", "PlanExecution", "STEP_STATUSES"]

#: Lifecycle of one step: decided → executed (or not).
STEP_STATUSES = ("pending", "committed", "failed", "skipped")


@dataclass
class PlanStep:
    """One planner-decided control-plane change (= one 2PC transaction)."""

    kind: str  # "install" | "update" | "remove"
    qid: str
    trigger: str  # bootstrap|refine|coarsen|grow|shrink|rebalance|manual
    reason: str
    query: Optional[QueryLike] = None
    params: Optional[QueryParams] = None
    deploy: Dict[str, Any] = field(default_factory=dict)
    #: Window whose signals triggered the step (None for bootstrap).
    epoch: Optional[int] = None
    seq: int = 0
    status: str = "pending"
    error: Optional[str] = None
    #: Filled from the transaction result on commit.
    delay_s: float = 0.0
    rules_staged: int = 0
    rules_removed: int = 0
    #: Planner-internal bookkeeping applied on commit (child prefix,
    #: ladder rung, …); never serialized.
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "qid": self.qid,
            "trigger": self.trigger,
            "reason": self.reason,
            "epoch": self.epoch,
            "status": self.status,
            "error": self.error,
            "delay_s": self.delay_s,
            "rules_staged": self.rules_staged,
            "rules_removed": self.rules_removed,
            "params": (
                None if self.params is None else {
                    "cm_depth": self.params.cm_depth,
                    "bf_hashes": self.params.bf_hashes,
                    "reduce_registers": self.params.reduce_registers,
                    "distinct_registers": self.params.distinct_registers,
                }
            ),
            "deploy": {
                k: (list(v) if isinstance(v, tuple) else v)
                for k, v in self.deploy.items()
                if k in ("path", "edge_switches", "placement_method",
                         "stages_per_switch")
            },
        }


@dataclass
class QueryPlan:
    """The planner's live state for one managed query (or child)."""

    qid: str
    #: Currently-installed query variant (coarse/zoomed, not the intent).
    query: QueryLike = None  # type: ignore[assignment]
    params: QueryParams = QueryParams()
    deploy: Dict[str, Any] = field(default_factory=dict)
    #: Refinement ladder shared down the subtree (None = sizing only).
    ladder: Optional[Any] = None
    #: Ladder rung this variant's keys are masked at.
    rung: int = 0
    #: Child qid -> (rung, prefix value) covered by that child.
    children: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: Parent qid for refinement children, None for managed roots.
    parent: Optional[str] = None
    next_child: int = 0
    #: No re-plan of this query before this epoch (anti-thrash).
    cooldown_until: int = -1
    #: Consecutive signalled windows with zero reported keys (children).
    idle_windows: int = 0
    resizes: int = 0

    def in_cooldown(self, epoch: int) -> bool:
        return epoch < self.cooldown_until

    def covered(self, rung: int, prefix: int) -> bool:
        """Whether a child already zooms into this (rung, prefix)."""
        return (rung, prefix) in self.children.values()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qid": self.qid,
            "parent": self.parent,
            "rung": self.rung,
            "reduce_registers": self.params.reduce_registers,
            "children": {
                child: {"rung": rung, "prefix": prefix}
                for child, (rung, prefix) in sorted(self.children.items())
            },
            "cooldown_until": self.cooldown_until,
            "idle_windows": self.idle_windows,
            "resizes": self.resizes,
            "path": list(self.deploy.get("path", ())) or None,
        }


@dataclass
class PlanExecution:
    """One planning round: the steps decided for one window's signals."""

    epoch: int
    steps: List[PlanStep] = field(default_factory=list)

    @property
    def committed(self) -> List[PlanStep]:
        return [s for s in self.steps if s.status == "committed"]

    @property
    def failed(self) -> List[PlanStep]:
        return [s for s in self.steps if s.status == "failed"]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "steps": [s.to_dict() for s in self.steps],
        }
