"""The dynamic planner: window signals in, verified plan steps out.

One :class:`DynamicPlanner` manages any number of queries on one
deployment facade (single-process or sharded — anything exposing
``controller``, ``collector``, and ``switches``).  Per closed window it
reads the collector's :class:`~repro.collector.WindowSignals` and
decides, per managed query:

* **grow** — the final reduce's Count-Min row is loaded beyond
  ``occupancy_high`` (the runtime analogue of the NV701 accuracy
  budget).  The new size is clamped to hitless make-before-break
  headroom via :meth:`AdmissionPlanner.best_fit` on every hosting
  switch, so the staged copy always fits next to the running one.
* **shrink** — occupancy fell below ``occupancy_low``; halve back.
* **refine** — heavy keys surfaced and the query has ladder rungs left:
  zoom a child query into each uncovered hot prefix.
* **coarsen** — a refinement child saw ``child_idle_windows`` windows
  with no reported keys: remove it.
* **rebalance** — per-switch report skew crossed ``skew_ratio`` on a
  path deployment with spare switches: re-place off the busiest switch.

Committed steps update the plan state and start a per-query cooldown so
consecutive windows cannot thrash the control plane.  Every step is
journaled and exported as metrics; listeners (the service plane's SSE
feed) are notified per executed round.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional

from repro.collector.signals import QuerySignals, WindowSignals
from repro.core.admission import AdmissionPlanner
from repro.core.compiler import QueryParams
from repro.core.placement import offload_path, report_skew
from repro.core.query import QueryLike
from repro.planner.driver import PlanDriver, PlanError
from repro.planner.ladder import RefinementLadder
from repro.planner.plan import PlanExecution, PlanStep, QueryPlan

__all__ = ["DynamicPlanner", "PlannerConfig"]


@dataclass(frozen=True)
class PlannerConfig:
    """Re-plan triggers and bounds."""

    #: Grow the reduce sketch when its loaded CM-row fraction reaches this.
    occupancy_high: float = 0.5
    #: Shrink when occupancy falls to/below this (and size > min).
    occupancy_low: float = 0.02
    #: Per-step grow ceiling: ``current * grow_factor`` (and never above
    #: ``max_registers``); actual size is clamped to hitless headroom.
    grow_factor: int = 4
    max_registers: int = 4096
    min_registers: int = 128
    #: Windows a query rests after any committed re-plan (anti-thrash).
    cooldown_windows: int = 2
    #: Refinement children alive per parent at any time.
    max_children: int = 8
    #: Remove a child after this many consecutive no-result windows.
    child_idle_windows: int = 3
    #: Report-skew (max/mean) rebalance trigger; 0 disables rebalancing.
    skew_ratio: float = 0.0
    #: Journal length kept for the service plane.
    history_limit: int = 256


class DynamicPlanner:
    """Metrics-driven runtime re-planning over the 2PC control plane."""

    def __init__(self, deployment, config: PlannerConfig = PlannerConfig()):
        self.deployment = deployment
        self.config = config
        registry = deployment.collector.metrics
        self.driver = PlanDriver(deployment.controller, registry=registry)
        self.plans: Dict[str, QueryPlan] = {}
        self.history: List[PlanStep] = []
        self.last_epoch: Optional[int] = None
        self._seq = 0
        self._listeners: List[Callable[[PlanExecution], None]] = []
        self._g_managed = registry.gauge(
            "planner_managed_queries",
            "queries (roots + refinement children) under planner control",
        )
        self._g_managed.set(0)

    # ------------------------------------------------------------------ #
    # Management surface                                                 #
    # ------------------------------------------------------------------ #

    def manage(self, query: QueryLike, params: QueryParams = QueryParams(),
               ladder: Optional[RefinementLadder] = None,
               **deploy: Any) -> PlanStep:
        """Install a query under planner control (coarse rung first).

        With a ladder, the installed variant is the query at rung 0; the
        finer granularities arrive later as refinement children.  The
        install itself is a journaled bootstrap :class:`PlanStep`; a
        verification or admission failure raises :class:`PlanError` and
        leaves nothing installed.
        """
        if query.qid in self.plans:
            raise ValueError(f"query {query.qid!r} is already managed")
        variant = ladder.coarse(query) if ladder is not None else query
        step = self._step(
            kind="install", qid=query.qid, trigger="bootstrap",
            reason=(
                f"manage {query.qid!r}"
                + (f" at rung 0 ({ladder.field})" if ladder else "")
            ),
            query=variant, params=params, deploy=dict(deploy),
        )
        self.driver.execute([step])
        self.history.append(step)
        if step.status != "committed":
            raise PlanError(
                f"bootstrap install of {query.qid!r} failed: {step.error}"
            )
        self.plans[query.qid] = QueryPlan(
            qid=query.qid, query=variant, params=params,
            deploy=dict(deploy), ladder=ladder,
        )
        self._g_managed.set(len(self.plans))
        return step

    def release(self, qid: str, remove: bool = False) -> None:
        """Stop managing a query subtree (optionally removing its rules)."""
        for child in list(self.plans.get(qid, QueryPlan(qid)).children):
            self.release(child, remove=remove)
        plan = self.plans.pop(qid, None)
        if plan is None:
            return
        if plan.parent is not None and plan.parent in self.plans:
            self.plans[plan.parent].children.pop(qid, None)
        if remove:
            step = self._step(kind="remove", qid=qid, trigger="manual",
                              reason=f"release {qid!r}")
            self.driver.execute([step])
            self.history.append(step)
        self._g_managed.set(len(self.plans))

    def subscribe(self, listener: Callable[[PlanExecution], None]) -> None:
        """Register a plan_changed listener (called per executed round)."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------ #
    # Planning rounds                                                    #
    # ------------------------------------------------------------------ #

    def step(self, signals: Optional[WindowSignals] = None
             ) -> Optional[PlanExecution]:
        """Run one planning round over the latest (or given) signals.

        Returns ``None`` when there is nothing new to plan against —
        no signalled window yet, or this window was already planned.
        """
        if signals is None:
            signals = self.deployment.collector.latest_signals()
        if signals is None:
            return None
        if self.last_epoch is not None and signals.epoch <= self.last_epoch:
            return None
        self.last_epoch = signals.epoch
        steps = self.observe(signals)
        execution = PlanExecution(epoch=signals.epoch, steps=steps)
        if not steps:
            return execution
        self.driver.execute(steps)
        for step in steps:
            self._apply(step, signals.epoch)
        self.history.extend(steps)
        del self.history[:-self.config.history_limit]
        self._g_managed.set(len(self.plans))
        for listener in self._listeners:
            listener(execution)
        return execution

    def observe(self, signals: WindowSignals) -> List[PlanStep]:
        """Decide (but do not execute) this window's plan steps."""
        steps: List[PlanStep] = []
        skew = report_skew(signals.reports_by_switch)
        for qid in sorted(self.plans):
            plan = self.plans[qid]
            sig = self._signals_for(plan, signals)
            if plan.parent is not None:
                idle_step = self._observe_idle(plan, sig, signals.epoch)
                if idle_step is not None:
                    steps.append(idle_step)
                    continue
            if plan.in_cooldown(signals.epoch):
                continue
            steps.extend(self._observe_refine(plan, sig, signals.epoch))
            resize = self._observe_resize(plan, sig, signals.epoch)
            if resize is not None:
                steps.append(resize)
                continue  # one structural change per query per round
            rebalance = self._observe_rebalance(
                plan, skew, signals, signals.epoch
            )
            if rebalance is not None:
                steps.append(rebalance)
        return steps

    # ------------------------------------------------------------------ #
    # Individual triggers                                                #
    # ------------------------------------------------------------------ #

    def _observe_idle(self, plan: QueryPlan, sig: Optional[QuerySignals],
                      epoch: int) -> Optional[PlanStep]:
        """Track child idleness; emit the coarsen step when it expires."""
        if sig is not None and sig.reported_keys > 0:
            plan.idle_windows = 0
            return None
        plan.idle_windows += 1
        if plan.idle_windows < self.config.child_idle_windows:
            return None
        return self._step(
            kind="remove", qid=plan.qid, trigger="coarsen",
            reason=(
                f"{plan.qid!r} idle for {plan.idle_windows} windows; "
                f"zooming back out"
            ),
            epoch=epoch,
        )

    def _observe_refine(self, plan: QueryPlan,
                        sig: Optional[QuerySignals],
                        epoch: int) -> List[PlanStep]:
        ladder = plan.ladder
        if (ladder is None or sig is None or not sig.heavy_keys
                or plan.rung >= ladder.max_rung):
            return []
        try:
            key_index = sig.key_fields.index(ladder.field)
        except ValueError:
            return []
        steps: List[PlanStep] = []
        budget = self.config.max_children - len(plan.children)
        for key, count in sig.heavy_keys:
            if budget <= 0:
                break
            prefix = key[key_index]
            if plan.covered(plan.rung, prefix):
                continue
            child_qid = f"{plan.qid}.r{plan.next_child}"
            plan.next_child += 1
            budget -= 1
            child = ladder.zoom(plan.query, plan.rung, prefix, child_qid)
            steps.append(self._step(
                kind="install", qid=child_qid, trigger="refine",
                reason=(
                    f"hot prefix {ladder.field}&{ladder.mask_at(plan.rung):#x}"
                    f"=={prefix:#x} (count {count}); zoom to rung "
                    f"{plan.rung + 1}"
                ),
                query=child, params=plan.params, deploy=dict(plan.deploy),
                epoch=epoch,
                meta={"parent": plan.qid, "rung": plan.rung + 1,
                      "prefix": prefix},
            ))
        return steps

    def _observe_resize(self, plan: QueryPlan,
                        sig: Optional[QuerySignals],
                        epoch: int) -> Optional[PlanStep]:
        cfg = self.config
        if sig is None or sig.occupancy is None:
            return None
        current = plan.params.reduce_registers
        if sig.occupancy >= cfg.occupancy_high and current < cfg.max_registers:
            candidate = self._grow_candidate(plan)
            if candidate is None:
                return None
            return self._step(
                kind="update", qid=plan.qid, trigger="grow",
                reason=(
                    f"occupancy {sig.occupancy:.2f} >= "
                    f"{cfg.occupancy_high}: reduce registers "
                    f"{current} -> {candidate.reduce_registers}"
                ),
                query=plan.query, params=candidate,
                deploy=dict(plan.deploy), epoch=epoch,
            )
        if (sig.occupancy <= cfg.occupancy_low
                and current > cfg.min_registers and plan.resizes > 0):
            candidate = replace(
                plan.params,
                reduce_registers=max(cfg.min_registers, current // 2),
            )
            return self._step(
                kind="update", qid=plan.qid, trigger="shrink",
                reason=(
                    f"occupancy {sig.occupancy:.2f} <= "
                    f"{cfg.occupancy_low}: reduce registers "
                    f"{current} -> {candidate.reduce_registers}"
                ),
                query=plan.query, params=candidate,
                deploy=dict(plan.deploy), epoch=epoch,
            )
        return None

    def _grow_candidate(self, plan: QueryPlan) -> Optional[QueryParams]:
        """Largest grow that stages hitlessly on *every* hosting switch."""
        cfg = self.config
        record = self.deployment.controller.installed.get(plan.qid)
        if record is None:
            return None
        ceiling = min(cfg.max_registers,
                      plan.params.reduce_registers * cfg.grow_factor)
        best: Optional[QueryParams] = None
        for sid in record.by_switch:
            admission = AdmissionPlanner(
                self.deployment.switches[sid], opts=record.opts
            )
            fit = admission.best_fit(record.query, plan.params, ceiling)
            if fit is None:
                return None  # one hosting switch lacks headroom: defer
            if (best is None
                    or fit.reduce_registers < best.reduce_registers):
                best = fit
        return best

    def _observe_rebalance(self, plan: QueryPlan, skew: float,
                           signals: WindowSignals,
                           epoch: int) -> Optional[PlanStep]:
        cfg = self.config
        if cfg.skew_ratio <= 0 or skew < cfg.skew_ratio:
            return None
        path = plan.deploy.get("path")
        if not path:
            return None
        record = self.deployment.controller.installed.get(plan.qid)
        if record is None:
            return None
        needed = max(len(s) for s in record.slices.values())
        pruned = offload_path(tuple(path), signals.reports_by_switch,
                              min_len=needed)
        if pruned is None or tuple(pruned) == tuple(path):
            return None
        deploy = dict(plan.deploy)
        deploy["path"] = pruned
        dropped = set(path) - set(pruned)
        return self._step(
            kind="update", qid=plan.qid, trigger="rebalance",
            reason=(
                f"report skew {skew:.2f} >= {cfg.skew_ratio}: move "
                f"slices off {sorted(map(str, dropped))}"
            ),
            query=plan.query, params=plan.params, deploy=deploy,
            epoch=epoch,
        )

    # ------------------------------------------------------------------ #
    # State transitions & introspection                                  #
    # ------------------------------------------------------------------ #

    def _apply(self, step: PlanStep, epoch: int) -> None:
        cooldown = epoch + self.config.cooldown_windows
        if step.status != "committed":
            # Leave the plan unchanged but rest the query anyway: the
            # same signals would re-trigger the same failing step.
            plan = self.plans.get(step.qid) or self.plans.get(
                step.meta.get("parent", "")
            )
            if plan is not None:
                plan.cooldown_until = max(plan.cooldown_until, cooldown)
            return
        if step.trigger == "refine":
            parent = self.plans[step.meta["parent"]]
            parent.children[step.qid] = (parent.rung, step.meta["prefix"])
            parent.cooldown_until = cooldown
            self.plans[step.qid] = QueryPlan(
                qid=step.qid, query=step.query, params=step.params,
                deploy=dict(step.deploy), ladder=parent.ladder,
                rung=step.meta["rung"], parent=parent.qid,
                cooldown_until=cooldown,
            )
            return
        if step.trigger == "coarsen":
            plan = self.plans.pop(step.qid, None)
            if plan is not None and plan.parent in self.plans:
                parent = self.plans[plan.parent]
                parent.children.pop(step.qid, None)
                parent.cooldown_until = max(parent.cooldown_until, cooldown)
            # Orphaned grandchildren (if any) are removed on their own
            # idle expiry: their traffic scope died with this child.
            return
        plan = self.plans.get(step.qid)
        if plan is None:
            return
        if step.trigger in ("grow", "shrink"):
            plan.params = step.params
            plan.resizes += 1
        elif step.trigger == "rebalance":
            plan.deploy = dict(step.deploy)
        plan.cooldown_until = cooldown

    def _signals_for(self, plan: QueryPlan,
                     signals: WindowSignals) -> Optional[QuerySignals]:
        """This query's feedback: the final (reduce-carrying) sub-query."""
        candidates = [s for s in signals.queries if s.top_qid == plan.qid]
        if not candidates:
            return None
        for sig in candidates:
            if sig.sub_qid == plan.qid:
                return sig
        for sig in candidates:
            if sig.occupancy is not None:
                return sig
        return candidates[0]

    def _step(self, **kwargs: Any) -> PlanStep:
        self._seq += 1
        return PlanStep(seq=self._seq, **kwargs)

    def state(self) -> Dict[str, Any]:
        """JSON-ready snapshot for ``GET /plan``."""
        return {
            "last_epoch": self.last_epoch,
            "managed": len(self.plans),
            "queries": [
                self.plans[qid].to_dict() for qid in sorted(self.plans)
            ],
            "history": [s.to_dict() for s in self.history[-50:]],
            "config": {
                "occupancy_high": self.config.occupancy_high,
                "occupancy_low": self.config.occupancy_low,
                "grow_factor": self.config.grow_factor,
                "max_registers": self.config.max_registers,
                "min_registers": self.config.min_registers,
                "cooldown_windows": self.config.cooldown_windows,
                "max_children": self.config.max_children,
                "child_idle_windows": self.config.child_idle_windows,
                "skew_ratio": self.config.skew_ratio,
            },
        }
