"""Dynamic query planner: iterative refinement + runtime re-planning.

Newton compiles each intent once; this layer (Sonata's iterative
refinement and DynamiQ's "planning for dynamics", see PAPERS.md) makes
the plan live.  Queries are installed coarse first (prefix-masked keys
from a :class:`RefinementLadder`), then the planner watches the
collection plane's per-window :class:`~repro.collector.WindowSignals` —
sketch occupancy against the NV701 budget, heavy keys, per-switch report
skew — and re-plans at runtime:

* **refine** — zoom into a hot prefix: install a child query one ladder
  rung finer, scoped to the prefix by a ``MASK_EQ`` filter;
* **coarsen** — remove a child that has gone idle;
* **grow** / **shrink** — resize the reduce sketch within hitless
  make-before-break headroom (:meth:`AdmissionPlanner.best_fit`);
* **rebalance** — move slices off a report-skewed switch of a path
  deployment (:func:`~repro.core.placement.offload_path`).

Every decision is an explicit, journaled :class:`PlanStep`; the
:class:`PlanDriver` executes each step as one verified make-before-break
2PC transaction through the controller facade — a plain
:class:`~repro.network.deployment.Deployment` or a
:class:`~repro.fabric.sharded.ShardedDeployment`, whose fan-out
controller replays every step through the per-shard RPC unchanged.
"""

from repro.planner.driver import PlanDriver, PlanError
from repro.planner.ladder import RefinementLadder
from repro.planner.plan import PlanExecution, PlanStep, QueryPlan
from repro.planner.planner import DynamicPlanner, PlannerConfig

__all__ = [
    "DynamicPlanner",
    "PlanDriver",
    "PlanError",
    "PlanExecution",
    "PlanStep",
    "PlannerConfig",
    "QueryPlan",
    "RefinementLadder",
]
