"""Accuracy budgeting against a declared workload (codes NV701–NV703).

NV301–NV303 judge a sketch's geometry in the abstract (error *factors*,
failure probabilities).  Given an operator-declared expected flow
cardinality ``N`` for the deployment, the fleet pass turns those factors
into concrete budget verdicts:

* **NV701** — Count-Min load ``N / width`` exceeds the configured bound:
  the average counter aggregates several flows, so threshold comparisons
  (``where ge=T``) fire on collision sums, not per-key counts.
* **NV702** — Bloom false-positive rate at the *declared* load,
  ``(1 - e^(-N/m'))^k``, exceeds the bound: ``distinct`` wrongly
  suppresses first-seen keys at this workload.
* **NV703** — a Count-Min row is narrower than ``N`` itself: the sketch
  *cannot* give per-flow estimates at the declared cardinality by
  pigeonhole — an under-provisioned sketch, reported as an error.

All three recover sketch geometry from the placed rules exactly as the
per-query pass does; they stay silent when no expected cardinality is
declared.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

from repro.core.compiler import CompiledQuery
from repro.core.rules import SConfig
from repro.dataplane.alu import StatefulOp
from repro.dataplane.module_types import ModuleType
from repro.verify.diagnostics import Diagnostic, Location, Severity
from repro.verify.sketch import DEFAULT_MAX_FPR

__all__ = ["check_accuracy_budget", "DEFAULT_CM_LOAD"]

#: Default acceptable Count-Min load factor (flows per counter).
DEFAULT_CM_LOAD = 0.5


def _sketch_geometries(
    comp: CompiledQuery,
) -> List[Tuple[int, bool, int, int]]:
    """``(first step, is_bloom, depth/k, width)`` per recovered sketch."""
    sketches: Dict[int, List[Tuple[int, SConfig]]] = defaultdict(list)
    first_step: Dict[int, int] = {}
    for spec in sorted(comp.specs, key=lambda s: s.step):
        if spec.module_type is not ModuleType.STATE_BANK:
            continue
        config = spec.config
        if not isinstance(config, SConfig) or config.passthrough:
            continue
        sketches[spec.primitive_index].append((spec.suite_index, config))
        first_step.setdefault(spec.primitive_index, spec.step)
    out: List[Tuple[int, bool, int, int]] = []
    for prim_index, suite_rows in sorted(sketches.items()):
        rows = [config for _, config in suite_rows]
        is_bloom = (
            min(index for index, _ in suite_rows) == 0
            and all(
                row.op is StatefulOp.OR and row.output_old for row in rows
            )
        )
        if not is_bloom and not all(
            row.op is StatefulOp.ADD for row in rows
        ):
            continue  # not a counting sketch (e.g. MAX register)
        width = min(row.slice_size for row in rows)
        out.append((first_step[prim_index], is_bloom, len(rows), width))
    return out


def check_accuracy_budget(
    compiled: Sequence[CompiledQuery],
    expected_flows: int,
    cm_load: float = DEFAULT_CM_LOAD,
    max_fpr: float = DEFAULT_MAX_FPR,
) -> List[Diagnostic]:
    """NV701–NV703 for every sketch at the declared flow cardinality."""
    out: List[Diagnostic] = []
    if expected_flows <= 0:
        return out
    for comp in compiled:
        for step, is_bloom, depth, width in _sketch_geometries(comp):
            location = Location(qid=comp.qid, step=step)
            if is_bloom:
                fpr = (1.0 - math.exp(-expected_flows / width)) ** depth
                if fpr > max_fpr:
                    out.append(Diagnostic(
                        severity=Severity.WARNING,
                        code="NV702",
                        message=(
                            f"Bloom filter ({depth} hash(es), {width} "
                            f"bits/row) reaches a false-positive rate of "
                            f"{fpr:.3f} at the declared {expected_flows} "
                            f"flows (bound {max_fpr:g}); distinct will "
                            f"suppress first-seen keys at this workload"
                        ),
                        location=location,
                    ))
                continue
            load = expected_flows / width
            if width < expected_flows:
                out.append(Diagnostic(
                    severity=Severity.ERROR,
                    code="NV703",
                    message=(
                        f"under-provisioned sketch: Count-Min width "
                        f"{width} is below the declared {expected_flows} "
                        f"flows — every counter aggregates "
                        f"{load:.1f} flows on average and per-flow "
                        f"estimates are impossible by pigeonhole; widen "
                        f"the row or shard the query"
                    ),
                    location=location,
                ))
            elif load > cm_load:
                out.append(Diagnostic(
                    severity=Severity.WARNING,
                    code="NV701",
                    message=(
                        f"Count-Min load {load:.2f} flows/counter "
                        f"exceeds the budget {cm_load:g} at the declared "
                        f"{expected_flows} flows (width {width}, depth "
                        f"{depth}); threshold tests will fire on "
                        f"collision sums"
                    ),
                    location=location,
                ))
    return out
