"""Cross-query interference over resident state (codes NV401–NV403).

Per-query admission is sound for one query at a time; these passes look
at what several admitted queries do to *each other* once co-resident on
one switch:

* **NV401** — fleet occupancy versus a deployment policy: the union of
  every resident bank (active + staged + un-collected retired residue)
  exceeds a :class:`~repro.verify.program.PipelineModel` the operator
  declared as the budget envelope.  The simulator's own allocator makes
  physical over-subscription impossible, so this is an *audit* pass: it
  fires when the fleet outgrows a tighter headroom target (e.g. "keep
  25% of every stage free for emergency installs").
* **NV402** — two co-resident banks of different queries drive the same
  physical :class:`~repro.dataplane.hashing.HashUnit` (same
  ``(seed_index, range_size)``) while their dispatch entries overlap:
  every shared packet indexes both sketches at correlated positions.
  Broader than NV304 (which also requires identical key masks) because
  unit reuse alone already couples collision *patterns* across queries.
* **NV403** — concrete-table dispatch starvation: a ``newton_init``
  entry fully contained in another query's entry that wins single-winner
  TCAM arbitration (higher priority, or equal priority and earlier
  insertion).  Multi-match dispatch still runs both here, but on
  single-winner hardware the contained query never initiates — the
  runtime counterpart of NV002, now aware of insertion-order tie-breaks.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.verify.diagnostics import Diagnostic, Location, Severity
from repro.verify.fleet.model import RETIRED, SwitchView
from repro.verify.program import PipelineModel, RuleView
from repro.verify.resources import check_resources
from repro.verify.shadowing import ternary_contains, ternary_intersects

__all__ = [
    "check_fleet_occupancy",
    "check_hash_unit_sharing",
    "check_dispatch_starvation",
]


def check_fleet_occupancy(
    view: SwitchView, policy: Optional[PipelineModel]
) -> List[Diagnostic]:
    """NV401: all-resident occupancy versus the declared policy envelope."""
    if policy is None:
        return []
    rules: List[RuleView] = [
        rule for bank in view.banks for rule in bank.rules
    ]
    out: List[Diagnostic] = []
    for found in check_resources(rules, policy, switch=view.switch_id):
        out.append(Diagnostic(
            severity=Severity.ERROR,
            code="NV401",
            message=(
                f"fleet occupancy exceeds the deployment policy "
                f"({policy.label}): {found.message}"
            ),
            location=found.location,
        ))
    return out


def _overlapping_dispatch(view: SwitchView, a: str, b: str) -> bool:
    for ea in view.dispatch_of(a):
        for eb in view.dispatch_of(b):
            if ternary_intersects(ea.match, eb.match):
                return True
    return False


def check_hash_unit_sharing(view: SwitchView) -> List[Diagnostic]:
    """NV402: co-resident banks of different queries share a HashUnit."""
    out: List[Diagnostic] = []
    banks = [b for b in view.banks if b.resident]
    seen: Set[Tuple[str, str, int, int, object]] = set()
    for i, a in enumerate(banks):
        sigs_a = set(a.hash_signatures())
        if not sigs_a:
            continue
        for b in banks[i + 1:]:
            if a.qid == b.qid:
                continue
            shared = sigs_a.intersection(b.hash_signatures())
            if not shared:
                continue
            if not _overlapping_dispatch(view, a.qid, b.qid):
                continue
            for seed_index, range_size in sorted(shared):
                fingerprint = (
                    min(a.qid, b.qid), max(a.qid, b.qid),
                    seed_index, range_size, view.switch_id,
                )
                if fingerprint in seen:
                    continue
                seen.add(fingerprint)
                out.append(Diagnostic(
                    severity=Severity.WARNING,
                    code="NV402",
                    message=(
                        f"queries {a.qid!r} ({a.status}) and {b.qid!r} "
                        f"({b.status}) both drive hash unit "
                        f"(seed_index={seed_index}, range={range_size}) "
                        f"while their dispatch entries overlap; shared "
                        f"packets index both sketches at correlated "
                        f"positions — give one query a different "
                        f"seed_index"
                    ),
                    location=Location(qid=a.qid, switch=view.switch_id),
                ))
    return out


def check_dispatch_starvation(view: SwitchView) -> List[Diagnostic]:
    """NV403: contained dispatch entries starved on single-winner TCAM."""
    out: List[Diagnostic] = []
    live = [d for d in view.dispatch if d.status != RETIRED]
    for inner in live:
        for outer in live:
            if outer is inner or outer.qid == inner.qid:
                continue
            if not ternary_contains(outer.match, inner.match):
                continue
            if not outer.beats(inner):
                continue
            how = (
                "at higher priority"
                if outer.priority > inner.priority
                else "by earlier insertion at equal priority"
            )
            out.append(Diagnostic(
                severity=Severity.WARNING,
                code="NV403",
                message=(
                    f"dispatch entry of query {inner.qid!r} (priority "
                    f"{inner.priority}, seq {inner.seq}) is fully "
                    f"contained in query {outer.qid!r}'s entry, which "
                    f"wins {how}; on single-winner TCAM hardware "
                    f"{inner.qid!r} never initiates on this switch"
                ),
                location=Location(qid=inner.qid, switch=view.switch_id),
            ))
            break  # one starvation finding per contained entry
    return out
