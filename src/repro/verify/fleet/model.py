"""The fleet analyzer's view of a deployed switch.

Per-query verification (:mod:`repro.verify.verifier`) sees compiled
artifacts *before* they reach a switch.  The fleet analyzer instead
snapshots what is *actually resident*: every rule bank — active, staged
(a 2PC make-before-break window in flight) and retired (awaiting garbage
collection) — plus the physical ``newton_init`` TCAM with its priority /
insertion-order arbitration state.  Whole-deployment passes (NV4xx
interference, NV6xx epoch safety) run over these views, never over the
live switch objects, so analysis cannot mutate the data plane.

Bank status is classified against the switch's committed rule epoch:

* ``staged``  — ``epoch_from`` is in the future (serves no packet yet),
* ``retired`` — ``epoch_until`` has passed (serves no packet any more),
* ``active``  — everything else (the bank packets execute today).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.rules import HashMode, HConfig, NewtonInitEntry, SConfig
from repro.dataplane.module_types import ModuleType
from repro.verify.program import RuleView

__all__ = [
    "BankStatus",
    "BankView",
    "DispatchView",
    "SwitchView",
    "DeploymentModel",
]

_Match = Tuple[Tuple[str, int, int], ...]

#: Bank lifecycle states relative to the switch's committed rule epoch.
ACTIVE = "active"
STAGED = "staged"
RETIRED = "retired"

BankStatus = str


def _classify(epoch_from: int, epoch_until: Optional[int],
              rule_epoch: int) -> BankStatus:
    if epoch_from > rule_epoch:
        return STAGED
    if epoch_until is not None and epoch_until <= rule_epoch:
        return RETIRED
    return ACTIVE


@dataclass(frozen=True)
class BankView:
    """One resident rule bank: a (query, slice) at one epoch interval."""

    qid: str
    slice_index: int
    epoch_from: int
    epoch_until: Optional[int]
    status: BankStatus
    #: Placed module rules at *local* (physical) stages on this switch.
    rules: Tuple[RuleView, ...]
    #: ``newton_init`` entries this bank owns on this switch.
    init_count: int

    @property
    def resident(self) -> bool:
        """Whether the bank can still serve (or come to serve) packets."""
        return self.status != RETIRED

    def register_demand(self) -> Dict[int, int]:
        """Registers leased per local stage by this bank's stateful rules."""
        demand: Dict[int, int] = defaultdict(int)
        for view in self.rules:
            config = view.spec.config
            if (view.module_type is ModuleType.STATE_BANK
                    and isinstance(config, SConfig)
                    and not config.passthrough):
                demand[view.stage] += config.slice_size
        return dict(demand)

    def hash_signatures(self) -> Tuple[Tuple[int, int], ...]:
        """``(seed_index, range_size)`` of every HASH-mode H rule.

        Two banks sharing a signature drive the *same physical*
        :class:`~repro.dataplane.hashing.HashUnit` on this switch.
        """
        out: List[Tuple[int, int]] = []
        for view in self.rules:
            config = view.spec.config
            if (view.module_type is ModuleType.HASH_CALCULATION
                    and isinstance(config, HConfig)
                    and config.mode == HashMode.HASH):
                out.append((config.seed_index, config.range_size))
        return tuple(out)


@dataclass(frozen=True)
class DispatchView:
    """One physical ``newton_init`` TCAM entry with arbitration state."""

    qid: str
    match: _Match
    priority: int
    #: Insertion order — the deterministic tie-breaker at equal priority.
    seq: int
    status: BankStatus

    def beats(self, other: "DispatchView") -> bool:
        """Whether this entry wins single-winner TCAM arbitration."""
        if self.priority != other.priority:
            return self.priority > other.priority
        return self.seq < other.seq


@dataclass(frozen=True)
class SwitchView:
    """Immutable snapshot of one switch's resident state."""

    switch_id: object
    num_stages: int
    table_capacity: int
    array_size: int
    rule_epoch: int
    banks: Tuple[BankView, ...]
    dispatch: Tuple[DispatchView, ...]

    @staticmethod
    def of_switch(switch: object) -> "SwitchView":
        """Snapshot a simulated switch (or a bare pipeline)."""
        pipeline = getattr(switch, "pipeline", switch)
        layout = pipeline.layout
        rule_epoch = int(pipeline.rule_epoch)

        banks: List[BankView] = []
        for qid, slice_index, installed in pipeline.resident_versions():
            rules = tuple(
                RuleView(qid=spec.qid, stage=local_stage,
                         module_type=spec.module_type, spec=spec)
                for local_stage, spec, _key in installed.placed
            )
            banks.append(BankView(
                qid=str(qid),
                slice_index=int(slice_index),
                epoch_from=int(installed.epoch_from),
                epoch_until=installed.epoch_until,
                status=_classify(installed.epoch_from,
                                 installed.epoch_until, rule_epoch),
                rules=rules,
                init_count=len(installed.init_rules),
            ))

        dispatch = tuple(
            DispatchView(
                qid=str(entry.rule.action),
                match=entry.rule.match,
                priority=int(entry.rule.priority),
                seq=int(entry.seq),
                status=_classify(entry.epoch_from, entry.epoch_until,
                                 rule_epoch),
            )
            for entry in pipeline.newton_init.entries()
        )

        return SwitchView(
            switch_id=pipeline.switch_id,
            num_stages=int(layout.num_stages),
            table_capacity=int(layout.table_capacity),
            array_size=int(layout.array_size),
            rule_epoch=rule_epoch,
            banks=tuple(banks),
            dispatch=dispatch,
        )

    def banks_with_status(self, *statuses: BankStatus) -> Tuple[BankView, ...]:
        wanted = set(statuses)
        return tuple(b for b in self.banks if b.status in wanted)

    def dispatch_of(self, qid: str,
                    resident_only: bool = True) -> Tuple[DispatchView, ...]:
        return tuple(
            d for d in self.dispatch
            if d.qid == qid and (not resident_only or d.status != RETIRED)
        )

    def resident_register_demand(self) -> Dict[int, int]:
        """Registers leased per stage across *every* resident bank."""
        demand: Dict[int, int] = defaultdict(int)
        for bank in self.banks:
            for stage, registers in bank.register_demand().items():
                demand[stage] += registers
        return dict(demand)

    def resident_rule_counts(self) -> Dict[Tuple[int, ModuleType], int]:
        """Module rules resident per (stage, module type) slot."""
        counts: Dict[Tuple[int, ModuleType], int] = defaultdict(int)
        for bank in self.banks:
            for view in bank.rules:
                counts[(view.stage, view.module_type)] += 1
        return dict(counts)

    @property
    def dispatch_free(self) -> int:
        return self.table_capacity - len(self.dispatch)


@dataclass(frozen=True)
class DeploymentModel:
    """The whole fleet: one view per switch plus controller-side context."""

    switches: Tuple[SwitchView, ...]
    #: Compiled artifacts by sub-query id, when the controller shares them.
    compiled: Tuple[Tuple[str, object], ...] = ()
    #: The control plane's committed transaction epoch, when known.
    committed_epoch: Optional[int] = None

    def __iter__(self) -> Iterator[SwitchView]:
        return iter(self.switches)
