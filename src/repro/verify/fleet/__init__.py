"""Fleet-level static analysis: whole-deployment passes over live state.

Where :mod:`repro.verify` admits one compiled query at a time, this
package snapshots *everything resident on the fabric* — active, staged
and retired rule banks, the concrete ``newton_init`` TCAMs, the
controller's committed epoch — and checks the properties that only exist
jointly:

* :mod:`~repro.verify.fleet.interference` — NV401–NV403, cross-query
  interference (occupancy policy, shared hash units, dispatch
  starvation),
* :mod:`~repro.verify.fleet.epochs` — NV601–NV603, epoch-transition
  safety (2PC staging windows, staged-bank layout, epoch hygiene),
* :mod:`~repro.verify.fleet.accuracy` — NV701–NV703, accuracy budgets
  at a declared expected flow cardinality.

Entry points: :func:`analyze_deployment` (the ``newton-repro analyze``
backend), :func:`check_staging_plan` (the transaction manager's epoch
gate), and :func:`exit_code` (the CLI's 0/1/2 contract).
"""

from repro.verify.fleet.accuracy import DEFAULT_CM_LOAD, check_accuracy_budget
from repro.verify.fleet.analyzer import (
    FleetConfig,
    analyze_deployment,
    check_staging_plan,
    exit_code,
)
from repro.verify.fleet.epochs import (
    check_epoch_hygiene,
    check_prospective_staging,
    check_staged_bank_layout,
    check_staging_plan_view,
)
from repro.verify.fleet.interference import (
    check_dispatch_starvation,
    check_fleet_occupancy,
    check_hash_unit_sharing,
)
from repro.verify.fleet.model import (
    BankView,
    DeploymentModel,
    DispatchView,
    SwitchView,
)

__all__ = [
    "FleetConfig",
    "analyze_deployment",
    "check_staging_plan",
    "exit_code",
    "DEFAULT_CM_LOAD",
    "check_accuracy_budget",
    "check_epoch_hygiene",
    "check_prospective_staging",
    "check_staged_bank_layout",
    "check_staging_plan_view",
    "check_dispatch_starvation",
    "check_fleet_occupancy",
    "check_hash_unit_sharing",
    "BankView",
    "DeploymentModel",
    "DispatchView",
    "SwitchView",
]
