"""Epoch-transition safety (codes NV601–NV603).

Make-before-break updates stage a complete new rule bank *next to* the
live one (double occupancy) and only then flip the epoch.  That is the
window where a deployment that fits steady-state can still wedge: the
staged bank may not fit beside the live bank, or may be internally
ill-formed in ways per-query verification never sees because it checks
global stages, not the concrete residue on one switch.

* **NV601** — staging-window double occupancy.  Two forms share the
  code: :func:`check_staging_plan` proves a *concrete* transaction's
  staged slices fit the free registers / table rows / ``newton_init``
  capacity of every target switch (ERROR — the transaction would die
  mid-flight and roll back); :func:`check_prospective_staging` asks,
  for every active bank, whether a make-before-break re-stage of that
  bank would fit beside today's residents (WARNING — the deployment is
  one routine update away from a staging failure).
* **NV602** — a staged bank violates Figure-4 layout (module ordering /
  same-stage dependency rules) while co-resident with the live epoch:
  the dependency pass re-run over the staged residue.
* **NV603** — epoch hygiene: staged banks stranded past the committed
  transaction epoch, retired residue the garbage collector never
  reclaimed, or a switch whose rule epoch disagrees with the
  controller's committed epoch.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.compiler import CompiledQuery, Optimizations, QueryParams
from repro.core.rules import ModuleRuleSpec, QuerySlice, SConfig
from repro.dataplane.module_types import ModuleType
from repro.verify.dependencies import check_dependencies
from repro.verify.diagnostics import Diagnostic, Location, Severity
from repro.verify.fleet.model import ACTIVE, RETIRED, STAGED, SwitchView
from repro.verify.program import PipelineModel
from repro.verify.resources import check_resources

__all__ = [
    "check_staging_plan_view",
    "check_prospective_staging",
    "check_staged_bank_layout",
    "check_epoch_hygiene",
]


def _pseudo_compiled(qid: str, specs: Sequence[ModuleRuleSpec],
                     stage_base: int) -> CompiledQuery:
    """Rebuild a minimal compiled artifact from placed specs.

    The dependency pass reads spec ordering, stages, set ids and module
    types — all preserved in the placed rules — so a reconstructed
    artifact is a faithful input for Figure-4 layout checking.
    """
    ordered = tuple(sorted(specs, key=lambda s: s.step))
    num_stages = (
        max(s.stage for s in ordered) - stage_base + 1 if ordered else 0
    )
    num_primitives = (
        max(s.primitive_index for s in ordered) + 1 if ordered else 0
    )
    return CompiledQuery(
        qid=qid,
        specs=ordered,
        init_entries=(),
        num_stages=num_stages,
        num_primitives=num_primitives,
        params=QueryParams(),
        optimizations=Optimizations.all(),
    )


def check_staged_bank_layout(view: SwitchView) -> List[Diagnostic]:
    """NV602: Figure-4 dependency re-check over every staged bank."""
    out: List[Diagnostic] = []
    for bank in view.banks_with_status(STAGED):
        specs = tuple(rule.spec for rule in bank.rules)
        if not specs:
            continue
        pseudo = _pseudo_compiled(bank.qid, specs, stage_base=0)
        for found in check_dependencies(pseudo):
            out.append(Diagnostic(
                severity=Severity.ERROR,
                code="NV602",
                message=(
                    f"staged bank (slice {bank.slice_index}, epoch "
                    f"{bank.epoch_from}) violates module layout while "
                    f"co-resident with the live epoch: {found.message}"
                ),
                location=Location(qid=bank.qid, step=found.location.step,
                                  switch=view.switch_id),
            ))
    return out


def _occupancy_model(view: SwitchView, label: str) -> PipelineModel:
    """A :class:`PipelineModel` pre-seeded with all-resident occupancy."""
    rules_used: Dict[Tuple[int, ModuleType], int] = dict(
        view.resident_rule_counts()
    )
    registers_used: Dict[int, int] = dict(view.resident_register_demand())
    return PipelineModel(
        num_stages=view.num_stages,
        table_capacity=view.table_capacity,
        array_size=view.array_size,
        rules_used=rules_used,
        registers_used=registers_used,
        label=label,
    )


def check_prospective_staging(view: SwitchView) -> List[Diagnostic]:
    """NV601 (warning form): can every active bank still be re-staged?

    Simulates the double-occupancy window of a routine make-before-break
    update of each active bank — its own rules staged *on top of* every
    resident bank — and flags the banks that no longer fit.
    """
    out: List[Diagnostic] = []
    model = _occupancy_model(view, label=f"switch {view.switch_id}")
    for bank in view.banks_with_status(ACTIVE):
        if not bank.rules:
            continue
        for found in check_resources(list(bank.rules), model,
                                     switch=view.switch_id):
            out.append(Diagnostic(
                severity=Severity.WARNING,
                code="NV601",
                message=(
                    f"a make-before-break update of query {bank.qid!r} "
                    f"would not fit its double-occupancy staging window: "
                    f"{found.message}"
                ),
                location=Location(qid=bank.qid, step=found.location.step,
                                  stage=found.location.stage,
                                  switch=view.switch_id),
            ))
        if bank.init_count > view.dispatch_free:
            out.append(Diagnostic(
                severity=Severity.WARNING,
                code="NV601",
                message=(
                    f"a make-before-break update of query {bank.qid!r} "
                    f"needs {bank.init_count} staged newton_init "
                    f"entries but only {view.dispatch_free} TCAM rows "
                    f"are free"
                ),
                location=Location(qid=bank.qid, switch=view.switch_id),
            ))
    return out


def check_staging_plan_view(
    view: SwitchView,
    slices: Sequence[QuerySlice],
    target_epoch: Optional[int] = None,
) -> List[Diagnostic]:
    """NV601 (error form) + NV602 for one concrete staging plan.

    Proves the transaction's staged slices fit this switch's *free*
    capacity — registers per stage array, rows per (stage, module) table,
    and ``newton_init`` TCAM rows — before the 2PC prepare phase touches
    the data plane.  Slices already staged at ``target_epoch`` (idempotent
    retries) are skipped.
    """
    out: List[Diagnostic] = []
    staged_at_target = {
        (bank.qid, bank.slice_index)
        for bank in view.banks_with_status(STAGED)
        if target_epoch is None or bank.epoch_from == target_epoch
    }
    # Dedup by (qid, slice_index): the data plane stages each slice at
    # most once per epoch (``has_staged`` idempotency), so a plan that
    # lists a slice twice — a retried or planner-composed operation —
    # must not double-count its register/rule demand here and veto a
    # staging window that in fact fits.
    fresh: List[QuerySlice] = []
    seen: Set[Tuple[str, int]] = set(staged_at_target)
    for qs in slices:
        if (qs.qid, qs.slice_index) in seen:
            continue
        seen.add((qs.qid, qs.slice_index))
        fresh.append(qs)
    if not fresh:
        return out

    resident_registers = view.resident_register_demand()
    resident_rules = view.resident_rule_counts()

    register_demand: Dict[int, int] = defaultdict(int)
    rule_demand: Dict[Tuple[int, ModuleType], int] = defaultdict(int)
    init_demand = 0
    owners: Dict[int, Set[str]] = defaultdict(set)
    for qs in fresh:
        init_demand += len(qs.init_entries)
        for spec in qs.specs:
            local_stage = spec.stage - qs.stage_base
            rule_demand[(local_stage, spec.module_type)] += 1
            config = spec.config
            if (spec.module_type is ModuleType.STATE_BANK
                    and isinstance(config, SConfig)
                    and not config.passthrough):
                register_demand[local_stage] += config.slice_size
                owners[local_stage].add(qs.qid)

    for stage in sorted(register_demand):
        free = view.array_size - resident_registers.get(stage, 0)
        if register_demand[stage] > free:
            qids = ", ".join(sorted(owners[stage]))
            out.append(Diagnostic(
                severity=Severity.ERROR,
                code="NV601",
                message=(
                    f"staging window does not fit: stage {stage} has "
                    f"{free} free registers but the staged bank(s) "
                    f"[{qids}] lease {register_demand[stage]} — the "
                    f"double-occupancy make-before-break window "
                    f"over-subscribes the state bank"
                ),
                location=Location(stage=stage, switch=view.switch_id),
            ))

    for (stage, mtype), count in sorted(
        rule_demand.items(), key=lambda kv: (kv[0][0], kv[0][1].symbol)
    ):
        # One physical module instance per slot multiplexes at most
        # ``table_capacity`` rules; the staged rows must fit beside the
        # resident ones for the duration of the double-occupancy window.
        resident = resident_rules.get((stage, mtype), 0)
        if resident + count > view.table_capacity:
            out.append(Diagnostic(
                severity=Severity.ERROR,
                code="NV601",
                message=(
                    f"staging window does not fit: stage {stage} "
                    f"{mtype.symbol} table holds {resident} resident "
                    f"rules and the staged bank adds {count}, exceeding "
                    f"the {view.table_capacity}-row instance during "
                    f"double occupancy"
                ),
                location=Location(stage=stage, switch=view.switch_id),
            ))

    if init_demand > view.dispatch_free:
        out.append(Diagnostic(
            severity=Severity.ERROR,
            code="NV601",
            message=(
                f"staging window does not fit: newton_init has "
                f"{view.dispatch_free} free TCAM rows but the staged "
                f"bank(s) add {init_demand} dispatch entries"
            ),
            location=Location(switch=view.switch_id),
        ))

    for qs in fresh:
        pseudo = _pseudo_compiled(qs.qid, qs.specs, stage_base=0)
        for found in check_dependencies(pseudo):
            out.append(Diagnostic(
                severity=Severity.ERROR,
                code="NV602",
                message=(
                    f"staged slice {qs.slice_index} violates module "
                    f"layout: {found.message}"
                ),
                location=Location(qid=qs.qid, step=found.location.step,
                                  switch=view.switch_id),
            ))
    return out


def check_epoch_hygiene(
    view: SwitchView, committed_epoch: Optional[int] = None
) -> List[Diagnostic]:
    """NV603: stranded staged banks, un-collected residue, epoch skew."""
    out: List[Diagnostic] = []

    if committed_epoch is not None and view.rule_epoch != committed_epoch:
        out.append(Diagnostic(
            severity=Severity.WARNING,
            code="NV603",
            message=(
                f"switch rule epoch {view.rule_epoch} disagrees with the "
                f"controller's committed epoch {committed_epoch}; the "
                f"switch serves a different rule-bank generation than "
                f"the control plane believes"
            ),
            location=Location(switch=view.switch_id),
        ))

    future_epochs = sorted({
        bank.epoch_from for bank in view.banks_with_status(STAGED)
    })
    if len(future_epochs) > 1:
        out.append(Diagnostic(
            severity=Severity.WARNING,
            code="NV603",
            message=(
                f"staged banks target {len(future_epochs)} distinct "
                f"future epochs {future_epochs}; at most one transaction "
                f"should be in flight per switch"
            ),
            location=Location(switch=view.switch_id),
        ))
    if committed_epoch is not None:
        for bank in view.banks_with_status(STAGED):
            if bank.epoch_from <= committed_epoch:
                out.append(Diagnostic(
                    severity=Severity.WARNING,
                    code="NV603",
                    message=(
                        f"staged bank (slice {bank.slice_index}) targets "
                        f"epoch {bank.epoch_from} which has already "
                        f"committed; the transaction that staged it "
                        f"never completed or aborted cleanly"
                    ),
                    location=Location(qid=bank.qid, switch=view.switch_id),
                ))

    retired = view.banks_with_status(RETIRED)
    if retired:
        residue = sum(
            len(bank.rules) + bank.init_count for bank in retired
        )
        qids = ", ".join(sorted({bank.qid for bank in retired}))
        out.append(Diagnostic(
            severity=Severity.WARNING,
            code="NV603",
            message=(
                f"{len(retired)} retired bank(s) [{qids}] still hold "
                f"{residue} table row(s) past their epoch_until; the "
                f"garbage collector has not reclaimed them"
            ),
            location=Location(switch=view.switch_id),
        ))
    return out
