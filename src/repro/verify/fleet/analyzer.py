"""Whole-deployment analysis: every fleet pass, one report.

:func:`analyze_deployment` is the static entry point — it snapshots
every switch into a :class:`~repro.verify.fleet.model.SwitchView`, runs
the NV4xx interference, NV6xx epoch-safety and NV7xx accuracy passes,
and (when the compiled artifacts are supplied) re-runs the per-query
verifier over the *joint* installed set so cross-query findings the
install-time gate scoped per-candidate resurface fleet-wide.

:func:`check_staging_plan` is the transactional entry point — the
:class:`~repro.ctrlplane.txn.TransactionManager` calls it between
verification and 2PC prepare to statically prove the staging window fits
double occupancy on every target switch (NV601/NV602 as errors).

:func:`exit_code` fixes the CLI contract both ``lint`` and ``analyze``
print machine-readable reports under: ``0`` clean, ``1`` warnings only,
``2`` errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.compiler import CompiledQuery
from repro.core.rules import QuerySlice
from repro.verify.diagnostics import Diagnostic, VerificationReport
from repro.verify.fleet.accuracy import DEFAULT_CM_LOAD, check_accuracy_budget
from repro.verify.fleet.epochs import (
    check_epoch_hygiene,
    check_prospective_staging,
    check_staged_bank_layout,
    check_staging_plan_view,
)
from repro.verify.fleet.interference import (
    check_dispatch_starvation,
    check_fleet_occupancy,
    check_hash_unit_sharing,
)
from repro.verify.fleet.model import SwitchView
from repro.verify.program import PipelineModel
from repro.verify.sketch import DEFAULT_MAX_FPR
from repro.verify.verifier import VerifierConfig, verify_queries

__all__ = ["FleetConfig", "analyze_deployment", "check_staging_plan",
           "exit_code"]


@dataclass(frozen=True)
class FleetConfig:
    """Workload declaration, policy envelope, and per-code suppression."""

    #: Declared expected flow cardinality; ``None`` skips NV7xx.
    expected_flows: Optional[int] = None
    cm_load: float = DEFAULT_CM_LOAD
    max_fpr: float = DEFAULT_MAX_FPR
    #: Diagnostic codes to drop from reports (e.g. ``("NV402",)``).
    suppress: Tuple[str, ...] = ()
    #: Optional budget envelope for NV401 occupancy auditing.
    policy: Optional[PipelineModel] = None
    #: Configuration for the embedded per-query verifier re-run.
    verifier: VerifierConfig = field(default_factory=VerifierConfig)

    def filter(self, found: Iterable[Diagnostic]) -> List[Diagnostic]:
        return [d for d in found if d.code not in self.suppress]


def analyze_deployment(
    switches: Mapping[object, object],
    compiled: Optional[Mapping[str, CompiledQuery]] = None,
    committed_epoch: Optional[int] = None,
    config: Optional[FleetConfig] = None,
) -> VerificationReport:
    """Run every fleet pass over a live (or snapshotted) deployment.

    ``switches`` maps switch id to switch (or bare pipeline); ``compiled``
    optionally maps sub-query id to its compiled artifact (enabling the
    NV7xx accuracy passes and the joint per-query re-verification);
    ``committed_epoch`` is the control plane's committed transaction
    epoch, used for NV603 skew detection.
    """
    config = config or FleetConfig()
    report = VerificationReport()

    for switch in switches.values():
        view = SwitchView.of_switch(switch)
        report.extend(config.filter(
            check_fleet_occupancy(view, config.policy)
        ))
        report.extend(config.filter(check_hash_unit_sharing(view)))
        report.extend(config.filter(check_dispatch_starvation(view)))
        report.extend(config.filter(check_prospective_staging(view)))
        report.extend(config.filter(check_staged_bank_layout(view)))
        report.extend(config.filter(
            check_epoch_hygiene(view, committed_epoch)
        ))

    if compiled:
        artifacts = list(compiled.values())
        joint = verify_queries(artifacts, config=config.verifier)
        report.extend(config.filter(joint.diagnostics))
        if config.expected_flows is not None:
            report.extend(config.filter(check_accuracy_budget(
                artifacts,
                expected_flows=config.expected_flows,
                cm_load=config.cm_load,
                max_fpr=config.max_fpr,
            )))
    return report


def check_staging_plan(
    switches: Mapping[object, object],
    plan: Mapping[object, Sequence[QuerySlice]],
    target_epoch: Optional[int] = None,
) -> VerificationReport:
    """Statically prove a transaction's staging windows fit (NV6xx).

    ``plan`` maps switch id to the query slices the transaction intends
    to stage there.  Every finding is an ERROR: the transaction would
    fail mid-prepare and roll back, so the gate refuses it up front.
    """
    report = VerificationReport()
    for sid, slices in plan.items():
        if not slices:
            continue
        switch = switches[sid]
        view = SwitchView.of_switch(switch)
        report.extend(
            check_staging_plan_view(view, list(slices), target_epoch)
        )
    return report


def exit_code(report: VerificationReport, werror: bool = False) -> int:
    """The documented CLI contract: 0 clean, 1 warnings only, 2 errors."""
    if report.errors or (werror and report.warnings):
        return 2
    if report.warnings:
        return 1
    return 0
