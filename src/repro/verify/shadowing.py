"""Ternary shadowing and overlap analysis (codes NV001–NV003).

``newton_init`` is a TCAM: per-field (value, mask) matching with
priorities.  This reproduction dispatches with *multi-match* semantics
(every matching entry initiates its query — paper §4.1, Concurrency), so
overlap between queries is by design; what silently corrupts monitoring
is an entry that can never contribute:

* **NV001** — an entry fully shadowed by another entry *of the same
  query* at equal or higher priority.  Dispatch de-duplicates per query
  id, so the shadowed entry matches nothing new; it burns TCAM space and
  its removal is a silent no-op.
* **NV002** — an entry fully contained in a *strictly higher-priority*
  entry of a different query.  Multi-match dispatch still runs both, but
  on single-winner TCAM hardware the lower-priority query would never
  see a packet — a portability trap flagged as a warning.
* **NV003** — an R ternary range entry fully covered by the union of the
  entries before it.  ``RConfig.action_for`` is first-match-wins, so the
  entry's action (e.g. the ``report`` that makes the query observable)
  can never fire.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.compiler import CompiledQuery
from repro.core.fields import GLOBAL_FIELDS
from repro.core.rules import NewtonInitEntry, RConfig
from repro.dataplane.module_types import ModuleType
from repro.verify.diagnostics import Diagnostic, Location, Severity

__all__ = [
    "check_init_shadowing",
    "check_r_entry_shadowing",
    "ternary_contains",
    "ternary_intersects",
]

_Match = Tuple[Tuple[str, int, int], ...]  # (field, value, mask)


def _mask_maps(match: _Match) -> Tuple[Dict[str, int], Dict[str, int]]:
    values = {name: value & mask for name, value, mask in match}
    masks = {name: mask for name, value, mask in match}
    return values, masks


def ternary_contains(outer: _Match, inner: _Match) -> bool:
    """Whether ``outer``'s match set is a superset of ``inner``'s.

    Every packet matching ``inner`` also matches ``outer`` iff, for every
    field, ``outer`` only constrains bits ``inner`` also constrains and
    agrees with it on those bits.
    """
    inner_values, inner_masks = _mask_maps(inner)
    for name, value, mask in outer:
        inner_mask = inner_masks.get(name, 0)
        if mask & ~inner_mask:
            return False  # outer constrains a bit inner leaves free
        if (value ^ inner_values.get(name, 0)) & mask:
            return False  # they disagree on a shared constrained bit
    return True


def ternary_intersects(a: _Match, b: _Match) -> bool:
    """Whether some packet matches both ternary entries."""
    b_values, b_masks = _mask_maps(b)
    for name, value, mask in a:
        shared = mask & b_masks.get(name, 0)
        if (value ^ b_values.get(name, 0)) & shared:
            return False
    return True


def check_init_shadowing(
    entries: Sequence[NewtonInitEntry],
) -> List[Diagnostic]:
    """NV001/NV002 over a co-installed set of dispatch entries."""
    out: List[Diagnostic] = []
    for i, entry in enumerate(entries):
        for j, other in enumerate(entries):
            if i == j:
                continue
            if not ternary_contains(other.match, entry.match):
                continue
            if other.qid == entry.qid:
                # Same query: dispatch de-duplicates per qid, so any other
                # entry containing this one makes it dead weight.  When the
                # two are identical, flag only the later one.
                if not ternary_contains(entry.match, other.match) or j < i:
                    out.append(Diagnostic(
                        severity=Severity.ERROR,
                        code="NV001",
                        message=(
                            f"newton_init entry {_describe(entry)} is fully "
                            f"shadowed by entry {_describe(other)} of the "
                            f"same query; it can never dispatch a packet"
                        ),
                        location=Location(qid=entry.qid),
                    ))
                    break
            elif other.priority > entry.priority:
                out.append(Diagnostic(
                    severity=Severity.WARNING,
                    code="NV002",
                    message=(
                        f"newton_init entry {_describe(entry)} is fully "
                        f"contained in higher-priority entry "
                        f"{_describe(other)} of query {other.qid!r}; "
                        f"single-match TCAM dispatch would starve "
                        f"{entry.qid!r}"
                    ),
                    location=Location(qid=entry.qid),
                ))
                break
    return out


def _describe(entry: NewtonInitEntry) -> str:
    if not entry.match:
        return "{*}"
    parts = []
    for name, value, mask in entry.match:
        width_mask = GLOBAL_FIELDS.get(name).max_value
        if mask == width_mask:
            parts.append(f"{name}={value}")
        else:
            parts.append(f"{name}&{mask:#x}={value:#x}")
    return "{" + ", ".join(parts) + "}"


def _covered(lo: int, hi: int,
             earlier: Iterable[Tuple[int, int]]) -> bool:
    """Whether [lo, hi] is fully covered by the union of ``earlier``."""
    remaining = [(lo, hi)]
    for elo, ehi in earlier:
        next_remaining: List[Tuple[int, int]] = []
        for rlo, rhi in remaining:
            if ehi < rlo or elo > rhi:
                next_remaining.append((rlo, rhi))
                continue
            if rlo < elo:
                next_remaining.append((rlo, elo - 1))
            if rhi > ehi:
                next_remaining.append((ehi + 1, rhi))
        remaining = next_remaining
        if not remaining:
            return True
    return not remaining


def check_r_entry_shadowing(
    compiled: CompiledQuery,
) -> List[Diagnostic]:
    """NV003 over every R config of one compiled query."""
    out: List[Diagnostic] = []
    for spec in compiled.specs:
        if spec.module_type is not ModuleType.RESULT_PROCESS:
            continue
        config = spec.config
        if not isinstance(config, RConfig):
            continue
        for index, entry in enumerate(config.entries):
            earlier = [(e.lo, e.hi) for e in config.entries[:index]]
            if earlier and _covered(entry.lo, entry.hi, earlier):
                out.append(Diagnostic(
                    severity=Severity.ERROR,
                    code="NV003",
                    message=(
                        f"R match entry [{entry.lo}, {entry.hi}] "
                        f"(index {index}) is fully covered by earlier "
                        f"entries; its action can never fire"
                    ),
                    location=Location(
                        qid=spec.qid, step=spec.step, stage=spec.stage
                    ),
                ))
    return out
