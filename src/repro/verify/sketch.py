"""Sketch-parameter sanity (codes NV301–NV304).

Newton's ``reduce`` lowers to a Count-Min sketch (one module suite per
row, §4.2) and ``distinct`` to a Bloom filter; both trade registers for
accuracy.  The compiler accepts any positive row/width numbers, so a
query can be *well-formed yet statistically useless* — e.g. a one-row
Count-Min whose collision probability makes every threshold comparison
noise.  This pass recovers each sketch's geometry from the placed rules
(no cooperation from the compiler) and checks it against the standard
bounds:

* **NV301** — Count-Min per-row error factor ``epsilon = e / width``
  exceeds the configured bound: counts are inflated by more than
  ``epsilon * N`` in expectation.
* **NV302** — Count-Min failure probability ``delta = e^-depth`` exceeds
  the bound: too few rows for the estimate to hold with confidence.
* **NV303** — Bloom filter false-positive rate ``(1 - e^-load)^k``
  exceeds the bound at the configured load factor: ``distinct`` will
  wrongly suppress keys.
* **NV304** — two *overlapping* queries drive HASH rules with the same
  seed, range, and key masks: their sketch indices collide on every
  shared packet, correlating their errors (the paper's "different hash
  algorithms" knob, §4.1, left unused).  Queries whose dispatch entries
  cannot match the same packet are exempt.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.compiler import CompiledQuery
from repro.core.rules import HashMode, HConfig, KConfig, SConfig
from repro.dataplane.alu import StatefulOp
from repro.dataplane.module_types import ModuleType
from repro.verify.diagnostics import Diagnostic, Location, Severity
from repro.verify.shadowing import ternary_intersects

__all__ = ["check_sketch_params", "check_hash_seed_collisions"]

#: Default accuracy bounds.  Chosen so the paper's defaults (depth 2,
#: 3 Bloom hashes, 4096-register slices) pass with margin while the
#: degenerate settings (1 row, tiny slices) are flagged.
DEFAULT_MAX_EPSILON = 0.05
DEFAULT_MAX_DELTA = 0.25
DEFAULT_BLOOM_LOAD = 0.5
DEFAULT_MAX_FPR = 0.1


def check_sketch_params(
    compiled: Sequence[CompiledQuery],
    max_epsilon: float = DEFAULT_MAX_EPSILON,
    max_delta: float = DEFAULT_MAX_DELTA,
    bloom_load: float = DEFAULT_BLOOM_LOAD,
    max_fpr: float = DEFAULT_MAX_FPR,
) -> List[Diagnostic]:
    """NV301–NV303 over every sketch recovered from the placed rules."""
    out: List[Diagnostic] = []
    for comp in compiled:
        # Group stateful S rules into sketches: one per lowered primitive,
        # one suite per row.
        sketches: Dict[int, List[Tuple[int, SConfig]]] = defaultdict(list)
        first_step: Dict[int, int] = {}
        for spec in sorted(comp.specs, key=lambda s: s.step):
            if spec.module_type is not ModuleType.STATE_BANK:
                continue
            config = spec.config
            if not isinstance(config, SConfig) or config.passthrough:
                continue
            sketches[spec.primitive_index].append(
                (spec.suite_index, config)
            )
            first_step.setdefault(spec.primitive_index, spec.step)
        for prim_index, suite_rows in sorted(sketches.items()):
            location = Location(qid=comp.qid, step=first_step[prim_index])
            rows = [config for _, config in suite_rows]
            # A Bloom ``distinct`` lowers its OR rows as suites 0..k-1; an
            # OR row starting at a later suite is a single test-and-set
            # flag (the byte-sum result filter's report-once bit), not a
            # membership sketch.
            is_bloom = (
                min(index for index, _ in suite_rows) == 0
                and all(
                    row.op is StatefulOp.OR and row.output_old
                    for row in rows
                )
            )
            if is_bloom:
                k = len(rows)
                fpr = (1.0 - math.exp(-bloom_load)) ** k
                if fpr > max_fpr:
                    out.append(Diagnostic(
                        severity=Severity.WARNING,
                        code="NV303",
                        message=(
                            f"Bloom filter with {k} hash function(s) has a "
                            f"false-positive rate of {fpr:.3f} at load "
                            f"{bloom_load:g} (bound {max_fpr:g}); distinct "
                            f"will wrongly suppress first-seen keys"
                        ),
                        location=location,
                    ))
                continue
            if not all(row.op is StatefulOp.ADD for row in rows):
                continue  # not a counting sketch (e.g. MAX register)
            depth = len(rows)
            width = min(row.slice_size for row in rows)
            epsilon = math.e / width
            delta = math.exp(-depth)
            if epsilon > max_epsilon:
                out.append(Diagnostic(
                    severity=Severity.WARNING,
                    code="NV301",
                    message=(
                        f"Count-Min width {width} gives error factor "
                        f"epsilon = e/width = {epsilon:.3f} (bound "
                        f"{max_epsilon:g}); counts overshoot by more than "
                        f"{max_epsilon:g}*N in expectation"
                    ),
                    location=location,
                ))
            if delta > max_delta:
                out.append(Diagnostic(
                    severity=Severity.WARNING,
                    code="NV302",
                    message=(
                        f"Count-Min depth {depth} gives failure "
                        f"probability delta = e^-depth = {delta:.3f} "
                        f"(bound {max_delta:g}); add rows for the error "
                        f"bound to hold with confidence"
                    ),
                    location=location,
                ))
    return out


def _hash_signatures(
    comp: CompiledQuery,
) -> List[Tuple[int, Tuple[int, int, Tuple[Tuple[str, int], ...]]]]:
    """(step, (seed, range, key masks)) of every HASH-mode H rule.

    The key masks come from the most recent K rule of the same metadata
    set, mirroring the dataplane's read path.
    """
    signatures = []
    specs = sorted(comp.specs, key=lambda s: s.step)
    for index, spec in enumerate(specs):
        if spec.module_type is not ModuleType.HASH_CALCULATION:
            continue
        config = spec.config
        if not isinstance(config, HConfig) or config.mode != HashMode.HASH:
            continue
        masks: Optional[Tuple[Tuple[str, int], ...]] = None
        for prior in reversed(specs[:index]):
            if (prior.module_type is ModuleType.KEY_SELECTION
                    and prior.set_id == spec.set_id
                    and isinstance(prior.config, KConfig)):
                masks = prior.config.masks
                break
        if masks is None:
            continue
        signatures.append(
            (spec.step, (config.seed_index, config.range_size, masks))
        )
    return signatures


def check_hash_seed_collisions(
    compiled: Sequence[CompiledQuery],
) -> List[Diagnostic]:
    """NV304 across a co-verified set of queries."""
    out: List[Diagnostic] = []
    for i, a in enumerate(compiled):
        for b in compiled[i + 1:]:
            if a.qid == b.qid:
                continue
            overlap = any(
                ternary_intersects(ea.match, eb.match)
                for ea in a.init_entries for eb in b.init_entries
            )
            if not overlap:
                continue
            b_sigs = {sig: step for step, sig in _hash_signatures(b)}
            for step, sig in _hash_signatures(a):
                other_step = b_sigs.get(sig)
                if other_step is None:
                    continue
                seed, range_size, masks = sig
                keys = ",".join(name for name, _ in masks)
                out.append(Diagnostic(
                    severity=Severity.WARNING,
                    code="NV304",
                    message=(
                        f"hash rule (step {step}) and query {b.qid!r} "
                        f"(step {other_step}) use the same seed {seed} "
                        f"over the same keys [{keys}] and range "
                        f"{range_size} while their dispatch entries "
                        f"overlap; their sketch errors are correlated — "
                        f"use a different seed_index"
                    ),
                    location=Location(qid=a.qid, step=step),
                ))
    return out
