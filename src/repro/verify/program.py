"""The verifier's view of a rule program and its target pipeline.

The analyzer never talks to a switch: it works over compiled artifacts
(:class:`~repro.core.compiler.CompiledQuery`, the per-switch
:class:`~repro.core.rules.QuerySlice` partitions) plus a
:class:`PipelineModel` describing the pipeline the rules are bound for —
stage count, table capacity, register-array size, and any resources already
in use.  Models are cheap value objects: lint builds a default Tofino-shaped
one, the controller snapshots the actual target switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.core.compiler import CompiledQuery
from repro.core.rules import ModuleRuleSpec, NewtonInitEntry, QuerySlice
from repro.dataplane.module_types import ModuleType
from repro.dataplane.resources import TOFINO_STAGES

__all__ = ["PipelineModel", "RuleView", "rules_of_compiled", "rules_of_slices"]

#: Mirrors :data:`repro.dataplane.tables.DEFAULT_TABLE_CAPACITY` without
#: pulling the table implementation into the analyzer.
_DEFAULT_TABLE_CAPACITY = 256
_DEFAULT_ARRAY_SIZE = 4096


@dataclass(frozen=True)
class RuleView:
    """One placed module rule as the resource pass sees it."""

    qid: str
    stage: int
    module_type: ModuleType
    spec: ModuleRuleSpec

    @staticmethod
    def of(spec: ModuleRuleSpec, stage_base: int = 0) -> "RuleView":
        return RuleView(
            qid=spec.qid,
            stage=spec.stage - stage_base,
            module_type=spec.module_type,
            spec=spec,
        )


@dataclass
class PipelineModel:
    """Capacities (and current usage) of one target pipeline.

    ``rules_used`` and ``registers_used`` describe rules already resident —
    zero for a lint run, the live occupancy for an install-time check — so
    admission verdicts account for every co-installed query.
    """

    num_stages: int = TOFINO_STAGES
    table_capacity: int = _DEFAULT_TABLE_CAPACITY
    array_size: int = _DEFAULT_ARRAY_SIZE
    #: (stage, module type) -> module rules already installed.
    rules_used: Dict[Tuple[int, ModuleType], int] = field(default_factory=dict)
    #: stage -> registers already leased from the stage's state bank.
    registers_used: Dict[int, int] = field(default_factory=dict)
    label: str = "pipeline"

    @staticmethod
    def of_switch(switch: object, label: str = "switch") -> "PipelineModel":
        """Snapshot a simulated switch's layout and current occupancy."""
        from repro.dataplane.modules import StateBankModule

        layout = switch.pipeline.layout  # type: ignore[attr-defined]
        rules_used: Dict[Tuple[int, ModuleType], int] = {}
        registers_used: Dict[int, int] = {}
        for stage in range(layout.num_stages):
            for mtype, module in layout.stage_slots(stage).items():
                if module.rule_count:
                    rules_used[(stage, mtype)] = module.rule_count
                if isinstance(module, StateBankModule):
                    used = module.array.size - module.array.free_registers()
                    if used:
                        registers_used[stage] = used
        return PipelineModel(
            num_stages=layout.num_stages,
            table_capacity=layout.table_capacity,
            array_size=layout.array_size,
            rules_used=rules_used,
            registers_used=registers_used,
            label=label,
        )


def rules_of_compiled(compiled: Iterable[CompiledQuery]) -> List[RuleView]:
    """Flatten compiled queries into placed-rule views at global stages."""
    return [
        RuleView.of(spec)
        for comp in compiled
        for spec in comp.specs
    ]


def rules_of_slices(slices: Iterable[QuerySlice]) -> List[RuleView]:
    """Flatten per-switch slices into rule views at *local* stages."""
    return [
        RuleView.of(spec, stage_base=query_slice.stage_base)
        for query_slice in slices
        for spec in query_slice.specs
    ]


def init_entries_of(
    compiled: Iterable[CompiledQuery],
) -> List[NewtonInitEntry]:
    return [entry for comp in compiled for entry in comp.init_entries]
