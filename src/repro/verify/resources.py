"""Resource admission: can this rule set actually fit the pipeline?

Codes NV201–NV203.  Newton's modules are pre-loaded, so installing a rule
never synthesises hardware — but the *rule set* still has a hardware
budget.  Each (stage, module type) slot is one physical module instance
costing :data:`~repro.dataplane.resources.MODULE_COSTS` out of
:data:`~repro.dataplane.resources.STAGE_CAPACITY`; its table multiplexes
up to ``table_capacity`` rules.  When the rules demanded at one slot
exceed that, the stage would need another instance of the module — and the
pass charges it, which is where the seven per-category budgets (Table 3's
columns) start to overflow:

* **NV201** — per-stage resource over-subscription, reported with a
  per-category breakdown (only the categories that overflow).
* **NV202** — the rule set needs more stages than the pipeline offers;
  installable only by slicing across switches (CQE, §5.1), so a warning.
* **NV203** — per-stage register over-subscription: stateful S rules
  lease more registers than the stage's state-bank array holds.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.compiler import CompiledQuery
from repro.core.rules import SConfig
from repro.dataplane.module_types import ModuleType
from repro.dataplane.resources import (
    MODULE_COSTS,
    RESOURCE_CATEGORIES,
    STAGE_CAPACITY,
)
from repro.verify.diagnostics import Diagnostic, Location, Severity
from repro.verify.program import PipelineModel, RuleView

__all__ = ["check_resources", "check_stage_budget"]


def check_stage_budget(
    compiled: Sequence[CompiledQuery], model: PipelineModel
) -> List[Diagnostic]:
    """NV202: queries whose schedule exceeds the pipeline's stage count."""
    out: List[Diagnostic] = []
    for comp in compiled:
        if comp.num_stages > model.num_stages:
            slices = math.ceil(comp.num_stages / model.num_stages)
            out.append(Diagnostic(
                severity=Severity.WARNING,
                code="NV202",
                message=(
                    f"query needs {comp.num_stages} stages but the "
                    f"pipeline has {model.num_stages}; deployment requires "
                    f"cross-switch execution over >= {slices} switches "
                    f"(or analyzer offload for the remainder)"
                ),
                location=Location(qid=comp.qid),
            ))
    return out


def check_resources(
    rules: Iterable[RuleView],
    model: PipelineModel,
    switch: object = None,
) -> List[Diagnostic]:
    """NV201 + NV203 for a rule set bound to one pipeline.

    ``rules`` carry *local* stages for the target pipeline; the model's
    ``rules_used``/``registers_used`` describe what is already resident so
    candidate and installed queries are admitted jointly.
    """
    out: List[Diagnostic] = []
    rule_counts: Dict[Tuple[int, ModuleType], int] = defaultdict(int)
    register_demand: Dict[int, int] = defaultdict(int)
    for key, used in model.rules_used.items():
        rule_counts[key] += used
    for stage, used in model.registers_used.items():
        register_demand[stage] += used

    for view in rules:
        rule_counts[(view.stage, view.module_type)] += 1
        config = view.spec.config
        if (view.module_type is ModuleType.STATE_BANK
                and isinstance(config, SConfig)
                and not config.passthrough):
            register_demand[view.stage] += config.slice_size

    # NV201: instances demanded per slot -> per-category stage usage.
    stages = sorted({stage for stage, _ in rule_counts})
    for stage in stages:
        usage = {category: 0.0 for category in RESOURCE_CATEGORIES}
        demanded: List[str] = []
        for mtype in ModuleType:
            count = rule_counts.get((stage, mtype), 0)
            if not count:
                continue
            instances = math.ceil(count / model.table_capacity)
            cost = MODULE_COSTS[mtype]
            for category in RESOURCE_CATEGORIES:
                usage[category] += instances * getattr(cost, category)
            if instances > 1:
                demanded.append(
                    f"{count} {mtype.symbol} rules need {instances} "
                    f"instances ({model.table_capacity} rules each)"
                )
        over = {
            category: (usage[category], getattr(STAGE_CAPACITY, category))
            for category in RESOURCE_CATEGORIES
            if usage[category] > getattr(STAGE_CAPACITY, category)
        }
        if over:
            breakdown = ", ".join(
                f"{category} {used:g}/{cap:g}"
                for category, (used, cap) in sorted(over.items())
            )
            detail = f" ({'; '.join(demanded)})" if demanded else ""
            out.append(Diagnostic(
                severity=Severity.ERROR,
                code="NV201",
                message=(
                    f"stage {stage} over-subscribed on {model.label}: "
                    f"{breakdown}{detail}"
                ),
                location=Location(stage=stage, switch=switch),
            ))

    # NV203: register leases per stage vs the state-bank array.
    for stage in sorted(register_demand):
        demand = register_demand[stage]
        if demand > model.array_size:
            out.append(Diagnostic(
                severity=Severity.ERROR,
                code="NV203",
                message=(
                    f"stage {stage} register over-subscription on "
                    f"{model.label}: stateful rules lease {demand} "
                    f"registers, the state-bank array holds "
                    f"{model.array_size}"
                ),
                location=Location(stage=stage, switch=switch),
            ))
    return out
