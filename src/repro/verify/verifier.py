"""The static rule verifier: every pass, one report.

:func:`verify_queries` analyses compiled artifacts *before* any rule
reaches a switch — the controller runs it by default on install, ``repro
lint`` runs it from the command line, and the compiler can run the
dependency pass as a post-condition self-check.  :func:`verify_slices`
re-runs the resource admission pass against one concrete switch once the
controller has partitioned a query (so occupancy and per-switch layouts
are respected).

Severity policy: ERROR diagnostics make :attr:`VerificationReport.ok`
false and the controller refuse the install; WARNING/INFO diagnostics are
surfaced but do not block.  Individual codes can be suppressed via
:attr:`VerifierConfig.suppress`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.compiler import CompiledQuery
from repro.core.rules import QuerySlice
from repro.verify.deadrules import check_dead_rules
from repro.verify.dependencies import check_dependencies
from repro.verify.diagnostics import (
    Diagnostic,
    VerificationError,
    VerificationReport,
)
from repro.verify.program import (
    PipelineModel,
    init_entries_of,
    rules_of_compiled,
    rules_of_slices,
)
from repro.verify.resources import check_resources, check_stage_budget
from repro.verify.shadowing import (
    check_init_shadowing,
    check_r_entry_shadowing,
)
from repro.verify.sketch import (
    DEFAULT_BLOOM_LOAD,
    DEFAULT_MAX_DELTA,
    DEFAULT_MAX_EPSILON,
    DEFAULT_MAX_FPR,
    check_hash_seed_collisions,
    check_sketch_params,
)

__all__ = ["VerifierConfig", "verify_queries", "verify_slices", "require_ok"]


@dataclass(frozen=True)
class VerifierConfig:
    """Tunable thresholds and per-code suppression."""

    max_epsilon: float = DEFAULT_MAX_EPSILON
    max_delta: float = DEFAULT_MAX_DELTA
    bloom_load: float = DEFAULT_BLOOM_LOAD
    max_fpr: float = DEFAULT_MAX_FPR
    #: Diagnostic codes to drop from reports (e.g. ("NV302",)).
    suppress: Tuple[str, ...] = field(default=())

    def filter(self, found: Iterable[Diagnostic]) -> List[Diagnostic]:
        return [d for d in found if d.code not in self.suppress]


def verify_queries(
    candidates: Sequence[CompiledQuery],
    context: Sequence[CompiledQuery] = (),
    model: Optional[PipelineModel] = None,
    config: Optional[VerifierConfig] = None,
) -> VerificationReport:
    """Run every static pass over ``candidates``.

    ``context`` holds already-accepted queries: cross-query passes (init
    shadowing, hash-seed collisions) see candidates and context together,
    but only findings anchored to a candidate are reported — pre-existing
    context findings are not re-litigated.  Pass a :class:`PipelineModel`
    to also run resource admission at global stages (what lint does); the
    controller instead calls :func:`verify_slices` per target switch.
    """
    config = config or VerifierConfig()
    report = VerificationReport()
    everything = list(candidates) + [
        c for c in context
        if c.qid not in {cand.qid for cand in candidates}
    ]

    # Per-query artifact passes: candidates only.
    for comp in candidates:
        report.extend(config.filter(check_dependencies(comp)))
        report.extend(config.filter(check_r_entry_shadowing(comp)))
        report.extend(config.filter(check_dead_rules(comp)))
    report.extend(config.filter(check_sketch_params(
        candidates,
        max_epsilon=config.max_epsilon,
        max_delta=config.max_delta,
        bloom_load=config.bloom_load,
        max_fpr=config.max_fpr,
    )))

    # Cross-query passes: joint view, candidate-anchored findings only.
    candidate_qids = {comp.qid for comp in candidates}
    joint: List[Diagnostic] = []
    joint.extend(check_init_shadowing(init_entries_of(everything)))
    joint.extend(check_hash_seed_collisions(everything))
    report.extend(config.filter(
        d for d in joint
        if d.location.qid is None or d.location.qid in candidate_qids
    ))

    # Resource admission at global stages.  Each candidate is admitted
    # standalone: whether several candidates *co-reside* on one pipeline
    # is a placement decision, checked per target switch at install time
    # by :func:`verify_slices`.
    if model is not None:
        report.extend(config.filter(check_stage_budget(candidates, model)))
        for comp in candidates:
            report.extend(config.filter(check_resources(
                rules_of_compiled([comp]), model
            )))
    return report


def verify_slices(
    slices: Sequence[QuerySlice],
    model: PipelineModel,
    switch: object = None,
    config: Optional[VerifierConfig] = None,
) -> VerificationReport:
    """Resource admission of candidate slices against one concrete switch.

    ``model`` should be :meth:`PipelineModel.of_switch` of the target so
    already-resident rules and leased registers count toward capacity.
    """
    config = config or VerifierConfig()
    report = VerificationReport()
    report.extend(config.filter(
        check_resources(rules_of_slices(slices), model, switch=switch)
    ))
    return report


def require_ok(report: VerificationReport) -> None:
    """Raise :class:`VerificationError` if the report carries errors."""
    if not report.ok:
        raise VerificationError(report)
