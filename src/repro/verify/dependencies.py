"""Stage-schedule soundness: container dependencies + compact layout.

Codes NV101–NV104.  This is the machine-checked Figure 4, deliberately
*independent* of the scheduler in :mod:`repro.core.compiler`: it re-derives
each placed rule's PHV container reads and writes from the rule itself
(module type, metadata set, configuration) and checks every ordered pair,
so a scheduler bug cannot hide behind its own bookkeeping.

Containers follow the paper's two-metadata-set design (§4.2): per set, K
writes the operation keys, H reads them (unless forwarding a field in
DIRECT mode) and writes the hash result, S reads the hash result and
writes the state result, R reads the state result plus the shared global
result and writes the global result.

For placed rules ``i`` before ``j`` in logical (step) order:

* **NV101** — true dependency (``j`` reads what ``i`` writes): ``i`` must
  sit in a strictly earlier stage.
* **NV102** — anti dependency (``i`` reads what ``j`` overwrites): ``i``
  must not sit in a later stage than ``j``.
* **NV103** — output dependency (both write the same container): ``i``
  must sit in a strictly earlier stage, or the later write is lost.
* **NV104** — compact-layout violation: a stage offers exactly one module
  slot per type, so one query may install at most one rule per
  (stage, module type).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.core.compiler import CompiledQuery
from repro.core.rules import HashMode, HConfig, ModuleRuleSpec
from repro.dataplane.module_types import ModuleType
from repro.verify.diagnostics import Diagnostic, Location, Severity

__all__ = ["check_dependencies", "containers_of"]

_KEYS, _HASH, _STATE, _GLOBAL = "keys", "hash", "state", "global"

Container = Tuple


def containers_of(spec: ModuleRuleSpec) -> Tuple[FrozenSet, FrozenSet]:
    """(reads, writes) of one placed rule, in PHV containers."""
    sid = spec.set_id
    mtype = spec.module_type
    if mtype is ModuleType.KEY_SELECTION:
        return frozenset(), frozenset({(_KEYS, sid)})
    if mtype is ModuleType.HASH_CALCULATION:
        config = spec.config
        direct = (
            isinstance(config, HConfig) and config.mode == HashMode.DIRECT
        )
        reads = frozenset() if direct else frozenset({(_KEYS, sid)})
        return reads, frozenset({(_HASH, sid)})
    if mtype is ModuleType.STATE_BANK:
        return frozenset({(_HASH, sid)}), frozenset({(_STATE, sid)})
    if mtype is ModuleType.RESULT_PROCESS:
        return (
            frozenset({(_STATE, sid), (_GLOBAL,)}),
            frozenset({(_GLOBAL,)}),
        )
    raise ValueError(f"unknown module type {mtype!r}")


def check_dependencies(compiled: CompiledQuery) -> List[Diagnostic]:
    """NV101–NV104 over one compiled query's placed rules."""
    out: List[Diagnostic] = []
    specs = sorted(compiled.specs, key=lambda s: s.step)
    deps = [containers_of(spec) for spec in specs]

    # NV104: one rule per (stage, module type).
    slots: Dict[Tuple[int, ModuleType], ModuleRuleSpec] = {}
    for spec in specs:
        key = (spec.stage, spec.module_type)
        first = slots.get(key)
        if first is not None:
            out.append(Diagnostic(
                severity=Severity.ERROR,
                code="NV104",
                message=(
                    f"steps {first.step} and {spec.step} both need the "
                    f"{spec.module_type.symbol} slot of stage {spec.stage}; "
                    f"the compact layout offers one module per type per "
                    f"stage"
                ),
                location=Location(
                    qid=spec.qid, step=spec.step, stage=spec.stage
                ),
            ))
        else:
            slots[key] = spec

    for j, later in enumerate(specs):
        reads_j, writes_j = deps[j]
        for i in range(j):
            earlier = specs[i]
            reads_i, writes_i = deps[i]
            location = Location(
                qid=later.qid, step=later.step, stage=later.stage
            )
            if writes_i & reads_j and not earlier.stage < later.stage:
                out.append(Diagnostic(
                    severity=Severity.ERROR,
                    code="NV101",
                    message=(
                        f"true dependency violated: step {later.step} "
                        f"({later.module_type.symbol}, stage {later.stage}) "
                        f"reads {_names(writes_i & reads_j)} written by "
                        f"step {earlier.step} "
                        f"({earlier.module_type.symbol}, stage "
                        f"{earlier.stage}); the reader must be in a "
                        f"strictly later stage"
                    ),
                    location=location,
                ))
            if reads_i & writes_j and not earlier.stage <= later.stage:
                out.append(Diagnostic(
                    severity=Severity.ERROR,
                    code="NV102",
                    message=(
                        f"anti dependency violated: step {earlier.step} "
                        f"({earlier.module_type.symbol}, stage "
                        f"{earlier.stage}) reads "
                        f"{_names(reads_i & writes_j)} that step "
                        f"{later.step} ({later.module_type.symbol}, stage "
                        f"{later.stage}) overwrites in an earlier stage"
                    ),
                    location=location,
                ))
            if writes_i & writes_j and not earlier.stage < later.stage:
                out.append(Diagnostic(
                    severity=Severity.ERROR,
                    code="NV103",
                    message=(
                        f"output dependency violated: steps {earlier.step} "
                        f"and {later.step} both write "
                        f"{_names(writes_i & writes_j)} but stage order "
                        f"({earlier.stage} vs {later.stage}) does not "
                        f"preserve logical order"
                    ),
                    location=location,
                ))
    return out


def _names(containers: FrozenSet) -> str:
    parts = []
    for container in sorted(containers, key=str):
        if len(container) == 1:
            parts.append(container[0])
        else:
            parts.append(f"{container[0]}[set{container[1]}]")
    return ", ".join(parts)
