"""Dead-rule elimination hints (codes NV501–NV502).

An R module's ternary range entries match a *result value* whose feasible
range is often far smaller than the 32-bit register width: a passthrough S
forwards a hash bounded by the H rule's ``range_size``, a Bloom-filter OR
over constant ``c`` can only yield 0 or ``c``, a MAX over constant ``c``
never drops below ``c``.  This pass derives a conservative feasible
interval for each result value by abstract interpretation over the placed
rules and flags entries that cannot match any feasible value — rules that
waste TCAM entries and usually indicate a threshold computed against the
wrong operand:

* **NV501** — a STATE-source R entry disjoint from the feasible interval
  of the state result produced by its metadata set's S rule.
* **NV502** — a GLOBAL-source R entry disjoint from the feasible interval
  of the global result folded by the preceding R rules.

Both are warnings: the interval model is sound but deliberately coarse
(every interval is a superset of the reachable values), so a flagged entry
is *certainly* unreachable under the model's single-query view, yet the
fix is a query rewrite rather than a rejected install.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.compiler import CompiledQuery
from repro.core.fields import GLOBAL_FIELDS
from repro.core.rules import (
    HashMode,
    HConfig,
    MatchSource,
    OperandSource,
    RConfig,
    SConfig,
)
from repro.dataplane.alu import REGISTER_MAX, ResultOp, StatefulOp
from repro.dataplane.module_types import ModuleType
from repro.verify.diagnostics import Diagnostic, Location, Severity

__all__ = ["check_dead_rules"]

Interval = Tuple[int, int]

_FULL: Interval = (0, REGISTER_MAX)


def _hash_interval(spec_index: int, specs, set_id: int) -> Interval:
    """Feasible hash-result interval feeding the S rule at ``spec_index``."""
    for prior in reversed(specs[:spec_index]):
        if (prior.module_type is ModuleType.HASH_CALCULATION
                and prior.set_id == set_id
                and isinstance(prior.config, HConfig)):
            config = prior.config
            if config.mode == HashMode.DIRECT and config.direct_field:
                return (0, GLOBAL_FIELDS.get(config.direct_field).max_value)
            return (0, config.range_size - 1)
    return _FULL


def _state_interval(spec_index: int, specs) -> Interval:
    """Feasible state-result interval after the S rule at ``spec_index``."""
    spec = specs[spec_index]
    config = spec.config
    if not isinstance(config, SConfig):
        return _FULL
    if config.passthrough:
        return _hash_interval(spec_index, specs, spec.set_id)
    if config.operand_source == OperandSource.FIELD:
        return _FULL  # packet-dependent operand: no useful bound
    c = config.operand_const
    if config.op is StatefulOp.ADD:
        return _FULL if config.output_old else (min(c, REGISTER_MAX), REGISTER_MAX)
    if config.op is StatefulOp.OR:
        # The slice is only ever OR'd with ``c``: registers hold 0 or c.
        return (0, c) if config.output_old else (c, c)
    if config.op is StatefulOp.MAX:
        return _FULL if config.output_old else (min(c, REGISTER_MAX), REGISTER_MAX)
    return _FULL  # READ: whatever the slice holds


def _fold(global_iv: Optional[Interval], state_iv: Interval,
          ops: List[ResultOp]) -> Optional[Interval]:
    """Hull of the global interval after one R rule whose firing entry is
    statically unknown: any of ``ops`` may apply."""
    candidates: List[Optional[Interval]] = []
    for op in ops:
        if op is ResultOp.NOP:
            candidates.append(global_iv)
        elif op is ResultOp.PASS or global_iv is None:
            # apply_result loads the state result when global is unset.
            candidates.append(state_iv)
        elif op is ResultOp.ADD:
            candidates.append((
                min(global_iv[0] + state_iv[0], REGISTER_MAX),
                min(global_iv[1] + state_iv[1], REGISTER_MAX),
            ))
        elif op is ResultOp.SUB:
            candidates.append((
                max(global_iv[0] - state_iv[1], 0),
                max(global_iv[1] - state_iv[0], 0),
            ))
        elif op is ResultOp.MIN:
            candidates.append((
                min(global_iv[0], state_iv[0]),
                min(global_iv[1], state_iv[1]),
            ))
        elif op is ResultOp.MAX:
            candidates.append((
                max(global_iv[0], state_iv[0]),
                max(global_iv[1], state_iv[1]),
            ))
    known = [c for c in candidates if c is not None]
    if not known:
        return None
    return (min(lo for lo, _ in known), max(hi for _, hi in known))


def check_dead_rules(compiled: CompiledQuery) -> List[Diagnostic]:
    """NV501/NV502 over one compiled query's R entries."""
    out: List[Diagnostic] = []
    specs = sorted(compiled.specs, key=lambda s: s.step)

    # Latest feasible state interval per metadata set, walked in step order.
    state_iv: dict = {}
    global_iv: Optional[Interval] = None  # None until some R folds a value

    for index, spec in enumerate(specs):
        if spec.module_type is ModuleType.STATE_BANK:
            state_iv[spec.set_id] = _state_interval(index, specs)
            continue
        if spec.module_type is not ModuleType.RESULT_PROCESS:
            continue
        config = spec.config
        if not isinstance(config, RConfig):
            continue
        set_iv: Interval = state_iv.get(spec.set_id, _FULL)
        if config.source == MatchSource.STATE:
            feasible: Optional[Interval] = set_iv
            code, what = "NV501", "state result"
        else:
            feasible = global_iv
            code, what = "NV502", "global result"
        if feasible is not None:
            for entry_index, entry in enumerate(config.entries):
                if entry.hi < feasible[0] or entry.lo > feasible[1]:
                    out.append(Diagnostic(
                        severity=Severity.WARNING,
                        code=code,
                        message=(
                            f"R entry [{entry.lo}, {entry.hi}] (index "
                            f"{entry_index}) can never match: the {what} "
                            f"is confined to [{feasible[0]}, "
                            f"{feasible[1]}] by the preceding rules"
                        ),
                        location=Location(
                            qid=spec.qid, step=spec.step, stage=spec.stage
                        ),
                    ))
        ops = [entry.action.result_op for entry in config.entries]
        ops.append(config.default.result_op)
        global_iv = _fold(global_iv, set_iv, ops)
    return out
