"""Static rule verifier: pre-install analysis of compiled module-rule
programs.

Newton pushes query compilation into table rules for pre-loaded modules;
this package analyses those rules *before* the controller touches a
switch, so ill-formed programs are rejected with structured diagnostics
instead of corrupting monitoring silently at runtime.  Five passes:

1. ternary shadowing/overlap (``NV0xx``, :mod:`repro.verify.shadowing`),
2. container-dependency and layout soundness (``NV1xx``,
   :mod:`repro.verify.dependencies`) — the machine-checked Figure 4,
3. resource admission (``NV2xx``, :mod:`repro.verify.resources`),
4. sketch-parameter sanity (``NV3xx``, :mod:`repro.verify.sketch`),
5. dead-rule elimination hints (``NV5xx``, :mod:`repro.verify.deadrules`).

:mod:`repro.verify.fleet` extends the per-query passes to the whole
deployment: cross-query interference (``NV4xx``), epoch-transition
safety (``NV6xx``) and accuracy budgeting (``NV7xx``) over every
resident rule bank — the backend of ``newton-repro analyze`` and the
transaction manager's staging gate.

All codes are documented in ``docs/static-analysis.md``.
"""

from repro.verify.fleet import (
    FleetConfig,
    analyze_deployment,
    check_staging_plan,
    exit_code,
)
from repro.verify.diagnostics import (
    Diagnostic,
    Location,
    Severity,
    VerificationError,
    VerificationReport,
)
from repro.verify.program import (
    PipelineModel,
    RuleView,
    init_entries_of,
    rules_of_compiled,
    rules_of_slices,
)
from repro.verify.verifier import (
    VerifierConfig,
    require_ok,
    verify_queries,
    verify_slices,
)

__all__ = [
    "FleetConfig",
    "analyze_deployment",
    "check_staging_plan",
    "exit_code",
    "Diagnostic",
    "Location",
    "Severity",
    "VerificationError",
    "VerificationReport",
    "PipelineModel",
    "RuleView",
    "VerifierConfig",
    "init_entries_of",
    "require_ok",
    "rules_of_compiled",
    "rules_of_slices",
    "verify_queries",
    "verify_slices",
]
