"""Structured diagnostics emitted by the static rule verifier.

Every check in :mod:`repro.verify` reports through the same vocabulary: a
:class:`Diagnostic` carries a severity, a *stable* error code (``NVxxx``,
documented in ``docs/static-analysis.md``), a human-readable message, and a
:class:`Location` pinpointing the artifact — query, step, stage, switch —
the finding is anchored to.  A :class:`VerificationReport` aggregates the
diagnostics of one verification run and decides the overall verdict.

Code blocks are grouped by pass:

* ``NV0xx`` — ternary shadowing / overlap (dispatch and R entries)
* ``NV1xx`` — container dependency and compact-layout soundness (Figure 4)
* ``NV2xx`` — resource admission (stage capacity, registers, stage budget)
* ``NV3xx`` — sketch-parameter sanity (Count-Min, Bloom, hash seeds)
* ``NV4xx`` — fleet-level cross-query interference (occupancy policy,
  shared hash units, dispatch starvation)
* ``NV5xx`` — dead-rule elimination hints
* ``NV6xx`` — epoch-transition safety (2PC staging windows, staged-bank
  layout, epoch hygiene)
* ``NV7xx`` — accuracy budgeting against a declared flow cardinality

Codes are part of the public surface: tests pin them, operators suppress
them, and docs explain them.  Never renumber; retire codes by leaving the
number unused.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Severity",
    "Location",
    "Diagnostic",
    "VerificationReport",
    "VerificationError",
]


class Severity(Enum):
    """How bad a finding is.

    ``ERROR`` findings violate a hard invariant of §4 — installing the rule
    set would corrupt monitoring silently at runtime — and make the
    controller reject the operation.  ``WARNING`` findings are suspicious
    but installable (quality or portability hazards).  ``INFO`` findings
    are advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "info": 0}[self.value]


@dataclass(frozen=True)
class Location:
    """Where in the compiled artifact a diagnostic points.

    All parts are optional so one type serves every pass: a dispatch-entry
    finding has no stage, a per-switch resource finding has no step.
    """

    qid: Optional[str] = None
    step: Optional[int] = None
    stage: Optional[int] = None
    switch: Optional[object] = None

    def __str__(self) -> str:
        parts: List[str] = []
        if self.switch is not None:
            parts.append(f"switch={self.switch}")
        if self.qid is not None:
            parts.append(self.qid)
        if self.step is not None:
            parts.append(f"step {self.step}")
        if self.stage is not None:
            parts.append(f"stage {self.stage}")
        return " ".join(parts) if parts else "<program>"


@dataclass(frozen=True)
class Diagnostic:
    """One verifier finding."""

    severity: Severity
    code: str
    message: str
    location: Location = field(default_factory=Location)

    def render(self) -> str:
        return (
            f"{self.severity.value.upper():7s} {self.code} "
            f"[{self.location}] {self.message}"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "severity": self.severity.value,
            "code": self.code,
            "message": self.message,
            "qid": self.location.qid,
            "step": self.location.step,
            "stage": self.location.stage,
            "switch": (
                None if self.location.switch is None
                else str(self.location.switch)
            ),
        }


@dataclass
class VerificationReport:
    """All diagnostics of one verification run."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def extend(self, found: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(found)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """No errors (warnings and infos do not fail verification)."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """No diagnostics of any severity."""
        return not self.diagnostics

    def codes(self) -> Tuple[str, ...]:
        return tuple(d.code for d in self.diagnostics)

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def sorted(self) -> List[Diagnostic]:
        """Errors first, then warnings, then infos; stable within a class."""
        return sorted(
            self.diagnostics, key=lambda d: -d.severity.rank
        )

    def render(self) -> str:
        if self.clean:
            return "verifier: clean (0 diagnostics)"
        lines = [d.render() for d in self.sorted()]
        lines.append(
            f"verifier: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), "
            f"{len(self.diagnostics)} total"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            [d.as_dict() for d in self.sorted()], indent=2, sort_keys=True
        )


class VerificationError(RuntimeError):
    """Raised when a rule set fails verification with errors.

    Carries the full :class:`VerificationReport` so callers (and tests)
    can inspect the structured diagnostics instead of parsing the message.
    """

    def __init__(self, report: VerificationReport):
        self.report = report
        summary = "; ".join(
            f"{d.code} [{d.location}] {d.message}" for d in report.errors[:5]
        )
        extra = len(report.errors) - 5
        if extra > 0:
            summary += f"; ... {extra} more"
        super().__init__(f"rule verification failed: {summary}")
