"""The dynamic-planner surface of the service plane.

``POST /plan`` hands a query to the :class:`DynamicPlanner` instead of
installing it statically; ``GET /plan`` exposes the planner's state and
step journal; planning rounds run between windows and publish
``plan_changed`` events on the SSE feed.  Driven at the dispatch layer
(no sockets), same as the other API tests.
"""

import asyncio
import json

import pytest

from repro.service import GeneratorSource, NewtonService, ServiceConfig
from repro.service.http import dispatch
from repro.service.service import ladder_from_spec, ServiceError


@pytest.fixture
def service():
    return NewtonService(
        GeneratorSource(pps=2000, seed=11), ServiceConfig(switches=2)
    )


def call(service, method, path, query=None, body=b""):
    return asyncio.run(dispatch(service, method, path, query or {}, body))


def decode(response):
    return json.loads(response.body.decode())


def plan_body(**extra):
    spec = {
        "qid": "hh",
        "pipeline": [
            {"op": "map", "keys": ["dip"]},
            {"op": "reduce", "keys": ["dip"]},
            {"op": "where", "ge": 1},
        ],
    }
    spec.update(extra)
    return json.dumps(spec).encode()


class TestLadderFromSpec:
    def test_absent_is_none(self):
        assert ladder_from_spec({"qid": "q"}) is None

    def test_ipv4_shorthand(self):
        ladder = ladder_from_spec({"ladder": {"field": "dip"}})
        assert ladder.field == "dip"
        assert ladder.max_rung == 3  # /8 /16 /24 /32

    def test_explicit_rungs(self):
        ladder = ladder_from_spec({
            "ladder": {"field": "dip",
                       "rungs": [0xFF000000, 0xFFFF0000, None]},
        })
        assert ladder.mask_at(2) == 0xFFFFFFFF

    def test_bad_ladder_400(self):
        with pytest.raises(ServiceError) as err:
            ladder_from_spec({"ladder": {"field": "dip", "rungs": [1]}})
        assert err.value.status == 400


class TestPlanEndpoints:
    def test_plan_manage_created(self, service):
        response = call(service, "POST", "/plan", body=plan_body(
            ladder={"field": "dip"},
        ))
        assert response.status == 201
        payload = decode(response)
        assert payload["step"]["kind"] == "install"
        assert payload["step"]["trigger"] == "bootstrap"
        assert payload["step"]["status"] == "committed"
        assert payload["plan"]["rung"] == 0
        # The coarse variant is what actually got installed.
        assert "hh" in decode(call(service, "GET", "/queries"))["queries"]

    def test_plan_state_lists_managed(self, service):
        call(service, "POST", "/plan", body=plan_body(
            ladder={"field": "dip"},
        ))
        state = decode(call(service, "GET", "/plan"))
        assert state["managed"] == 1
        assert [q["qid"] for q in state["queries"]] == ["hh"]

    def test_wrong_method_405(self, service):
        response = call(service, "DELETE", "/plan")
        assert response.status == 405
        assert decode(response)["allowed"] == "GET, POST"

    def test_duplicate_manage_409(self, service):
        call(service, "POST", "/plan", body=plan_body())
        assert call(service, "POST", "/plan",
                    body=plan_body()).status == 409

    def test_bad_ladder_field_400(self, service):
        response = call(service, "POST", "/plan", body=plan_body(
            ladder={"field": "nonesuch"},
        ))
        assert response.status == 400

    def test_index_lists_plan_endpoints(self, service):
        endpoints = decode(call(service, "GET", "/"))["endpoints"]
        assert "GET /plan" in endpoints
        assert "POST /plan" in endpoints


class TestReplanLoop:
    def test_ticks_refine_and_publish_plan_changed(self, service):
        call(service, "POST", "/plan", body=plan_body(
            ladder={"field": "dip"},
        ))
        sub = service.feed.subscribe(max_queue=256)
        for _ in range(6):
            service.tick()
        events = list(sub._queue)
        sub.unsubscribe()
        plan_events = [e for e in events if e["type"] == "plan_changed"]
        assert plan_events, "planning rounds must publish plan_changed"
        steps = [s for e in plan_events for s in e["steps"]]
        assert any(s["trigger"] == "refine" and s["status"] == "committed"
                   for s in steps)
        state = decode(call(service, "GET", "/plan"))
        children = state["queries"][_root_index(state)]["children"]
        assert children, "hot coarse buckets must have been zoomed into"
        # Children are real installed queries, visible over /queries.
        installed = decode(call(service, "GET", "/queries"))["queries"]
        for child in children:
            assert child in installed

    def test_no_planner_rounds_without_managed_queries(self, service):
        call(service, "POST", "/queries", body=json.dumps(
            {"query": "Q1"}
        ).encode())
        for _ in range(2):
            service.tick()
        assert decode(call(service, "GET", "/plan"))["history"] == []


def _root_index(state):
    return next(i for i, q in enumerate(state["queries"])
                if q["parent"] is None)
