"""Shutdown drains: no staged residue, no hung streams, clean SIGTERM.

Control operations run synchronously on the event loop, so a stop
request can only interleave at an operation boundary — shutdown must
always find the rule banks on a single committed epoch.  The subprocess
test drives the real ``newton-repro serve`` process through a
SIGTERM-mid-run and checks the exit status that CI relies on.
"""

import asyncio
import os
import signal
import subprocess
import sys
import time

from repro.service import GeneratorSource, NewtonService, ServiceConfig


def make_service(**overrides):
    return NewtonService(
        GeneratorSource(pps=1000, seed=6),
        ServiceConfig(switches=2, **overrides),
    )


class TestDrain:
    def test_drain_leaves_a_committed_control_plane(self):
        service = make_service()
        service.install({"query": "Q1"})
        service.install({"query": "Q4"})
        for _ in range(3):
            service.tick()
        service.remove("Q4")
        summary = service.drain()
        assert summary["staged_residue"] == 0
        assert summary["retired_residue"] == 0
        assert len(summary["rule_epochs"]) == 1
        assert summary["rule_epochs"] == [summary["committed_epoch"]]
        assert summary["windows"] == 3
        assert summary["mixed_epoch_packets"] == 0

    def test_drain_publishes_shutdown_and_closes_streams(self):
        service = make_service()
        sub = service.feed.subscribe()
        service.drain()
        events = sub.pop_pending()
        assert [e["type"] for e in events] == ["shutdown"]
        assert service.feed.closed
        assert sub.closed

    def test_drain_is_idempotent(self):
        service = make_service()
        first = service.drain()
        assert service.drain() == first

    def test_shutdown_mid_ingest_waits_for_the_window_in_flight(self):
        async def scenario():
            service = make_service()
            service.install({"query": "Q1"})
            sub = service.feed.subscribe()
            service.start()
            # Let a few windows through, then stop mid-run.
            while service.health()["windows"] < 3:
                await asyncio.sleep(0)
            summary = await service.shutdown()
            return service, sub, summary

        service, sub, summary = asyncio.run(scenario())
        assert service.stopped
        assert summary["staged_residue"] == 0
        assert summary["mixed_epoch_packets"] == 0
        events = sub.pop_pending()
        # Whole windows only, then the final shutdown marker: the loop
        # never abandons a half-ingested window.
        assert events[-1]["type"] == "shutdown"
        window_epochs = [e["epoch"] for e in events
                        if e["type"] == "window"]
        assert window_epochs == list(range(len(window_epochs)))

    def test_blocked_stream_terminates_on_shutdown(self):
        async def scenario():
            service = make_service()
            sub = service.feed.subscribe()
            waiter = asyncio.get_running_loop().create_task(
                sub.next_event()
            )
            await asyncio.sleep(0)
            await service.shutdown()
            event = await asyncio.wait_for(waiter, timeout=5)
            assert event["type"] == "shutdown"
            return await asyncio.wait_for(sub.next_event(), timeout=5)

        assert asyncio.run(scenario()) is None


class TestServeSigterm:
    def test_sigterm_mid_run_exits_clean(self, tmp_path):
        """Regression: SIGTERM while serving (and mid-2PC if it lands
        there) must drain and exit 0 with a committed control plane."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.abspath("src"),
                          env.get("PYTHONPATH", "")])
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--port", "0", "--pps", "2000", "--queries", "Q1", "Q4",
             "--seed", "3"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        try:
            for _ in range(10):  # preinstall lines print first
                line = proc.stdout.readline()
                if "serving on http://" in line:
                    break
            assert "serving on http://" in line
            time.sleep(0.5)  # let it serve a few hundred windows
            proc.send_signal(signal.SIGTERM)
            output, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, output
        assert "shutdown:" in output
        assert "staged residue 0" in output
        assert "0 mixed-epoch packets" in output
