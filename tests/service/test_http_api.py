"""The HTTP API at the dispatch layer (no sockets).

``dispatch`` is a pure coroutine from (method, path, query, body) to a
``Response``; driving it in-process exercises routing, status mapping,
and the NV-diagnostics error bodies without network flakiness.
"""

import asyncio
import json

import pytest

from repro.service import GeneratorSource, NewtonService, ServiceConfig
from repro.service.http import dispatch


@pytest.fixture
def service():
    return NewtonService(
        GeneratorSource(pps=1000, seed=2), ServiceConfig(switches=2)
    )


def call(service, method, path, query=None, body=b""):
    return asyncio.run(dispatch(service, method, path, query or {}, body))


def decode(response):
    return json.loads(response.body.decode())


def install_body(name="Q1", **extra):
    return json.dumps({"query": name, **extra}).encode()


class TestRouting:
    def test_index_lists_endpoints(self, service):
        response = call(service, "GET", "/")
        assert response.status == 200
        assert "GET /metrics" in decode(response)["endpoints"]

    def test_unknown_path_404(self, service):
        assert call(service, "GET", "/nope").status == 404

    def test_wrong_method_405(self, service):
        response = call(service, "PATCH", "/queries")
        assert response.status == 405
        assert decode(response)["allowed"] == "GET, POST"


class TestQueryCrud:
    def test_install_created(self, service):
        response = call(service, "POST", "/queries", body=install_body())
        assert response.status == 201
        payload = decode(response)
        assert payload["qid"] == "Q1"
        assert payload["rules_staged"] > 0
        listed = decode(call(service, "GET", "/queries"))
        assert "Q1" in listed["queries"]
        assert listed["committed_epoch"] == payload["committed_epoch"]

    def test_missing_body_400(self, service):
        assert call(service, "POST", "/queries").status == 400

    def test_malformed_json_400(self, service):
        response = call(service, "POST", "/queries", body=b"{nope")
        assert response.status == 400
        assert "bad JSON" in decode(response)["error"]

    def test_duplicate_install_409(self, service):
        call(service, "POST", "/queries", body=install_body())
        assert call(
            service, "POST", "/queries", body=install_body()
        ).status == 409

    def test_admission_failure_422_with_nv_diagnostics(self, service):
        response = call(service, "POST", "/queries", body=install_body(
            params={"reduce_registers": 10_000_000},
        ))
        assert response.status == 422
        payload = decode(response)
        assert payload["error"] == "static verification failed"
        codes = {d["code"] for d in payload["diagnostics"]}
        assert codes, "rejections must carry NV diagnostics"
        assert all(code.startswith("NV") for code in codes)

    def test_update_and_remove(self, service):
        call(service, "POST", "/queries", body=install_body())
        updated = call(service, "PUT", "/queries/Q1", body=install_body(
            thresholds={"new_tcp_conns": 50},
        ))
        assert updated.status == 200
        assert decode(updated)["op"] == "update"
        removed = call(service, "DELETE", "/queries/Q1")
        assert removed.status == 200
        assert decode(call(service, "GET", "/queries"))["queries"] == {}

    def test_remove_unknown_404(self, service):
        assert call(service, "DELETE", "/queries/Q9").status == 404


class TestReadSide:
    def test_healthz(self, service):
        payload = decode(call(service, "GET", "/healthz"))
        assert payload["status"] == "ok"
        assert payload["window_epoch"] == 0

    def test_reports_respects_limit_and_validates_it(self, service):
        call(service, "POST", "/queries", body=install_body())
        for _ in range(3):
            service.tick()
        payload = decode(call(service, "GET", "/reports",
                              query={"limit": ["2"]}))
        assert [e["epoch"] for e in payload["reports"]] == [1, 2]
        assert call(service, "GET", "/reports",
                    query={"limit": ["two"]}).status == 400

    def test_coverage_shape(self, service):
        payload = decode(call(service, "GET", "/coverage"))
        assert set(payload) == {"coverage", "degraded"}

    def test_metrics_content_type_and_body(self, service):
        call(service, "POST", "/queries", body=install_body())
        service.tick()
        response = call(service, "GET", "/metrics")
        assert response.status == 200
        assert response.content_type == "text/plain; version=0.0.4"
        text = response.body.decode()
        assert "# TYPE service_packets_total counter" in text
        assert "feed_events_published_total" in text
