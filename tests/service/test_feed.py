"""Report fan-out: bounded queues, drop-oldest accounting, shutdown."""

import asyncio

import pytest

from repro.collector.metrics import MetricsRegistry
from repro.service.feed import SubscriptionManager


def window_event(epoch, queries=()):
    return {"type": "window", "epoch": epoch,
            "queries": {qid: {} for qid in queries}}


class TestDropOldest:
    def test_slow_subscriber_keeps_newest_events(self):
        registry = MetricsRegistry()
        feed = SubscriptionManager(registry=registry, max_queue=4)
        sub = feed.subscribe()
        for epoch in range(10):
            feed.publish(window_event(epoch))
        drained = sub.pop_pending()
        assert [e["epoch"] for e in drained] == [6, 7, 8, 9]
        assert sub.dropped == 6
        # Never silent: every eviction lands in the shared registry.
        assert registry.counter("feed_events_dropped_total").total == 6
        assert registry.counter("feed_events_published_total").total == 10

    def test_per_subscriber_queue_override(self):
        feed = SubscriptionManager(max_queue=64)
        sub = feed.subscribe(max_queue=2)
        for epoch in range(5):
            feed.publish(window_event(epoch))
        assert [e["epoch"] for e in sub.pop_pending()] == [3, 4]

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            SubscriptionManager(max_queue=0)


class TestQidFilter:
    def test_window_events_filtered_by_query(self):
        feed = SubscriptionManager()
        sub = feed.subscribe(qid="Q1")
        feed.publish(window_event(0, queries=["Q2"]))
        feed.publish(window_event(1, queries=["Q1", "Q2"]))
        assert [e["epoch"] for e in sub.pop_pending()] == [1]

    def test_control_events_always_delivered(self):
        feed = SubscriptionManager()
        sub = feed.subscribe(qid="Q1")
        feed.publish({"type": "query", "op": "remove", "qid": "Q2"})
        feed.publish({"type": "shutdown"})
        assert [e["type"] for e in sub.pop_pending()] == ["query", "shutdown"]


class TestHistory:
    def test_ring_keeps_the_last_n_windows(self):
        feed = SubscriptionManager(history=3)
        for epoch in range(6):
            feed.publish(window_event(epoch))
        assert [e["epoch"] for e in feed.history()] == [3, 4, 5]
        assert [e["epoch"] for e in feed.history(limit=2)] == [4, 5]

    def test_history_filters_by_qid_and_skips_control_events(self):
        feed = SubscriptionManager()
        feed.publish(window_event(0, queries=["Q1"]))
        feed.publish({"type": "query", "op": "install", "qid": "Q1"})
        feed.publish(window_event(1, queries=["Q2"]))
        assert [e["epoch"] for e in feed.history(qid="Q1")] == [0]
        assert [e["epoch"] for e in feed.history()] == [0, 1]


class TestLifecycle:
    def test_unsubscribe_updates_gauge(self):
        registry = MetricsRegistry()
        feed = SubscriptionManager(registry=registry)
        sub = feed.subscribe()
        assert feed.subscriber_count == 1
        assert registry.gauge("feed_subscribers").value() == 1
        sub.unsubscribe()
        assert feed.subscriber_count == 0
        assert registry.gauge("feed_subscribers").value() == 0
        feed.publish(window_event(0))
        assert sub.pop_pending() == []

    def test_subscribe_after_shutdown_refused(self):
        feed = SubscriptionManager()
        feed.close_all()
        with pytest.raises(RuntimeError):
            feed.subscribe()

    def test_close_all_wakes_a_blocked_consumer(self):
        async def scenario():
            feed = SubscriptionManager()
            sub = feed.subscribe()
            waiter = asyncio.get_running_loop().create_task(sub.next_event())
            await asyncio.sleep(0)  # let the consumer block on the queue
            feed.close_all()
            return await asyncio.wait_for(waiter, timeout=5)

        assert asyncio.run(scenario()) is None

    def test_closed_subscriber_drains_queued_events_first(self):
        async def scenario():
            feed = SubscriptionManager()
            sub = feed.subscribe()
            feed.publish(window_event(0))
            feed.close_all()
            first = await sub.next_event()
            second = await sub.next_event()
            return first, second

        first, second = asyncio.run(scenario())
        assert first["epoch"] == 0
        assert second is None
