"""NewtonService in-process: ticks, CRUD, admission, pruning."""

import pytest

from repro.core.query import flatten
from repro.service import GeneratorSource, NewtonService, ServiceConfig
from repro.service.service import ServiceError, query_from_spec

PPS = 2000


def make_service(**overrides) -> NewtonService:
    config = ServiceConfig(switches=2, **overrides)
    return NewtonService(GeneratorSource(pps=PPS, seed=9), config)


class TestQuerySpecs:
    def test_library_spec_builds_the_named_intent(self):
        query = query_from_spec({"query": "Q1"})
        assert query.qid == "Q1"

    def test_threshold_overrides_applied(self):
        query = query_from_spec(
            {"query": "Q1", "thresholds": {"new_tcp_conns": 3}}
        )
        assert query.qid == "Q1"

    def test_unknown_library_name_rejected(self):
        with pytest.raises(ServiceError) as exc:
            query_from_spec({"query": "Q99"})
        assert exc.value.status == 400
        assert "choices" in exc.value.payload

    def test_unknown_threshold_rejected(self):
        with pytest.raises(ServiceError) as exc:
            query_from_spec({"query": "Q1", "thresholds": {"nope": 1}})
        assert exc.value.status == 400

    def test_pipeline_spec_builds_a_custom_query(self):
        query = query_from_spec({
            "qid": "custom.syn",
            "pipeline": [
                {"op": "filter", "eq": {"proto": 6, "tcp_flags": 2}},
                {"op": "map", "keys": ["dip"]},
                {"op": "reduce", "keys": ["dip"]},
                {"op": "where", "ge": 5},
            ],
        })
        assert query.qid == "custom.syn"

    def test_bad_pipeline_op_rejected(self):
        with pytest.raises(ServiceError) as exc:
            query_from_spec({
                "qid": "x", "pipeline": [{"op": "join", "keys": ["dip"]}],
            })
        assert exc.value.status == 400

    def test_spec_needs_query_or_pipeline(self):
        with pytest.raises(ServiceError) as exc:
            query_from_spec({})
        assert exc.value.status == 400


class TestCrud:
    def test_install_reports_commit_and_publishes(self):
        service = make_service()
        sub = service.feed.subscribe()
        payload = service.install({"query": "Q1"})
        assert payload["qid"] == "Q1"
        assert payload["rules_staged"] > 0
        assert payload["committed_epoch"] == service.deployment.controller.txn.epoch >= 1
        assert "Q1" in service.deployment.controller.installed
        events = sub.pop_pending()
        assert [e["op"] for e in events] == ["install"]
        assert service.registry.counter("service_ops_total").value(
            op="install", outcome="ok") == 1

    def test_duplicate_install_conflicts(self):
        service = make_service()
        service.install({"query": "Q1"})
        with pytest.raises(ServiceError) as exc:
            service.install({"query": "Q1"})
        assert exc.value.status == 409

    def test_remove_unknown_is_404(self):
        service = make_service()
        with pytest.raises(ServiceError) as exc:
            service.remove("Q7")
        assert exc.value.status == 404

    def test_update_spec_must_match_url_qid(self):
        service = make_service()
        service.install({"query": "Q1"})
        with pytest.raises(ServiceError) as exc:
            service.update("Q1", {"query": "Q2"})
        assert exc.value.status == 400

    def test_oversubscribed_params_rejected_with_diagnostics(self):
        service = make_service()
        with pytest.raises(ServiceError) as exc:
            service.install({
                "query": "Q1", "params": {"reduce_registers": 10_000_000},
            })
        assert exc.value.status == 422
        codes = {d["code"] for d in exc.value.payload["diagnostics"]}
        assert codes & {"NV203", "NV601"}
        assert "Q1" not in service.deployment.controller.installed
        # Rejected cleanly: nothing staged anywhere.
        assert all(s.staged_rule_count == 0
                   for s in service.deployment.switches.values())

    def test_fleet_accuracy_gate_rolls_the_install_back(self):
        # Declaring a flow population far beyond the sketch width turns
        # the fleet analyzer's accuracy budget into an admission error;
        # the freshly committed query must be rolled back out.
        service = make_service(expected_flows=1_000_000)
        with pytest.raises(ServiceError) as exc:
            service.install({"query": "Q1"})
        assert exc.value.status == 422
        assert any(d["code"].startswith("NV7")
                   for d in exc.value.payload["diagnostics"])
        assert "Q1" not in service.deployment.controller.installed
        assert service.registry.counter("service_ops_total").value(
            op="install", outcome="rejected-fleet") == 1

    def test_ops_refused_while_stopping(self):
        service = make_service()
        service.request_stop()
        with pytest.raises(ServiceError) as exc:
            service.install({"query": "Q1"})
        assert exc.value.status == 503


class TestIngest:
    def test_tick_publishes_one_window_event(self):
        service = make_service()
        service.install({"query": "Q1"})
        sub = service.feed.subscribe()
        event = service.tick()
        assert event["type"] == "window"
        assert event["epoch"] == 0
        assert event["packets"] > 0
        assert event["mixed_epoch_packets"] == 0
        assert "Q1" in event["queries"]
        assert sub.pop_pending() == [event]
        assert service.deployment.simulator.epoch == 1

    def test_results_surface_in_window_events(self):
        service = make_service()
        # Tiny threshold so background SYNs trip Q1 within one window.
        service.install({
            "query": "Q1", "thresholds": {"new_tcp_conns": 1},
        })
        hits = 0
        for _ in range(5):
            event = service.tick()
            q1 = event["queries"]["Q1"]
            hits += sum(len(r) for r in q1["results"].values())
        assert hits > 0

    def test_reports_view_tracks_history(self):
        service = make_service()
        service.install({"query": "Q1"})
        for _ in range(4):
            service.tick()
        view = service.reports(limit=2)
        assert [e["epoch"] for e in view["reports"]] == [2, 3]
        assert view["window_epoch"] == 4

    def test_source_exhaustion_stops_cleanly(self):
        service = NewtonService(
            GeneratorSource(pps=500, max_windows=2),
            ServiceConfig(switches=1),
        )
        assert service.tick() is not None
        assert service.tick() is not None
        assert service.tick() is None
        assert service.exhausted

    def test_pruning_bounds_retained_state(self):
        service = make_service(prune_lateness=2)
        service.install({
            "query": "Q1", "thresholds": {"new_tcp_conns": 1},
        })
        for _ in range(8):
            service.tick()
        # Windows below the lateness horizon are gone from the collector.
        collector = service.deployment.collector
        record = service.deployment.controller.installed["Q1"]
        for sub in flatten(record.query):
            epochs = collector.merged_results(sub.qid)
            assert all(e >= 8 - 1 - 2 for e in epochs)
        assert all(r.epoch >= 8 - 1 - 2
                   for r in service.deployment.analyzer.reports)

    def test_health_summarises_the_run(self):
        service = make_service()
        service.install({"query": "Q1"})
        service.tick()
        health = service.health()
        assert health["status"] == "ok"
        assert health["windows"] == 1
        assert health["packets"] > 0
        assert health["queries"] == ["Q1"]

    def test_metrics_text_is_prometheus(self):
        service = make_service()
        service.install({"query": "Q1"})
        service.tick()
        text = service.metrics_text()
        assert text.endswith("\n")
        assert "# TYPE service_windows_total counter" in text
        assert "service_windows_total 1" in text
        assert 'service_ops_total{op="install",outcome="ok"} 1' in text
