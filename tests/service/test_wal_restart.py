"""WAL-backed service restart: crash-resume with no lost queries.

The in-process tests model the crash as abandoning a service instance
without ``drain()`` (SIGKILL never runs destructors; every WAL record is
already fsync'd).  The subprocess test drives the real
``newton-repro serve --wal`` process through an actual SIGKILL and
checks the restart banner and exit status that CI relies on.
"""

import os
import re
import subprocess
import sys
import time

from repro.ctrlplane import WriteAheadLog
from repro.service import GeneratorSource, NewtonService, ServiceConfig


def make_service(wal_dir, **overrides):
    return NewtonService(
        GeneratorSource(pps=1000, seed=6),
        ServiceConfig(switches=2, wal_dir=str(wal_dir),
                      wal_snapshot_every=4, **overrides),
    )


class TestCrashResume:
    def test_fresh_start_recovers_nothing(self, tmp_path):
        service = make_service(tmp_path)
        rec = service.wal_recovery
        assert rec["replayed_ops"] == 0
        assert rec["skipped_ops"] == []
        assert rec["committed_epoch"] == 0
        assert rec["window_epoch"] == 0
        health = service.health()
        assert health["wal"]["path"] == os.path.join(
            str(tmp_path), "wal.jsonl"
        )
        service.drain()

    def test_restart_resumes_at_last_committed_epoch(self, tmp_path):
        first = make_service(tmp_path)
        first.install({"query": "Q1"})
        first.install({"query": "Q4"})
        for _ in range(10):
            first.tick()
        committed_before = first.deployment.controller.txn.epoch
        assert committed_before == 2
        first.wal.close()  # crash: no drain, nothing else runs

        second = make_service(tmp_path)
        rec = second.wal_recovery
        assert rec["replayed_ops"] == 2
        assert rec["skipped_ops"] == []
        # Rule state resumes at the crashed incarnation's committed
        # epoch, and every switch is beaconed there — the first
        # post-restart packet already sees the recovered epoch.
        assert rec["committed_epoch"] == committed_before
        assert second.deployment.controller.txn.epoch == committed_before
        epochs = {
            s.rule_epoch
            for s in second.deployment.switches.values()
        }
        assert epochs == {committed_before}
        # The window clock fast-forwards to the newest snapshot
        # (wal_snapshot_every=4 over 10 windows -> snapshot at epoch 8).
        assert rec["window_epoch"] == 8
        health = second.health()
        assert health["window_epoch"] == 8
        assert health["windows"] == 8
        assert health["queries"] == ["Q1", "Q4"]
        assert health["wal"]["recovery"] == rec

        # The resumed service is fully operational and drains clean.
        for _ in range(4):
            second.tick()
        summary = second.drain()
        assert summary["staged_residue"] == 0
        assert summary["retired_residue"] == 0
        assert summary["rule_epochs"] == [committed_before]
        assert summary["mixed_epoch_packets"] == 0
        assert summary["windows"] == 12

    def test_restart_survives_repeated_crashes(self, tmp_path):
        first = make_service(tmp_path)
        first.install({"query": "Q1"})
        for _ in range(4):
            first.tick()
        first.wal.close()

        second = make_service(tmp_path)
        second.install({"query": "Q4"})
        for _ in range(4):
            second.tick()
        second.wal.close()

        third = make_service(tmp_path)
        assert third.wal_recovery["replayed_ops"] == 2
        assert third.health()["queries"] == ["Q1", "Q4"]
        assert third.health()["window_epoch"] == 8
        summary = third.drain()
        assert summary["staged_residue"] == 0
        assert len(summary["rule_epochs"]) == 1

    def test_unreplayable_ops_are_skipped_not_fatal(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append("op", {"op": "install", "spec": {"query": "Q1"}})
        # qid/spec mismatch and an unknown verb: both must be recorded
        # as skipped, not crash the recovery.
        wal.append("op", {"op": "update", "qid": "QX",
                          "spec": {"query": "Q1"}})
        wal.append("op", {"op": "frobnicate"})
        wal.close()

        service = make_service(tmp_path)
        rec = service.wal_recovery
        assert rec["replayed_ops"] == 1
        assert [s["op"] for s in rec["skipped_ops"]] == [
            "update", "frobnicate"
        ]
        assert service.health()["queries"] == ["Q1"]
        service.drain()

    def test_recovery_does_not_publish_feed_events(self, tmp_path):
        first = make_service(tmp_path)
        first.install({"query": "Q1"})
        first.wal.close()

        second = make_service(tmp_path)
        sub = second.feed.subscribe()
        # Replayed installs must not re-announce on the report feed;
        # only live operations do.
        assert sub.pop_pending() == []
        second.install({"query": "Q4"})
        assert [e["type"] for e in sub.pop_pending()] == ["query"]
        second.drain()


class TestServeSigkillRestart:
    """SIGKILL the real ``serve --wal`` process; restart must resume at
    the last committed epoch with zero residue and no mixed-epoch
    packets."""

    @staticmethod
    def _cmd(wal_dir, max_windows):
        return [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--rate", "0", "--pps", "20000",
            "--max-windows", str(max_windows),
            "--queries", "Q1", "Q6",
            "--wal", str(wal_dir), "--wal-snapshot-every", "8",
        ]

    def test_sigkill_then_restart_resumes_clean(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath("src")
        wal_dir = tmp_path / "wal"

        first = subprocess.Popen(
            self._cmd(wal_dir, max_windows=0), env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            for _ in range(20):
                line = first.stdout.readline()
                if "serving on http://" in line:
                    break
            else:
                raise AssertionError("serve never came up")
            time.sleep(0.5)  # tick windows, commit WAL records
        finally:
            first.kill()  # SIGKILL: no drain, no close, no atexit
            first.wait(timeout=30)
            first.stdout.close()

        second = subprocess.Popen(
            self._cmd(wal_dir, max_windows=24), env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        out, _ = second.communicate(timeout=180)

        assert second.returncode == 0, out
        recovery = re.search(
            r"wal recovery: (\d+) ops replayed, committed epoch (\d+), "
            r"window epoch (\d+)", out)
        assert recovery is not None, out
        assert int(recovery.group(1)) == 2, "a query was lost"
        assert int(recovery.group(2)) >= 2
        shutdown = re.search(r"shutdown: committed epoch (\d+)", out)
        assert shutdown is not None, out
        assert int(shutdown.group(1)) == int(recovery.group(2)), \
            "restart must not burn extra epochs on replay"
        assert "staged residue 0" in out
        assert "retired residue 0" in out
        assert "0 mixed-epoch packets" in out
