"""Trace sources: windowed replay, seeded generation, pushed packets."""

import numpy as np
import pytest

from repro.service.sources import (
    GeneratorSource,
    PushSource,
    ReplaySource,
    packet_from_record,
)
from repro.traffic.generators import background_columnar

WINDOW_S = 0.1


def make_trace(n=2000, duration_s=0.5, seed=3):
    return background_columnar(
        n, duration_s=duration_s, seed=seed
    ).with_hosts("h_src0", "h_dst0")


class TestReplaySource:
    def test_windows_partition_the_trace(self):
        trace = make_trace()
        source = ReplaySource(trace)
        total = 0
        epoch = 0
        while True:
            chunk = source.window(epoch, WINDOW_S)
            if chunk is None:
                break
            lo, hi = epoch * WINDOW_S, (epoch + 1) * WINDOW_S
            if len(chunk):
                assert float(chunk.ts[0]) >= lo
                assert float(chunk.ts[-1]) < hi
            total += len(chunk)
            epoch += 1
        assert total == len(trace)
        assert epoch == 5  # 0.5 s of trace at 100 ms windows

    def test_exhausted_returns_none_forever(self):
        source = ReplaySource(make_trace())
        assert source.window(99, WINDOW_S) is None

    def test_loop_time_shifts_later_passes(self):
        trace = make_trace(n=500, duration_s=0.2)
        source = ReplaySource(trace, loop=True)
        first = source.window(0, WINDOW_S)
        # Epoch 2 is the first window of the second pass: same packets,
        # shifted forward by one full cycle so the stream stays monotonic.
        again = source.window(2, WINDOW_S)
        assert len(again) == len(first)
        np.testing.assert_allclose(again.ts, first.ts + 0.2, rtol=0, atol=1e-9)
        lo, hi = 2 * WINDOW_S, 3 * WINDOW_S
        assert float(again.ts[0]) >= lo and float(again.ts[-1]) < hi

    def test_rejects_empty_and_unsorted(self):
        trace = make_trace(n=10)
        with pytest.raises(ValueError):
            ReplaySource(trace.slice(0, 0))
        shuffled = trace.slice(0, len(trace))
        shuffled.ts[:] = shuffled.ts[::-1].copy()
        with pytest.raises(ValueError):
            ReplaySource(shuffled)


class TestGeneratorSource:
    def test_deterministic_per_epoch(self):
        a = GeneratorSource(pps=1000, seed=5).window(3, WINDOW_S)
        b = GeneratorSource(pps=1000, seed=5).window(3, WINDOW_S)
        np.testing.assert_array_equal(a.ts, b.ts)
        np.testing.assert_array_equal(a.columns["sip"], b.columns["sip"])

    def test_timestamps_stay_inside_the_window(self):
        for epoch in range(4):
            chunk = GeneratorSource(pps=2000, seed=1).window(epoch, WINDOW_S)
            assert float(chunk.ts[0]) >= epoch * WINDOW_S
            assert float(chunk.ts[-1]) < (epoch + 1) * WINDOW_S

    def test_max_windows_bounds_the_run(self):
        source = GeneratorSource(pps=100, max_windows=2)
        assert source.window(1, WINDOW_S) is not None
        assert source.window(2, WINDOW_S) is None

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            GeneratorSource(pps=0)


class TestPushSource:
    def test_drains_in_arrival_order_with_window_stamps(self):
        source = PushSource()
        for dport in (80, 443, 53):
            source.offer_record({"proto": 6, "dport": dport})
        assert source.pending() == 3
        chunk = source.window(4, WINDOW_S)
        assert source.pending() == 0
        assert list(chunk.columns["dport"]) == [80, 443, 53]
        assert float(chunk.ts[0]) > 4 * WINDOW_S
        assert float(chunk.ts[-1]) < 5 * WINDOW_S
        assert np.all(np.diff(chunk.ts) > 0)

    def test_idle_window_is_empty_not_none(self):
        source = PushSource()
        chunk = source.window(0, WINDOW_S)
        assert chunk is not None and len(chunk) == 0

    def test_close_drains_then_ends(self):
        source = PushSource()
        source.offer_record({"proto": 17})
        source.close()
        with pytest.raises(RuntimeError):
            source.offer_record({"proto": 6})
        assert len(source.window(0, WINDOW_S)) == 1  # drain the tail
        assert source.window(1, WINDOW_S) is None


class TestPacketFromRecord:
    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown packet fields"):
            packet_from_record({"proto": 6, "dst_port": 80})

    def test_defaults_to_canonical_edge_hosts(self):
        pkt = packet_from_record({"sip": 1, "dip": 2, "proto": 6})
        assert pkt.src_host == "h_src0"
        assert pkt.dst_host == "h_dst0"
