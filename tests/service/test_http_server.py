"""End-to-end over real sockets: server, client, and the SSE feed.

The service loop runs on an event loop owned by a background thread
(the same shape ``newton-repro serve`` uses); the test talks to it
with the stdlib-only :class:`ServiceClient`.
"""

import asyncio
import threading

import pytest

from repro.service import (
    GeneratorSource,
    NewtonService,
    ServiceAPIError,
    ServiceClient,
    ServiceConfig,
    ServiceHTTP,
)


class LiveServer:
    """A running service + HTTP API on an ephemeral port."""

    def __init__(self):
        self.service = NewtonService(
            GeneratorSource(pps=1000, seed=4),
            ServiceConfig(switches=2),
        )
        self.http = ServiceHTTP(self.service, port=0)
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._main, daemon=True)

    def _main(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def __enter__(self):
        self._thread.start()
        self.call(self.http.start())

        async def _start_ingest():
            self.service.start()

        self.call(_start_ingest())
        return self

    def __exit__(self, *exc):
        self.summary = self.call(self.service.shutdown())
        self.call(self.http.stop())
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=30)

    def call(self, coro, timeout=60):
        future = asyncio.run_coroutine_threadsafe(coro, self.loop)
        return future.result(timeout=timeout)

    @property
    def client(self):
        return ServiceClient(self.http.url, timeout=60)


@pytest.fixture(scope="module")
def server():
    with LiveServer() as live:
        yield live


def test_live_install_streams_reports(server):
    client = server.client
    assert client.health()["status"] == "ok"

    payload = client.install({"query": "Q1"})
    assert payload["rules_staged"] > 0

    events = list(client.stream(max_events=3, timeout=60))
    assert [e["type"] for e in events] == ["window"] * 3
    epochs = [e["epoch"] for e in events]
    assert epochs == sorted(epochs)
    assert all(e["mixed_epoch_packets"] == 0 for e in events)
    assert all("Q1" in e["queries"] for e in events)

    reports = client.reports(qid="Q1", limit=2)["reports"]
    assert len(reports) == 2


def test_live_rejection_carries_diagnostics(server):
    with pytest.raises(ServiceAPIError) as exc:
        server.client.install({
            "query": "Q3", "params": {"distinct_registers": 10_000_000},
        })
    assert exc.value.status == 422
    assert exc.value.diagnostics
    assert all(d["code"].startswith("NV") for d in exc.value.diagnostics)


def test_live_metrics_scrape(server):
    text = server.client.metrics()
    assert text.endswith("\n")
    lines = [ln for ln in text.splitlines() if not ln.startswith("#")]
    for line in lines:
        name_and_labels, _, value = line.rpartition(" ")
        assert name_and_labels and float(value) >= 0
    assert any(ln.startswith("service_windows_total ") for ln in lines)


def test_live_bad_query_is_400_not_a_crash(server):
    with pytest.raises(ServiceAPIError) as exc:
        server.client.install({"query": "Q99"})
    assert exc.value.status == 400
    assert server.client.health()["status"] == "ok"
