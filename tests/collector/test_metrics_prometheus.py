"""Exposition contract: stable sample order + Prometheus text format."""

from repro.collector.metrics import MetricsRegistry, Sample


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("zeta_total", "last alphabetically").inc(3)
    registry.counter("alpha_total", "first alphabetically").inc(1, qid="Q2")
    registry.counter("alpha_total").inc(2, qid="Q1")
    registry.gauge("mid_gauge", "a gauge").set(1.5, switch="s0")
    hist = registry.histogram("lat_seconds", (0.01, 0.1, 1.0), "latency")
    for value in (0.005, 0.05, 0.05, 0.5, 5.0):
        hist.observe(value)
    return registry


class TestSampleOrder:
    def test_samples_sorted_by_name_then_labels(self):
        names = [s.name for s in populated_registry().samples()]
        # Counters, gauges, histograms — each block name-sorted; label
        # sets sort within a name (Q1 before Q2).
        assert names == [
            "alpha_total", "alpha_total", "zeta_total", "mid_gauge",
            "lat_seconds_bucket", "lat_seconds_bucket",
            "lat_seconds_bucket", "lat_seconds_bucket",
            "lat_seconds_count", "lat_seconds_sum",
        ]
        labels = [s.labels for s in populated_registry().samples()
                  if s.name == "alpha_total"]
        assert labels == [(("qid", "Q1"),), (("qid", "Q2"),)]

    def test_two_identical_registries_emit_identical_sequences(self):
        assert (list(populated_registry().samples())
                == list(populated_registry().samples()))

    def test_snapshot_iteration_order_is_stable(self):
        snap = populated_registry().snapshot()
        # Name-sorted within each type block (counters, gauges,
        # histograms), identical across equal registries.
        assert list(snap) == [
            "alpha_total", "zeta_total", "mid_gauge", "lat_seconds",
        ]
        assert snap == populated_registry().snapshot()
        assert list(snap["alpha_total"]["series"]) == [
            '{qid="Q1"}', '{qid="Q2"}',
        ]

    def test_histogram_samples_are_cumulative_with_inf_equal_count(self):
        samples = list(populated_registry().samples())
        buckets = [s for s in samples if s.name == "lat_seconds_bucket"]
        values = [s.value for s in buckets]
        assert values == sorted(values), "buckets must be cumulative"
        inf = [s for s in buckets if dict(s.labels)["le"] == "+Inf"]
        count = next(s for s in samples if s.name == "lat_seconds_count")
        assert inf[0].value == count.value == 5

    def test_sample_is_a_named_view(self):
        sample = Sample("n", (("a", "b"),), 1.0)
        assert sample.labels_map() == {"a": "b"}


class TestPrometheusRendering:
    def test_headers_and_series_lines(self):
        text = populated_registry().render_prometheus()
        assert text.endswith("\n")
        lines = text.splitlines()
        assert "# HELP alpha_total first alphabetically" in lines
        assert "# TYPE alpha_total counter" in lines
        assert 'alpha_total{qid="Q1"} 2' in lines
        assert "# TYPE mid_gauge gauge" in lines
        assert 'mid_gauge{switch="s0"} 1.5' in lines
        assert "# TYPE lat_seconds histogram" in lines
        assert 'lat_seconds_bucket{le="+Inf"} 5' in lines
        assert "lat_seconds_count 5" in lines

    def test_cumulative_buckets_differ_from_console_render(self):
        registry = populated_registry()
        # The operator console (render) shows per-bin counts; the scrape
        # endpoint (render_prometheus) must show running totals.
        assert 'lat_seconds_bucket{le="1"} 1' in registry.render()
        assert 'lat_seconds_bucket{le="1"} 4' in registry.render_prometheus()

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("esc_total").inc(1, path='a"b\\c\nd')
        line = [ln for ln in registry.render_prometheus().splitlines()
                if ln.startswith("esc_total{")][0]
        assert line == 'esc_total{path="a\\"b\\\\c\\nd"} 1'

    def test_integer_values_render_without_decimal_point(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(3.0)
        assert "g 3" in registry.render_prometheus().splitlines()

    def test_empty_registry_renders_empty_document(self):
        assert MetricsRegistry().render_prometheus() == "\n"
