"""Windowed stream-executor tests: tail semantics and batch/per-report
equivalence."""

from repro.collector.executor import (
    PerReportExecutor,
    apply_tail,
    merge_records,
    run_batch,
)
from repro.collector.records import QueryRegistration, ReportRecord
from repro.core.ast import (
    CmpOp,
    Distinct,
    FieldPredicate,
    Filter,
    KeyExpr,
    Map,
    Reduce,
    ResultFilter,
)


def registration(key_fields=("sip", "dip"), tail=()):
    return QueryRegistration(
        qid="q", top_qid="Q", key_fields=tuple(key_fields), result_set=1,
        cpu_start=0, num_primitives=len(tail), tail=tuple(tail),
    )


def record(key, count=1, seq=None, switch="s0", epoch=0):
    seq = seq if seq is not None else hash((switch, key, count)) & 0xFFFF
    return ReportRecord(
        qid="q", switch_id=switch, epoch=epoch, ts=0.0, key=tuple(key),
        count=count, seq=seq, arrival_epoch=epoch,
    )


class TestMerge:
    def test_max_merge_across_switches(self):
        merged, seen = {}, set()
        records = [
            record((1, 9), count=3, switch="s0", seq=1),
            record((1, 9), count=5, switch="s1", seq=1),
            record((1, 9), count=4, switch="s2", seq=1),
        ]
        processed, duplicates = merge_records(records, merged, seen)
        assert merged == {(1, 9): 5}
        assert (processed, duplicates) == (3, 0)

    def test_duplicates_collapsed_by_sequence(self):
        merged, seen = {}, set()
        r = record((1, 9), count=3, seq=7)
        processed, duplicates = merge_records([r, r, r], merged, seen)
        assert merged == {(1, 9): 3}
        assert (processed, duplicates) == (3, 2)

    def test_none_count_is_presence(self):
        merged, seen = {}, set()
        r = ReportRecord(qid="q", switch_id="s0", epoch=0, ts=0.0,
                         key=(4,), count=None, seq=1, arrival_epoch=0)
        merge_records([r], merged, seen)
        assert merged == {(4,): 1}


class TestApplyTail:
    def test_filter_over_named_fields(self):
        tail = [Filter((FieldPredicate("sip", CmpOp.EQ, 1),))]
        out = apply_tail(tail, ("sip", "dip"), {(1, 9): 3, (2, 9): 4})
        assert out == {(1, 9): 3}

    def test_filter_on_absent_field_passes(self):
        # proto was consumed on the data plane; the key doesn't carry it.
        tail = [Filter((FieldPredicate("proto", CmpOp.EQ, 6),))]
        out = apply_tail(tail, ("dip",), {(9,): 3})
        assert out == {(9,): 3}

    def test_map_projects_and_max_merges(self):
        tail = [Map((KeyExpr("dip"),))]
        out = apply_tail(tail, ("sip", "dip"), {(1, 9): 3, (2, 9): 5})
        assert out == {(9,): 5}

    def test_map_with_prefix_mask(self):
        tail = [Map((KeyExpr("dip", mask=0xFFFFFF00),))]
        out = apply_tail(tail, ("dip",), {(0x0A000001,): 2, (0x0A000002,): 7})
        assert out == {(0x0A000000,): 7}

    def test_distinct_collapses_to_presence(self):
        tail = [Distinct((KeyExpr("dip"),))]
        out = apply_tail(tail, ("sip", "dip"), {(1, 9): 3, (2, 9): 8})
        assert out == {(9,): 1}

    def test_reduce_sums_collisions(self):
        tail = [Reduce((KeyExpr("dip"),))]
        out = apply_tail(tail, ("sip", "dip"), {(1, 9): 3, (2, 9): 5})
        assert out == {(9,): 8}

    def test_result_filter_thresholds(self):
        tail = [ResultFilter(op=CmpOp.GE, threshold=4)]
        out = apply_tail(tail, ("dip",), {(9,): 3, (8,): 4})
        assert out == {(8,): 4}

    def test_chained_tail(self):
        tail = [
            Map((KeyExpr("dip"),)),
            Reduce((KeyExpr("dip"),)),
            ResultFilter(op=CmpOp.GE, threshold=6),
        ]
        merged = {(1, 9): 3, (2, 9): 4, (3, 8): 2}
        # map keeps max per dip: {9: 4, 8: 2}; reduce re-keys (no
        # collisions left); threshold 6 removes everything.
        assert apply_tail(tail, ("sip", "dip"), merged) == {}

    def test_empty_tail_is_identity(self):
        merged = {(1,): 3}
        assert apply_tail((), ("dip",), merged) == merged


class TestBatchVsPerReport:
    def test_identical_semantics(self):
        tail = [
            Reduce((KeyExpr("dip"),)),
            ResultFilter(op=CmpOp.GE, threshold=5),
        ]
        reg = registration(key_fields=("sip", "dip"), tail=tail)
        records = [
            record((i % 7, 9), count=(i % 4) + 1, switch=f"s{i % 3}", seq=i)
            for i in range(300)
        ]
        records += records[:50]  # genuine duplicates
        batch = run_batch(records, reg)
        naive = PerReportExecutor(reg)
        for r in records:
            naive.observe(r)
        stream = naive.finish()
        assert batch.results == stream.results
        assert batch.processed == stream.processed == len(records)
        assert batch.duplicates == stream.duplicates == 50

    def test_per_report_resets_between_windows(self):
        reg = registration(key_fields=("dip",))
        naive = PerReportExecutor(reg)
        naive.observe(record((9,), count=3, seq=1))
        first = naive.finish()
        second = naive.finish()
        assert first.results == {(9,): 3}
        assert second.results == {}
        assert second.processed == 0

    def test_outcome_accounting(self):
        tail = [ResultFilter(op=CmpOp.GE, threshold=10)]
        reg = registration(key_fields=("dip",), tail=tail)
        outcome = run_batch(
            [record((9,), count=3, seq=1), record((8,), count=12, seq=2)],
            reg,
        )
        assert outcome.results == {(8,): 12}
        assert outcome.filtered == 1
