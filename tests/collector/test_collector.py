"""ReportCollector unit tests: ingest accounting, window close, lateness,
staleness, and register-readout reconciliation."""

from repro.collector import (
    BackpressurePolicy,
    CollectorConfig,
    FaultConfig,
    QueryRegistration,
    ReportCollector,
)
from repro.core.rules import Report

QID = "q.sub"
TOP = "q"


def make_collector(**overrides):
    defaults = dict(queue_capacity=64, policy=BackpressurePolicy.BLOCK)
    defaults.update(overrides)
    collector = ReportCollector(config=CollectorConfig(**defaults))
    collector._registrations[QID] = QueryRegistration(
        qid=QID, top_qid=TOP, key_fields=("dip",), result_set=1,
        cpu_start=2, num_primitives=2, tail=(),
    )
    return collector


def report(dip, count=3, epoch=0, switch="s0", ts=0.0):
    return Report(
        qid=QID, switch_id=switch, ts=ts, epoch=epoch,
        payload={"set1_fields": {"dip": dip}, "global_result": count},
    )


def assert_balanced(collector):
    ingested, accounted = collector.balance()
    assert ingested == accounted, (
        f"flow invariant broken: ingested={ingested} accounted={accounted}"
    )


class TestIngestAndClose:
    def test_window_answer_from_reports(self):
        collector = make_collector()
        assert collector.ingest(report(9, count=3))
        assert collector.ingest(report(8, count=5, switch="s1"))
        collector.close_window(0)
        assert collector.results(QID) == {0: {(9,): 3, (8,): 5}}
        assert collector.processed == 2
        assert_balanced(collector)

    def test_multi_switch_max_merge(self):
        collector = make_collector()
        collector.ingest(report(9, count=3, switch="s0"))
        collector.ingest(report(9, count=7, switch="s1"))
        collector.close_window(0)
        assert collector.results(QID)[0] == {(9,): 7}

    def test_unregistered_report_dropped_but_balanced(self):
        collector = make_collector()
        stray = Report(qid="ghost", switch_id="s0", ts=0.0, epoch=0,
                       payload={})
        assert not collector.ingest(stray)
        assert collector.dropped == 1
        assert_balanced(collector)

    def test_windows_counted(self):
        collector = make_collector()
        collector.close_window(0)
        collector.close_window(1)
        counter = collector.metrics.counter("collector_windows_closed_total")
        assert counter.total == 2


class TestBackpressureAccounting:
    def test_drop_newest_is_accounted(self):
        collector = make_collector(
            queue_capacity=1, policy=BackpressurePolicy.DROP_NEWEST
        )
        collector.ingest(report(9))
        assert not collector.ingest(report(8))
        collector.close_window(0)
        assert collector.dropped == 1
        assert collector.results(QID)[0] == {(9,): 3}
        assert_balanced(collector)

    def test_drop_oldest_is_accounted(self):
        collector = make_collector(
            queue_capacity=1, policy=BackpressurePolicy.DROP_OLDEST
        )
        collector.ingest(report(9))
        collector.ingest(report(8))
        collector.close_window(0)
        assert collector.dropped == 1
        assert collector.results(QID)[0] == {(8,): 3}
        assert_balanced(collector)

    def test_drop_newest_attributed_to_query(self):
        collector = make_collector(
            queue_capacity=1, policy=BackpressurePolicy.DROP_NEWEST
        )
        collector.ingest(report(9))
        collector.ingest(report(8))
        counter = collector.metrics.counter(
            "collector_reports_dropped_total"
        )
        assert counter.value(reason="queue-full", switch="s0",
                             qid=TOP) == 1

    def test_drop_oldest_attributed_to_evicted_query(self):
        """The eviction must count against the query whose report was
        lost, not the query whose arrival caused it (they can differ)."""
        collector = make_collector(
            queue_capacity=1, policy=BackpressurePolicy.DROP_OLDEST
        )
        other = "p.sub"
        collector._registrations[other] = QueryRegistration(
            qid=other, top_qid="p", key_fields=("dip",), result_set=1,
            cpu_start=2, num_primitives=2, tail=(),
        )
        victim = Report(qid=other, switch_id="s0", ts=0.0, epoch=0,
                        payload={"set1_fields": {"dip": 7},
                                 "global_result": 1})
        collector.ingest(victim)
        collector.ingest(report(8))  # evicts the 'p' report
        counter = collector.metrics.counter(
            "collector_reports_dropped_total"
        )
        assert counter.value(reason="evicted-oldest", switch="s0",
                             qid="p") == 1
        assert counter.value(reason="evicted-oldest", switch="s0",
                             qid=TOP) == 0
        assert_balanced(collector)

    def test_block_never_drops(self):
        collector = make_collector(queue_capacity=1)
        for dip in range(10):
            assert collector.ingest(report(dip))
        collector.close_window(0)
        assert collector.dropped == 0
        blocked = collector.metrics.counter(
            "collector_backpressure_blocked_total"
        )
        assert blocked.total == 9
        assert len(collector.results(QID)[0]) == 10
        assert_balanced(collector)


class TestLateness:
    def test_late_within_watermark_recomputes_answer(self):
        collector = make_collector(allowed_lateness=1)
        collector.ingest(report(9, count=3, epoch=0))
        collector.close_window(0)
        assert collector.results(QID)[0] == {(9,): 3}
        # A straggler for window 0 lands while window 1 closes: still
        # inside the watermark, so the answer is recomputed.
        collector.ingest(report(8, count=4, epoch=0, switch="s1"))
        collector.close_window(1)
        assert collector.results(QID)[0] == {(9,): 3, (8,): 4}
        assert_balanced(collector)

    def test_late_beyond_watermark_dropped(self):
        collector = make_collector(allowed_lateness=1)
        collector.close_window(0)
        collector.close_window(1)
        collector.close_window(2)
        collector.ingest(report(9, epoch=0))  # 3 windows stale
        collector.close_window(3)
        assert 0 not in collector.results(QID)
        late = collector.metrics.counter(
            "collector_reports_dropped_total"
        ).value(reason="late", qid=TOP)
        assert late == 1
        assert_balanced(collector)

    def test_delayed_record_stays_pending(self):
        collector = make_collector(
            allowed_lateness=2,
            faults=FaultConfig(delay=1.0, delay_windows=2),
        )
        collector.ingest(report(9, epoch=0))
        collector.close_window(0)
        assert collector.pending == 1
        assert 0 not in collector.results(QID)
        assert_balanced(collector)
        collector.close_window(2)  # arrival epoch reached
        assert collector.pending == 0
        assert collector.results(QID)[0] == {(9,): 3}
        assert_balanced(collector)


class TestFaultTolerance:
    def test_duplicates_collapsed(self):
        collector = make_collector(faults=FaultConfig(duplication=1.0))
        collector.ingest(report(9, count=3))
        collector.close_window(0)
        assert collector.results(QID)[0] == {(9,): 3}
        duplicates = collector.metrics.counter(
            "collector_reports_duplicate_total"
        )
        assert duplicates.total == 1
        assert_balanced(collector)

    def test_loss_is_counted_not_silent(self):
        collector = make_collector(faults=FaultConfig(loss=1.0))
        assert not collector.ingest(report(9))
        assert collector.lost == 1
        assert collector.ingested == 0
        assert_balanced(collector)

    def test_flush_delivers_reorder_holdback(self):
        collector = make_collector(faults=FaultConfig(reorder=1.0))
        collector.ingest(report(9))  # held by the shim
        assert collector.ingested == 0
        collector.flush()
        assert collector.ingested == 1
        assert collector.results(QID) != {}
        assert_balanced(collector)


class TestStaleQueries:
    def test_remove_drops_queued_reports_accounted(self):
        collector = make_collector()
        collector.ingest(report(9))
        collector._registrations.clear()  # query removed mid-window
        collector.close_window(0)
        assert collector.results(QID) == {}
        stale = collector.metrics.counter(
            "collector_reports_dropped_total"
        ).value(reason="stale-query")
        assert stale == 1
        assert_balanced(collector)

    def test_on_remove_forgets_subqueries(self):
        collector = make_collector()
        collector.on_remove(TOP)
        assert collector.registration(QID) is None
        assert not collector.ingest(report(9))
        assert_balanced(collector)


class _FakeController:
    """estimate_count stub standing in for the register readout."""

    def __init__(self, counts):
        self.counts = counts
        self.probes = []

    def estimate_count(self, qid, key_map):
        self.probes.append((qid, dict(key_map)))
        return self.counts.get(key_map["dip"])


class TestReconciliation:
    def test_readout_replaces_clipped_counts_on_loss(self):
        collector = make_collector(
            queue_capacity=1,
            policy=BackpressurePolicy.DROP_NEWEST,
            reconcile_loss_threshold=0.0,
        )
        controller = _FakeController({9: 42})
        collector.controller = controller
        collector.ingest(report(9, count=3))
        collector.ingest(report(8, count=5))  # dropped -> loss detected
        collector.close_window(0)
        assert collector.results(QID)[0] == {(9,): 42}
        assert controller.probes == [(QID, {"dip": 9})]
        reconciled = collector.metrics.counter(
            "collector_reconciled_keys_total"
        )
        assert reconciled.total == 1
        assert_balanced(collector)

    def test_no_readout_below_threshold(self):
        collector = make_collector(reconcile_loss_threshold=0.5)
        controller = _FakeController({9: 42})
        collector.controller = controller
        collector.ingest(report(9, count=3))
        collector.close_window(0)
        assert collector.results(QID)[0] == {(9,): 3}
        assert controller.probes == []

    def test_disabled_by_default(self):
        collector = make_collector(
            queue_capacity=1, policy=BackpressurePolicy.DROP_NEWEST
        )
        controller = _FakeController({9: 42})
        collector.controller = controller
        collector.ingest(report(9))
        collector.ingest(report(8))
        collector.close_window(0)
        assert controller.probes == []
