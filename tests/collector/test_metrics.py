"""Collector metrics registry tests."""

import pytest

from repro.collector.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_and_labels(self):
        c = Counter("reports")
        c.inc(qid="Q1")
        c.inc(2, qid="Q1")
        c.inc(qid="Q2")
        assert c.value(qid="Q1") == 3
        assert c.value(qid="Q2") == 1
        assert c.total == 4

    def test_label_order_is_canonical(self):
        c = Counter("x")
        c.inc(a=1, b=2)
        c.inc(b=2, a=1)
        assert c.total == 2
        assert len(c.series()) == 1

    def test_monotone(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_unlabelled_series(self):
        c = Counter("x")
        c.inc()
        assert c.value() == 1


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("depth")
        g.set(3, switch="s0")
        g.set(7, switch="s0")
        assert g.value(switch="s0") == 7

    def test_missing_reads_zero(self):
        assert Gauge("depth").value(switch="s0") == 0.0


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("d", buckets=(1, 10, 100))
        for v in (0, 1, 5, 50, 500):
            h.observe(v)
        assert h.bucket_counts() == [2, 1, 1, 1]  # last is +Inf overflow
        assert h.count() == 5
        assert h.mean() == pytest.approx((0 + 1 + 5 + 50 + 500) / 5)

    def test_labelled_series_are_independent(self):
        h = Histogram("d", buckets=(1,))
        h.observe(0, qid="A")
        h.observe(2, qid="B")
        assert h.bucket_counts(qid="A") == [1, 0]
        assert h.bucket_counts(qid="B") == [0, 1]

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("d", buckets=(10, 1))

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("d", buckets=())


class TestRegistry:
    def test_idempotent_declaration(self):
        registry = MetricsRegistry()
        a = registry.counter("x", "help")
        b = registry.counter("x")
        assert a is b

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_render_is_stable_and_complete(self):
        registry = MetricsRegistry()
        registry.counter("b_total", "bees").inc(qid="Q1")
        registry.gauge("a_depth").set(4, switch="s0")
        registry.histogram("lat", (1, 2)).observe(1.5)
        text = registry.render()
        assert 'b_total{qid="Q1"} 1' in text
        assert 'a_depth{switch="s0"} 4' in text
        assert "lat_count 1" in text
        assert registry.render() == text  # deterministic

    def test_snapshot_is_json_serialisable(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c").inc(qid="Q1")
        registry.histogram("h", (1,)).observe(0.5, switch="s0")
        json.dumps(registry.snapshot())
