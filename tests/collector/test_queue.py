"""Bounded queue and backpressure-policy tests."""

import pytest

from repro.collector.queue import (
    BackpressurePolicy,
    BoundedReportQueue,
    QueueStats,
)
from repro.collector.records import ReportRecord


def record(seq, epoch=0, arrival=None):
    return ReportRecord(
        qid="q", switch_id="s0", epoch=epoch, ts=0.0, key=(seq,),
        count=1, seq=seq, arrival_epoch=epoch if arrival is None else arrival,
    )


class TestPolicyValidation:
    def test_known_policies(self):
        for policy in BackpressurePolicy.ALL:
            assert BackpressurePolicy.validate(policy) == policy

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            BackpressurePolicy.validate("spill-to-disk")

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BoundedReportQueue(capacity=0)


class TestBlock:
    def test_admits_past_capacity_with_accounted_stalls(self):
        q = BoundedReportQueue(capacity=2, policy=BackpressurePolicy.BLOCK)
        for i in range(5):
            assert q.push(record(i))
        assert q.depth == 5
        assert q.stats.blocked == 3
        assert q.stats.dropped == 0
        assert q.stats.accepted == 5


class TestDropNewest:
    def test_tail_drop(self):
        q = BoundedReportQueue(
            capacity=2, policy=BackpressurePolicy.DROP_NEWEST
        )
        assert q.push(record(0))
        assert q.push(record(1))
        assert not q.push(record(2))
        assert q.depth == 2
        assert q.stats.dropped_newest == 1
        assert [r.seq for r in q.drain()] == [0, 1]


class TestDropOldest:
    def test_head_evicted_for_newcomer(self):
        q = BoundedReportQueue(
            capacity=2, policy=BackpressurePolicy.DROP_OLDEST
        )
        for i in range(4):
            assert q.push(record(i))
        assert q.depth == 2
        assert q.stats.dropped_oldest == 2
        assert [r.seq for r in q.drain()] == [2, 3]


class TestDrain:
    def test_releases_only_arrived_records(self):
        q = BoundedReportQueue(capacity=8)
        q.push(record(0, epoch=0))
        q.push(record(1, epoch=0, arrival=2))  # delayed in flight
        released = q.drain(upto_epoch=0)
        assert [r.seq for r in released] == [0]
        assert q.pending() == 1
        assert [r.seq for r in q.drain(upto_epoch=2)] == [1]

    def test_none_drains_everything(self):
        q = BoundedReportQueue(capacity=8)
        q.push(record(0, arrival=99))
        assert len(q.drain()) == 1
        assert q.pending() == 0

    def test_order_preserved(self):
        q = BoundedReportQueue(capacity=8)
        for i in range(5):
            q.push(record(i))
        assert [r.seq for r in q.drain(upto_epoch=0)] == list(range(5))


class TestStats:
    def test_accounting_identity(self):
        q = BoundedReportQueue(
            capacity=2, policy=BackpressurePolicy.DROP_NEWEST
        )
        for i in range(5):
            q.push(record(i))
        drained = len(q.drain())
        s = q.stats
        assert s.offered == 5
        assert s.offered == s.accepted + s.dropped_newest
        assert s.accepted == drained + q.pending()
        assert s.high_watermark == 2

    def test_dropped_sums_both_kinds(self):
        s = QueueStats(dropped_newest=2, dropped_oldest=3)
        assert s.dropped == 5
