"""Fault-injection shim tests."""

import pytest

from repro.collector.faults import FaultConfig, FaultInjector
from repro.collector.records import ReportRecord


def record(seq, epoch=0):
    return ReportRecord(
        qid="q", switch_id="s0", epoch=epoch, ts=0.0, key=(seq,),
        count=1, seq=seq, arrival_epoch=epoch,
    )


class TestConfig:
    def test_identity_by_default(self):
        assert not FaultConfig().active

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultConfig(loss=1.5)
        with pytest.raises(ValueError):
            FaultConfig(reorder=-0.1)

    def test_delay_windows_floor(self):
        with pytest.raises(ValueError):
            FaultConfig(delay=0.1, delay_windows=0)


class TestInjector:
    def test_identity_passthrough(self):
        shim = FaultInjector()
        r = record(1)
        assert shim.apply(r) == [r]
        assert shim.lost == shim.duplicated == 0

    def test_loss_is_counted(self):
        shim = FaultInjector(FaultConfig(loss=1.0))
        assert shim.apply(record(1)) == []
        assert shim.lost == 1

    def test_duplication_delivers_twice(self):
        shim = FaultInjector(FaultConfig(duplication=1.0))
        out = shim.apply(record(1))
        assert len(out) == 2
        assert out[0] == out[1]
        assert shim.duplicated == 1

    def test_delay_slips_arrival_epoch(self):
        shim = FaultInjector(FaultConfig(delay=1.0, delay_windows=2))
        (out,) = shim.apply(record(1, epoch=3))
        assert out.epoch == 3            # window membership preserved
        assert out.arrival_epoch == 5    # but it arrives late
        assert shim.delayed == 1

    def test_reorder_swaps_adjacent_records(self):
        shim = FaultInjector(FaultConfig(reorder=1.0))
        first = shim.apply(record(1))    # held back
        second = shim.apply(record(2))   # releases the pair swapped
        assert first == []
        assert [r.seq for r in second] == [2, 1]
        assert shim.reordered == 1

    def test_flush_releases_held_record(self):
        shim = FaultInjector(FaultConfig(reorder=1.0))
        shim.apply(record(1))
        assert [r.seq for r in shim.flush()] == [1]
        assert shim.flush() == []

    def test_seed_determinism(self):
        config = FaultConfig(loss=0.3, duplication=0.3, seed=7)
        a, b = FaultInjector(config), FaultInjector(config)
        out_a = [len(a.apply(record(i))) for i in range(200)]
        out_b = [len(b.apply(record(i))) for i in range(200)]
        assert out_a == out_b
        assert a.lost == b.lost > 0

    def test_nothing_vanishes_silently(self):
        """Delivered + lost + held accounts for every offered record."""
        config = FaultConfig(loss=0.2, duplication=0.2, reorder=0.2,
                             delay=0.2, seed=11)
        shim = FaultInjector(config)
        offered, delivered = 500, 0
        for i in range(offered):
            delivered += len(shim.apply(record(i)))
        delivered += len(shim.flush())
        assert delivered == offered + shim.duplicated - shim.lost
