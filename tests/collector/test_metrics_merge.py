"""``MetricsRegistry.merge`` — the fabric plane's per-shard aggregation.

Counters sum per label set, histograms sum bins/count/sum (same bucket
bounds required), gauges resolve collisions last-write-wins, and a name
registered with different types on the two sides raises before anything
is modified.
"""

import pytest

from repro.collector.metrics import MetricsRegistry


def test_counters_sum_per_label_set():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.counter("pkts_total").inc(3, qid="Q1")
    a.counter("pkts_total").inc(5, qid="Q2")
    b.counter("pkts_total").inc(7, qid="Q1")
    b.counter("pkts_total").inc(11, qid="Q3")
    a.merge(b)
    counter = a.counter("pkts_total")
    assert counter.value(qid="Q1") == 10
    assert counter.value(qid="Q2") == 5
    assert counter.value(qid="Q3") == 11
    assert counter.total == 26


def test_label_order_is_canonical_across_registries():
    # {"qid": ..., "switch": ...} and the reverse insertion order must
    # land in one series after a merge, not two.
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.counter("drops_total").inc(1, qid="Q1", switch="s0")
    b.counter("drops_total").inc(2, switch="s0", qid="Q1")
    a.merge(b)
    assert a.counter("drops_total").value(qid="Q1", switch="s0") == 3
    assert len(a.counter("drops_total").series()) == 1


def test_metric_only_in_other_is_carried_over_with_help():
    a = MetricsRegistry()
    b = MetricsRegistry()
    b.counter("shard_only_total", "per-shard metric").inc(4)
    a.merge(b)
    assert a.counter("shard_only_total").value() == 4
    assert a.counter("shard_only_total").help == "per-shard metric"


def test_gauges_last_write_wins_on_collision():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.gauge("depth").set(3.0, switch="s0")
    a.gauge("depth").set(9.0, switch="s1")
    b.gauge("depth").set(5.0, switch="s0")
    a.merge(b)
    assert a.gauge("depth").value(switch="s0") == 5.0
    # Non-colliding series are untouched.
    assert a.gauge("depth").value(switch="s1") == 9.0


def test_histograms_sum_bins_total_and_sum():
    a = MetricsRegistry()
    b = MetricsRegistry()
    bounds = (1.0, 10.0)
    for value in (0.5, 5.0):
        a.histogram("lat", bounds).observe(value)
    for value in (0.5, 50.0):
        b.histogram("lat", bounds).observe(value)
    a.merge(b)
    hist = a.histogram("lat", bounds)
    assert hist.bucket_counts() == [2, 1, 1]
    assert hist.count() == 4
    assert hist.series()[()].sum == pytest.approx(56.0)


def test_histogram_bucket_mismatch_raises_before_mutation():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.histogram("lat", (1.0, 10.0)).observe(0.5)
    a.counter("ok_total").inc(1)
    b.histogram("lat", (2.0, 20.0)).observe(0.5)
    b.counter("ok_total").inc(1)
    with pytest.raises(ValueError, match="bucket bounds differ"):
        a.merge(b)
    # The counter that would have merged fine was not touched either:
    # a failed merge leaves the target registry exactly as it was.
    assert a.counter("ok_total").value() == 1
    assert a.histogram("lat", (1.0, 10.0)).bucket_counts() == [1, 0, 0]


@pytest.mark.parametrize("declare_mine,declare_theirs", [
    (lambda r: r.counter("x"), lambda r: r.gauge("x")),
    (lambda r: r.counter("x"), lambda r: r.histogram("x", (1.0,))),
    (lambda r: r.gauge("x"), lambda r: r.histogram("x", (1.0,))),
    (lambda r: r.histogram("x", (1.0,)), lambda r: r.counter("x")),
])
def test_cross_type_name_collision_raises(declare_mine, declare_theirs):
    a = MetricsRegistry()
    b = MetricsRegistry()
    declare_mine(a)
    declare_theirs(b)
    a.counter("untouched_total").inc(2)
    with pytest.raises(ValueError):
        a.merge(b)
    assert a.counter("untouched_total").value() == 2


def test_merge_chains_and_exposition_stays_stable():
    shards = []
    for i in range(3):
        registry = MetricsRegistry()
        registry.counter("pkts_total").inc(i + 1, shard=str(i))
        registry.counter("pkts_total").inc(10)
        shards.append(registry)
    merged = MetricsRegistry()
    for shard in shards:
        merged.merge(shard)
    # One unlabelled series summed across shards + one series per shard,
    # rendered in a deterministic order.
    assert merged.counter("pkts_total").value() == 30
    text = merged.render_prometheus()
    assert 'pkts_total{shard="0"} 1' in text
    assert 'pkts_total{shard="2"} 3' in text
    again = MetricsRegistry()
    for shard in shards:
        again.merge(shard)
    assert again.render_prometheus() == text


def test_merge_is_commutative_for_counters_and_histograms():
    a1, a2 = MetricsRegistry(), MetricsRegistry()
    b1, b2 = MetricsRegistry(), MetricsRegistry()
    for registry, n in ((a1, 2), (b2, 2), (b1, 5), (a2, 5)):
        registry.counter("c_total").inc(n, qid="Q1")
        registry.histogram("h", (1.0, 2.0)).observe(float(n))
    left = MetricsRegistry().merge(a1).merge(b1)
    right = MetricsRegistry().merge(b2).merge(a2)
    assert left.snapshot() == right.snapshot()
