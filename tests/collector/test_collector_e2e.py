"""End-to-end collection-plane acceptance tests.

A multi-switch CQE deployment reports into the collector; its merged
per-window answers must match a single-switch deployment of the same query
on the same trace — exactly under ``block`` backpressure, and within the
documented loss bound (missing keys <= lost reports, surviving keys exact
after register-readout reconciliation) under injected report loss.
"""

import pytest

from repro.collector import BackpressurePolicy, CollectorConfig, FaultConfig
from repro.core.compiler import QueryParams
from repro.core.packet import Packet
from repro.core.query import Query
from repro.network.deployment import build_deployment
from repro.network.topology import linear
from repro.traffic.traces import Trace

PARAMS = QueryParams(cm_depth=2, reduce_registers=1 << 14,
                     distinct_registers=1 << 14)

QID = "e2e.q"
THRESHOLD = 2
WINDOWS = 4
DIPS = list(range(100, 112))


def query():
    return (
        Query(QID)
        .filter(proto=6, tcp_flags=2)
        .map("dip")
        .reduce("dip")
        .where(ge=THRESHOLD)
    )


def true_count(dip):
    """Packets sent to ``dip`` in every window (by construction)."""
    return THRESHOLD + DIPS.index(dip) % 4


def trace():
    packets = []
    for w in range(WINDOWS):
        for i, dip in enumerate(DIPS):
            for k in range(true_count(dip)):
                packets.append(Packet(
                    sip=1000 + i, dip=dip, proto=6, tcp_flags=2,
                    ts=w * 0.1 + i * 0.004 + k * 0.0002,
                    src_host="h_src0", dst_host="h_dst0",
                ))
    packets.sort(key=lambda p: p.ts)
    return Trace(packets)


def run(n_switches, collector_config=None, num_stages=12,
        stages_per_switch=None):
    dep = build_deployment(
        linear(n_switches), num_stages=num_stages, array_size=1 << 14,
        collector_config=collector_config,
    )
    path = [f"s{i}" for i in range(n_switches)]
    dep.controller.install_query(
        query(), PARAMS, path=path, stages_per_switch=stages_per_switch
    )
    stats = dep.simulator.run(trace())
    dep.collector.flush()
    return dep, stats


@pytest.fixture(scope="module")
def baseline():
    """Single-switch ground truth: the whole query on one switch."""
    dep, stats = run(1)
    results = dep.collector.merged_results(QID)
    assert stats.reports_total == WINDOWS * len(DIPS)
    return results


class TestExactUnderBlock:
    def test_cqe_merged_answer_matches_single_switch(self, baseline):
        config = CollectorConfig(
            queue_capacity=8, policy=BackpressurePolicy.BLOCK
        )
        dep, stats = run(3, collector_config=config, num_stages=3,
                         stages_per_switch=3)
        collector = dep.collector
        merged = collector.merged_results(QID)
        assert merged == baseline
        # Every window has every victim, at the clipped crossing count.
        for epoch in range(WINDOWS):
            assert merged[epoch] == {(dip,): THRESHOLD for dip in DIPS}
        # Block backpressure stalled (12 reports/window > capacity 8)
        # but dropped nothing.
        assert collector.dropped == 0
        blocked = collector.metrics.counter(
            "collector_backpressure_blocked_total"
        )
        assert blocked.total > 0
        assert collector.balance()[0] == collector.balance()[1]

    def test_deferred_cpu_tail_completes_short_path(self):
        """Path too short for the data plane: the CPU side finishes the
        query and the merged answer carries exact (unclipped) counts."""
        dep, stats = run(1, num_stages=3, stages_per_switch=3)
        assert dep.controller.total_slices(QID) >= 2
        assert stats.deferred > 0
        merged = dep.collector.merged_results(QID)
        for epoch in range(WINDOWS):
            assert merged[epoch] == {
                (dip,): true_count(dip) for dip in DIPS
            }


class TestLossTolerance:
    LOSS = 0.05

    def test_bounded_recall_and_reconciled_counts(self, baseline):
        config = CollectorConfig(
            faults=FaultConfig(loss=self.LOSS, seed=23),
            reconcile_loss_threshold=0.0,
        )
        dep, stats = run(3, collector_config=config, num_stages=3,
                         stages_per_switch=3)
        collector = dep.collector
        assert collector.lost > 0  # the shim actually fired
        merged = collector.merged_results(QID)

        found = truth = 0
        for epoch in range(WINDOWS):
            base_keys = set(baseline[epoch])
            got = merged.get(epoch, {})
            # No spurious keys: loss only removes answers.
            assert set(got) <= base_keys
            truth += len(base_keys)
            found += len(set(got) & base_keys)
            for (dip,), count in got.items():
                # Clipped at the crossing <= answer <= register truth.
                assert THRESHOLD <= count <= true_count(dip)

        # Documented bound: one report per key per window, so at most
        # one key vanishes per lost report.
        assert truth - found <= collector.lost
        assert found / truth >= 1 - 2 * self.LOSS

        # Reconciliation lifted surviving keys to the register truth in
        # every window that actually saw loss.
        reconciled = collector.metrics.counter(
            "collector_reconciled_keys_total"
        )
        assert reconciled.total > 0

    def test_invariant_holds_under_loss(self):
        config = CollectorConfig(
            faults=FaultConfig(loss=self.LOSS, duplication=0.05,
                               reorder=0.05, seed=31),
        )
        dep, _ = run(3, collector_config=config, num_stages=3,
                     stages_per_switch=3)
        collector = dep.collector
        ingested, accounted = collector.balance()
        assert ingested == accounted
        assert collector.pending == 0
