"""Clock and control-channel tests."""

import pytest

from repro.runtime.channel import ControlChannel
from repro.runtime.clock import SimClock, WindowClock, epoch_of


class TestClock:
    def test_advance(self):
        clock = SimClock()
        assert clock.advance(1.5) == 1.5
        assert clock.now == 1.5

    def test_no_backwards(self):
        clock = SimClock(10.0)
        with pytest.raises(ValueError):
            clock.advance(-1)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_epoch_of(self):
        assert epoch_of(0.05, 0.1) == 0
        assert epoch_of(0.1, 0.1) == 1
        assert epoch_of(0.99, 0.1) == 9

    def test_epoch_requires_positive_window(self):
        with pytest.raises(ValueError):
            epoch_of(1.0, 0)


class TestChannel:
    def test_delay_linear_in_rules(self):
        channel = ControlChannel(jitter_s=0.0)
        d10 = channel.install_delay(10)
        d20 = channel.install_delay(20)
        assert d20 - d10 == pytest.approx(10 * channel.per_rule_s)

    def test_batch_overhead_applies_once(self):
        channel = ControlChannel(jitter_s=0.0)
        assert channel.install_delay(0) == pytest.approx(
            channel.batch_overhead_s
        )

    def test_jitter_is_seeded(self):
        a = ControlChannel(seed=1)
        b = ControlChannel(seed=1)
        assert a.install_delay(5) == b.install_delay(5)

    def test_log_and_totals(self):
        channel = ControlChannel(jitter_s=0.0)
        channel.install_delay(4)
        channel.remove_delay(4)
        assert len(channel.log) == 2
        assert channel.total_delay("install") < channel.total_delay()

    def test_q1_scale_lands_in_paper_band(self):
        """~9 rules must install in single-digit milliseconds (Figure 11)."""
        channel = ControlChannel(seed=3)
        delay_ms = channel.install_delay(9) * 1e3
        assert 3.0 < delay_ms < 10.0

    def test_negative_rules_rejected(self):
        with pytest.raises(ValueError):
            ControlChannel().install_delay(-1)

    def test_negative_timing_rejected(self):
        with pytest.raises(ValueError):
            ControlChannel(per_rule_s=-0.1)

    def test_transact_rejects_unknown_operation(self):
        """Regression: transact() used to accept any string, silently
        fragmenting the log vocabulary (e.g. "instal" typos)."""
        channel = ControlChannel(jitter_s=0.0)
        with pytest.raises(ValueError, match="unknown channel operation"):
            channel.transact("reinstall", 3)

    def test_total_delay_rejects_unknown_operation_filter(self):
        channel = ControlChannel(jitter_s=0.0)
        channel.install_delay(3)
        with pytest.raises(ValueError, match="unknown channel operation"):
            channel.total_delay("instal")
        # No filter still means "everything".
        assert channel.total_delay() > 0


class TestChannelLogCap:
    def test_log_is_capped_with_accounted_evictions(self):
        channel = ControlChannel(jitter_s=0.0, max_log=3)
        for rules in range(5):
            channel.install_delay(rules)
        assert len(channel.log) == 3
        assert channel.dropped_log_entries == 2
        # The newest transactions survive (oldest-first eviction).
        assert [t.rules for t in channel.log] == [2, 3, 4]

    def test_totals_reflect_surviving_entries_only(self):
        channel = ControlChannel(jitter_s=0.0, max_log=2)
        channel.install_delay(1)
        channel.install_delay(2)
        channel.install_delay(3)
        assert channel.total_delay() == pytest.approx(
            2 * channel.batch_overhead_s + 5 * channel.per_rule_s
        )

    def test_default_cap_unobtrusive(self):
        channel = ControlChannel(jitter_s=0.0)
        channel.install_delay(1)
        assert channel.dropped_log_entries == 0
        assert len(channel.log) == 1

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            ControlChannel(max_log=0)


class TestWindowClock:
    def test_subscribers_fire_in_order(self):
        clock = WindowClock(window_ms=100)
        order = []
        clock.subscribe(lambda e: order.append(("collector", e)))
        clock.subscribe(lambda e: order.append(("analyzer", e)))
        clock.close(0)
        assert order == [("collector", 0), ("analyzer", 0)]
        assert clock.epoch == 1

    def test_duplicate_subscription_ignored(self):
        clock = WindowClock()
        calls = []

        def cb(epoch):
            calls.append(epoch)

        clock.subscribe(cb)
        clock.subscribe(cb)
        clock.close(0)
        assert calls == [0]

    def test_epoch_of_uses_window(self):
        clock = WindowClock(window_ms=100)
        assert clock.epoch_of(0.25) == 2

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            WindowClock(window_ms=0)
