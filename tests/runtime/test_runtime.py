"""Clock and control-channel tests."""

import pytest

from repro.runtime.channel import ControlChannel
from repro.runtime.clock import SimClock, epoch_of


class TestClock:
    def test_advance(self):
        clock = SimClock()
        assert clock.advance(1.5) == 1.5
        assert clock.now == 1.5

    def test_no_backwards(self):
        clock = SimClock(10.0)
        with pytest.raises(ValueError):
            clock.advance(-1)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_epoch_of(self):
        assert epoch_of(0.05, 0.1) == 0
        assert epoch_of(0.1, 0.1) == 1
        assert epoch_of(0.99, 0.1) == 9

    def test_epoch_requires_positive_window(self):
        with pytest.raises(ValueError):
            epoch_of(1.0, 0)


class TestChannel:
    def test_delay_linear_in_rules(self):
        channel = ControlChannel(jitter_s=0.0)
        d10 = channel.install_delay(10)
        d20 = channel.install_delay(20)
        assert d20 - d10 == pytest.approx(10 * channel.per_rule_s)

    def test_batch_overhead_applies_once(self):
        channel = ControlChannel(jitter_s=0.0)
        assert channel.install_delay(0) == pytest.approx(
            channel.batch_overhead_s
        )

    def test_jitter_is_seeded(self):
        a = ControlChannel(seed=1)
        b = ControlChannel(seed=1)
        assert a.install_delay(5) == b.install_delay(5)

    def test_log_and_totals(self):
        channel = ControlChannel(jitter_s=0.0)
        channel.install_delay(4)
        channel.remove_delay(4)
        assert len(channel.log) == 2
        assert channel.total_delay("install") < channel.total_delay()

    def test_q1_scale_lands_in_paper_band(self):
        """~9 rules must install in single-digit milliseconds (Figure 11)."""
        channel = ControlChannel(seed=3)
        delay_ms = channel.install_delay(9) * 1e3
        assert 3.0 < delay_ms < 10.0

    def test_negative_rules_rejected(self):
        with pytest.raises(ValueError):
            ControlChannel().install_delay(-1)

    def test_negative_timing_rejected(self):
        with pytest.raises(ValueError):
            ControlChannel(per_rule_s=-0.1)
