"""Runtime invariant sanitizer: observe-only checks in both engines.

The sanitizer (``--sanitize`` / ``NEWTON_SANITIZE=1``) compiles the
static analyzer's assumptions into runtime checks.  These tests pin the
two halves of its contract:

* **Bit-identity** — a sanitized run produces exactly the same stats,
  report stream, and register dumps as an unsanitized one; violations
  accumulate on the :class:`~repro.runtime.sanitizer.Sanitizer` object
  only, never on :class:`SimulationStats`.
* **Engine parity** — when an invariant *is* violated, the scalar and
  vectorized engines count the same number of trips.

Violations are seeded by doctoring installed rule banks (the compiler
never emits a program that trips — the analyzer proves that), so each
check's detection path is exercised end to end.
"""

from dataclasses import replace as dc_replace
from types import SimpleNamespace

import pytest

from repro.core.compiler import QueryParams
from repro.core.packet import Packet
from repro.core.query import Query
from repro.core.rules import HConfig, HashMode, ModuleType
from repro.dataplane.pipeline import PipelineResult
from repro.engine.scalar import ScalarEngine
from repro.network.deployment import build_deployment, sanitize_enabled
from repro.network.simulator import SimulationStats
from repro.network.snapshot import SnapshotHeader
from repro.network.topology import linear
from repro.runtime.sanitizer import CHECKS, Sanitizer, SanitizerViolation
from repro.traffic.generators import assign_hosts, caida_like, syn_flood
from repro.traffic.traces import merge_traces

PARAMS = QueryParams(cm_depth=2, reduce_registers=2048,
                     distinct_registers=2048)
SMALL = QueryParams(cm_depth=2, reduce_registers=128,
                    distinct_registers=128)


def syn_query(qid="san.q", threshold=3):
    return (
        Query(qid)
        .filter(proto=6, tcp_flags=2)
        .map("dip")
        .reduce("dip")
        .where(ge=threshold)
    )


def workload(n_packets=2000, duration_s=0.3, seed=11):
    trace = merge_traces([
        caida_like(n_packets, duration_s=duration_s, seed=seed),
        syn_flood(n_packets=max(n_packets // 5, 100),
                  duration_s=duration_s, seed=seed + 1),
    ])
    return assign_hosts(trace, [("h_src0", "h_dst0")])


def deploy(engine, *, sanitize, queries=(syn_query,), params=PARAMS,
           switches=3, array_size=1 << 13, doctor=None):
    dep = build_deployment(linear(switches), array_size=array_size,
                           engine=engine, sanitize=sanitize)
    path = [f"s{i}" for i in range(switches)]
    for make in queries:
        dep.controller.install_query(make(), params, path=path)
    if doctor is not None:
        doctor(dep)
    return dep


def run(dep, trace):
    stats = dep.simulator.run(trace)
    return stats


class TestCleanRuns:
    @pytest.mark.parametrize("engine", ["scalar", "vector"])
    def test_admitted_deployment_trips_nothing(self, engine):
        dep = deploy(engine, sanitize=True)
        run(dep, workload())
        assert dep.sanitizer is not None
        assert dep.sanitizer.summary() == {check: 0 for check in CHECKS}
        assert dep.sanitizer.clean

    @pytest.mark.parametrize("engine", ["scalar", "vector"])
    def test_sanitize_on_is_bit_identical_to_off(self, engine):
        trace = workload()

        def observe(sanitize):
            dep = deploy(engine, sanitize=sanitize)
            stats = run(dep, trace)
            regs = {
                str(sid): tuple(
                    tuple(bank.array.dump().tolist())
                    for bank in sw.pipeline.layout.state_banks()
                )
                for sid, sw in dep.switches.items()
            }
            sig = (
                stats.packets, stats.delivered, stats.dropped,
                dict(stats.reports_by_switch), stats.deferred,
                stats.sp_bytes, stats.payload_bytes, stats.epochs,
                stats.mixed_rule_epoch_packets,
                dict(stats.initiated_by_query),
            )
            return sig, regs

        assert observe(True) == observe(False)

    def test_deployment_off_by_default(self, monkeypatch):
        monkeypatch.delenv("NEWTON_SANITIZE", raising=False)
        assert not sanitize_enabled()
        dep = build_deployment(linear(1))
        assert dep.sanitizer is None
        assert dep.simulator.sanitizer is None

    def test_env_var_switches_it_on(self, monkeypatch):
        monkeypatch.setenv("NEWTON_SANITIZE", "1")
        assert sanitize_enabled()
        dep = build_deployment(linear(1))
        assert dep.sanitizer is not None
        assert dep.switch("s0").pipeline.sanitizer is dep.sanitizer
        monkeypatch.setenv("NEWTON_SANITIZE", "off")
        assert not sanitize_enabled()


def doctor_h_direct(dep, qid="san.q", field="sport"):
    """Rewrite one HASH-mode H rule of ``qid`` into DIRECT mode.

    The compiler only pairs DIRECT H with a passthrough S, so a DIRECT
    H feeding a stateful S is exactly the malformed program the
    register-OOB check exists for: source ports exceed the 128-entry
    slice and the array silently wraps.
    """
    for sw in dep.switches.values():
        pipeline = sw.pipeline
        for versions in pipeline._slices.values():
            for i, inst in enumerate(versions):
                if inst.query_slice.qid != qid:
                    continue
                placed, doctored = [], False
                for stage, spec, skey in inst.placed:
                    if (not doctored
                            and spec.module_type
                            == ModuleType.HASH_CALCULATION
                            and spec.config.mode == HashMode.HASH):
                        spec = dc_replace(spec, config=HConfig(
                            mode=HashMode.DIRECT, direct_field=field,
                            range_size=spec.config.range_size,
                        ))
                        doctored = True
                    placed.append((stage, spec, skey))
                versions[i] = dc_replace(inst, placed=tuple(placed))
        # Invalidate the vectorized engine's compiled-program cache.
        pipeline.mutation_seq += 1


class TestRegisterOob:
    @pytest.mark.parametrize("engine", ["scalar", "vector"])
    def test_direct_h_into_stateful_s_trips(self, engine):
        dep = deploy(engine, sanitize=True, params=SMALL,
                     array_size=4096, switches=1, doctor=doctor_h_direct)
        run(dep, workload())
        assert dep.sanitizer.counts["register-oob"] > 0
        v = dep.sanitizer.violations[0]
        assert v.check == "register-oob"
        assert "slice" in v.message

    def test_scalar_and_vector_count_identically(self):
        trace = workload()
        counts = {}
        for engine in ("scalar", "vector"):
            dep = deploy(engine, sanitize=True, params=SMALL,
                         array_size=4096, switches=1,
                         doctor=doctor_h_direct)
            run(dep, trace)
            counts[engine] = dep.sanitizer.counts["register-oob"]
        assert counts["scalar"] == counts["vector"] > 0


class TestHashCollision:
    """Two same-shape queries land on one physical HashUnit with the
    same key bytes — the NV402 hazard, observed at execution time."""

    QUERIES = (
        lambda: syn_query("san.a"),
        lambda: syn_query("san.b", threshold=4),
    )

    @pytest.mark.parametrize("engine", ["scalar", "vector"])
    def test_shared_unit_same_keys_trips(self, engine):
        dep = deploy(engine, sanitize=True, queries=self.QUERIES,
                     switches=1)
        run(dep, workload())
        assert dep.sanitizer.counts["hash-collision"] > 0
        v = next(x for x in dep.sanitizer.violations
                 if x.check == "hash-collision")
        assert "seed" in v.message

    def test_scalar_and_vector_count_identically(self):
        trace = workload()
        counts = {}
        for engine in ("scalar", "vector"):
            dep = deploy(engine, sanitize=True, queries=self.QUERIES,
                         switches=1)
            run(dep, trace)
            counts[engine] = dep.sanitizer.counts["hash-collision"]
        assert counts["scalar"] == counts["vector"] > 0

    def test_distinct_geometries_do_not_trip(self):
        # Different register budgets -> different range_size -> distinct
        # physical units: the analyzer admits this pair and the
        # sanitizer agrees.
        queries = (
            lambda: syn_query("san.a"),
            lambda: syn_query("san.b"),
        )
        dep = build_deployment(linear(1), array_size=1 << 13,
                               sanitize=True)
        dep.controller.install_query(queries[0](), PARAMS, path=["s0"])
        dep.controller.install_query(
            queries[1](),
            QueryParams(cm_depth=2, reduce_registers=1024,
                        distinct_registers=1024),
            path=["s0"],
        )
        run(dep, workload())
        assert dep.sanitizer.counts["hash-collision"] == 0


class TestMixedEpoch:
    def _sim(self, switches, sanitizer):
        return SimpleNamespace(
            switches=switches, collector=None, analyzer=None,
            controller=None, sanitizer=sanitizer,
        )

    @staticmethod
    def _switch(epoch):
        def process(packet, snapshot=None, ingress_edge=True):
            return PipelineResult(rule_epochs={"q": epoch})
        return SimpleNamespace(process=process)

    def test_divergent_epochs_along_path_trip(self):
        sanitizer = Sanitizer()
        sim = self._sim({"a": self._switch(0), "b": self._switch(1)},
                        sanitizer)
        stats = SimulationStats()
        packet = Packet(ts=0.0)
        ScalarEngine()._forward(sim, packet, ["a", "b"], stats)
        assert stats.mixed_rule_epoch_packets == 1
        assert sanitizer.counts["mixed-epoch"] == 1
        assert "epochs" in sanitizer.violations[0].message

    def test_consistent_epochs_do_not_trip(self):
        sanitizer = Sanitizer()
        sim = self._sim({"a": self._switch(2), "b": self._switch(2)},
                        sanitizer)
        stats = SimulationStats()
        ScalarEngine()._forward(sim, Packet(ts=0.0), ["a", "b"], stats)
        assert stats.mixed_rule_epoch_packets == 0
        assert sanitizer.total == 0


class TestCoverage:
    def test_accounting_hole_trips(self):
        sanitizer = Sanitizer()
        stats = SimpleNamespace(packets=10, delivered=7, dropped=2)
        sanitizer.check_coverage(stats)
        assert sanitizer.counts["coverage"] == 1
        assert not sanitizer.clean

    def test_balanced_accounting_is_clean(self):
        sanitizer = Sanitizer()
        stats = SimpleNamespace(packets=10, delivered=8, dropped=2)
        sanitizer.check_coverage(stats)
        assert sanitizer.total == 0


class TestSanitizerObject:
    def test_unknown_check_rejected(self):
        with pytest.raises(ValueError):
            Sanitizer().record("not-a-check", "nope")

    def test_detail_limit_bounds_records_not_counts(self):
        sanitizer = Sanitizer()
        for i in range(200):
            sanitizer.record("register-oob", f"trip {i}")
        assert sanitizer.counts["register-oob"] == 200
        assert len(sanitizer.violations) <= 64

    def test_render_and_summary(self):
        sanitizer = Sanitizer()
        sanitizer.record("coverage", "1 packet unaccounted for")
        assert "coverage" in sanitizer.render()
        assert set(sanitizer.summary()) == set(CHECKS)

    def test_violation_render_carries_context(self):
        v = SanitizerViolation("register-oob", "index out of range",
                              switch="s0", qid="q1", count=3)
        text = v.render()
        assert "s0" in text and "q1" in text and "register-oob" in text
