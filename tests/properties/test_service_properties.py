"""Property sweep: API-driven control churn on a live service.

ISSUE 7 satellite: overlapping HTTP install/update/remove requests must
serialize through the 2PC control plane while the ingest loop ticks —
after ANY seeded interleaving of concurrent CRUD waves and window
ticks, no packet has observed a mixed rule epoch, the rule banks sit on
exactly one committed epoch with zero staged/retired residue, and no
query is lost: the controller's installed set matches exactly what the
HTTP responses (in completion order) imply.  Swept over 200 seeds.
"""

import asyncio
import json
import random

from repro.network.deployment import build_deployment
from repro.network.topology import linear
from repro.service import GeneratorSource, NewtonService, ServiceConfig
from repro.service.http import dispatch

N_SEEDS = 200
N_SWITCHES = 2

#: The op pool: (op-kind, qid).  Updates use a threshold override so a
#: committed update really restages rules.
OPS = [
    ("install", "Q1"), ("install", "Q4"),
    ("update", "Q1"), ("update", "Q4"),
    ("remove", "Q1"), ("remove", "Q4"),
]


def make_service(seed):
    # A plain deployment (no resilience plane) keeps the 200-seed sweep
    # fast; the control-plane invariants under test are identical.
    deployment = build_deployment(
        linear(N_SWITCHES), array_size=1 << 13, engine="vector",
    )
    return NewtonService(
        GeneratorSource(pps=400, seed=seed),
        ServiceConfig(switches=N_SWITCHES),
        deployment=deployment,
    )


def request_for(kind, qid):
    if kind == "install":
        return ("POST", "/queries", json.dumps({"query": qid}).encode())
    if kind == "update":
        body = json.dumps(
            {"query": qid, "thresholds": {"new_tcp_conns": 60}
             if qid == "Q1" else {"port_scan": 60}}
        ).encode()
        return ("PUT", f"/queries/{qid}", body)
    return ("DELETE", f"/queries/{qid}", b"")


def apply_effect(expected, kind, qid, status):
    """Fold one completed request into the expected installed set."""
    if status >= 400:
        return
    if kind in ("install", "update"):
        expected.add(qid)
    else:
        expected.discard(qid)


async def drive(service, rng):
    """Random waves of concurrent CRUD requests between window ticks."""
    expected = set()
    statuses = []
    for _ in range(rng.randint(2, 4)):
        for _ in range(rng.randint(0, 2)):
            service.tick()
        wave = [rng.choice(OPS) for _ in range(rng.randint(1, 3))]
        responses = await asyncio.gather(*[
            dispatch(service, method, path, {}, body)
            for method, path, body in (request_for(k, q) for k, q in wave)
        ])
        # gather preserves task order, and the single-threaded loop runs
        # the (synchronous) handlers in exactly that order — folding the
        # responses in sequence reconstructs the serialized history.
        for (kind, qid), response in zip(wave, responses):
            statuses.append(response.status)
            apply_effect(expected, kind, qid, response.status)
    service.tick()
    return expected, statuses


def run_seed(seed):
    rng = random.Random(seed)
    service = make_service(seed)
    expected, statuses = asyncio.run(drive(service, rng))
    summary = service.drain()
    return service, summary, expected, statuses


class TestApiChurnSerializes:
    def test_200_seeded_api_interleavings(self):
        succeeded = rejected = 0
        for seed in range(N_SEEDS):
            service, summary, expected, statuses = run_seed(seed)
            label = f"seed {seed}"
            # No lost queries: the control plane holds exactly the set
            # the serialized HTTP history says it should.
            assert set(service.deployment.controller.installed) == expected, (
                f"{label}: installed set diverged from the API history"
            )
            # No packet ever saw a half-applied operation.
            assert summary["mixed_epoch_packets"] == 0, label
            assert summary["staged_residue"] == 0, label
            assert summary["retired_residue"] == 0, label
            assert summary["rule_epochs"] == [summary["committed_epoch"]], (
                f"{label}: rule banks off the committed epoch"
            )
            # Per-request sanity: only the statuses the API defines.
            assert all(s in (200, 201, 404, 409) for s in statuses), (
                f"{label}: unexpected statuses {statuses}"
            )
            succeeded += sum(1 for s in statuses if s < 400)
            rejected += sum(1 for s in statuses if s >= 400)
        # The sweep must exercise both outcomes to mean anything.
        assert succeeded > 0, "no API operation ever committed"
        assert rejected > 0, "no API operation was ever rejected"
