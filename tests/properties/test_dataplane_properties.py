"""Property-based tests for the data-plane substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplane.alu import StatefulOp
from repro.dataplane.phv import PhvContext
from repro.dataplane.registers import RegisterArray
from repro.dataplane.tables import TernaryRule, TernaryTable
from repro.network.snapshot import (
    SNAPSHOT_VALUE_MAX,
    SnapshotEntry,
    decode_entry,
    encode_entry,
)

values = st.one_of(st.none(), st.integers(0, SNAPSHOT_VALUE_MAX))


class TestSnapshotCodecProperties:
    @given(st.integers(0, 15), st.integers(1, 16), values, values, values,
           st.booleans())
    @settings(max_examples=200, deadline=None)
    def test_round_trip(self, cursor, total, s0, s1, g, stopped):
        ctx = PhvContext()
        ctx.set(0).state_result = s0
        ctx.set(1).state_result = s1
        ctx.global_result = g
        ctx.stopped = stopped
        entry = SnapshotEntry(cursor=cursor, total_slices=total, ctx=ctx)
        decoded = decode_entry(encode_entry(entry), total)
        assert decoded.cursor == cursor
        assert decoded.ctx.stopped == stopped
        assert decoded.ctx.set(0).state_result == s0
        assert decoded.ctx.set(1).state_result == s1
        assert decoded.ctx.global_result == g

    @given(st.integers(0, 15), st.integers(0, 1 << 40))
    @settings(max_examples=100, deadline=None)
    def test_wire_size_constant(self, cursor, value):
        ctx = PhvContext()
        ctx.global_result = value
        wire = encode_entry(SnapshotEntry(cursor=cursor, total_slices=16,
                                          ctx=ctx))
        assert len(wire) == 10  # always within the reserved 12 bytes

    @given(st.integers(SNAPSHOT_VALUE_MAX + 1, 1 << 45))
    @settings(max_examples=50, deadline=None)
    def test_saturation_never_wraps(self, huge):
        ctx = PhvContext()
        ctx.set(0).state_result = huge
        decoded = decode_entry(
            encode_entry(SnapshotEntry(cursor=0, total_slices=2, ctx=ctx)), 2
        )
        assert decoded.ctx.set(0).state_result == SNAPSHOT_VALUE_MAX


@st.composite
def ternary_rules(draw):
    fields = draw(st.lists(
        st.sampled_from(["proto", "dport", "tcp_flags"]),
        min_size=0, max_size=2, unique=True,
    ))
    match = {}
    for name in fields:
        value = draw(st.integers(0, 255))
        mask = draw(st.integers(0, 255))
        match[name] = (value, mask)
    priority = draw(st.integers(0, 10))
    return TernaryRule.build(match, priority, action=draw(st.integers()))


class TestTernaryTableProperties:
    @given(st.lists(ternary_rules(), min_size=1, max_size=12),
           st.dictionaries(
               st.sampled_from(["proto", "dport", "tcp_flags"]),
               st.integers(0, 255), max_size=3,
           ))
    @settings(max_examples=150, deadline=None)
    def test_lookup_matches_brute_force(self, rules, fields):
        table = TernaryTable("t", capacity=64)
        for rule in rules:
            table.insert(rule)
        hit = table.lookup(fields)
        matching = [r for r in rules if r.matches(fields)]
        if not matching:
            assert hit is None
        else:
            best = max(r.priority for r in matching)
            assert hit is not None
            assert hit.priority == best
            assert hit.matches(fields)

    @given(st.lists(ternary_rules(), min_size=1, max_size=12),
           st.dictionaries(
               st.sampled_from(["proto", "dport", "tcp_flags"]),
               st.integers(0, 255), max_size=3,
           ))
    @settings(max_examples=100, deadline=None)
    def test_lookup_all_is_exact_filter(self, rules, fields):
        table = TernaryTable("t", capacity=64)
        for rule in rules:
            table.insert(rule)
        got = table.lookup_all(fields)
        assert len(got) == sum(1 for r in rules if r.matches(fields))
        assert all(r.matches(fields) for r in got)


class TestRegisterArrayProperties:
    @given(st.lists(st.integers(1, 16), min_size=1, max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_allocations_never_overlap(self, sizes):
        array = RegisterArray(128)
        allocations = []
        for i, size in enumerate(sizes):
            try:
                allocations.append(array.allocate(("q", i), size))
            except Exception:
                break
        spans = sorted((a.offset, a.end) for a in allocations)
        for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
            assert end_a <= start_b

    @given(st.lists(st.tuples(st.integers(0, 63), st.integers(1, 5)),
                    min_size=1, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_counting_is_exact_per_cell(self, ops):
        array = RegisterArray(64)
        array.allocate(("q", 0), 64)
        truth = {}
        for index, amount in ops:
            truth[index] = truth.get(index, 0) + amount
            array.execute(("q", 0), index, StatefulOp.ADD, amount)
        cells = array.read_slice(("q", 0))
        for index, expected in truth.items():
            assert cells[index] == expected
