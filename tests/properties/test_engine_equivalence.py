"""Differential properties: the vectorized engine is bit-identical to the
scalar reference engine.

Every test runs one seeded workload through two fresh deployments — one
per engine — and compares the full observable outcome: simulation stats,
the per-switch report stream (payloads included, in emission order), and
the final register dumps of every state bank.  Scenarios cover the
places where batching could plausibly diverge: window boundaries inside
a batch, a mid-trace ``update_query`` scheduled through ``at()`` (a
rule-epoch flip that must land on a sub-batch edge), reboot drop
windows, and multi-slice CQE installs (which the vectorized engine must
hand back to the scalar path wholesale).
"""

from dataclasses import replace

import pytest

from repro.core.compiler import QueryParams, compile_query
from repro.core.library import build_query
from repro.engine import VectorizedEngine
from repro.experiments.common import evaluation_thresholds
from repro.network.deployment import build_deployment
from repro.network.topology import linear
from repro.traffic.generators import (
    assign_hosts,
    caida_like,
    mawi_like,
    port_scan,
    syn_flood,
)
from repro.traffic.traces import merge_traces

PARAMS = QueryParams(cm_depth=2, reduce_registers=2048,
                     distinct_registers=2048)


def thresholds():
    """Low enough that the small test traces actually produce reports."""
    return replace(evaluation_thresholds(), new_tcp_conns=3, port_scan=4)


def workload(n_packets=6000, duration_s=0.5, seed=3):
    """Multi-window benign mix plus Q1/Q4 anomalies, on one host pair."""
    trace = merge_traces([
        caida_like(n_packets, duration_s=duration_s, seed=seed),
        syn_flood(n_packets=max(n_packets // 10, 200),
                  duration_s=duration_s, seed=seed + 1),
        port_scan(n_ports=400, duration_s=duration_s, seed=seed + 2),
    ])
    return assign_hosts(trace, [("h_src0", "h_dst0")])


def record_reports(deployment):
    """Wrap every switch's report sink; returns the recording list."""
    recorded = []

    def wrap(sid, inner):
        def sink(report):
            recorded.append((
                str(sid), report.qid, float(report.ts), int(report.epoch),
                tuple(sorted(report.payload.items())),
            ))
            if inner is not None:
                inner(report)
        return sink

    for sid, switch in deployment.switches.items():
        switch.pipeline.report_sink = wrap(sid, switch.pipeline.report_sink)
    return recorded


def signature(stats, recorded):
    return (
        stats.packets, stats.delivered, stats.dropped,
        dict(stats.reports_by_switch), stats.deferred,
        stats.stale_deferred, stats.sp_bytes, stats.payload_bytes,
        stats.epochs, stats.mixed_rule_epoch_packets,
        dict(stats.initiated_by_query), tuple(recorded),
    )


def register_dumps(deployment):
    return {
        str(sid): tuple(
            tuple(bank.array.dump().tolist())
            for bank in switch.pipeline.layout.state_banks()
        )
        for sid, switch in deployment.switches.items()
    }


def run_engine(engine, trace, queries=("Q1", "Q4"), switches=3,
               schedule=None, **deploy_kw):
    deployment = build_deployment(
        linear(switches), array_size=1 << 13, engine=engine, **deploy_kw
    )
    path = [f"s{i}" for i in range(switches)]
    for name in queries:
        deployment.controller.install_query(
            build_query(name, thresholds()), PARAMS, path=path
        )
    recorded = record_reports(deployment)
    if schedule is not None:
        schedule(deployment)
    stats = deployment.simulator.run(trace)
    return signature(stats, recorded), register_dumps(deployment), stats


def assert_equivalent(trace, vector_engine="vector", **kw):
    """Run both engines over ``trace``; everything observable must match."""
    scalar_sig, scalar_regs, scalar_stats = run_engine("scalar", trace, **kw)
    vector_sig, vector_regs, vector_stats = run_engine(
        vector_engine, trace, **kw
    )
    assert vector_sig == scalar_sig
    assert vector_regs == scalar_regs
    return scalar_stats


class TestEquivalence:
    def test_multiwindow_background_with_attacks(self):
        stats = assert_equivalent(workload())
        assert stats.reports_total > 0  # the comparison is not vacuous
        assert stats.epochs > 1

    @pytest.mark.parametrize("seed", [1, 2, 9])
    def test_seed_sweep_mawi(self, seed):
        trace = assign_hosts(
            merge_traces([
                mawi_like(3000, duration_s=0.35, seed=seed),
                syn_flood(n_packets=300, duration_s=0.35, seed=seed + 50),
            ]),
            [("h_src0", "h_dst0")],
        )
        stats = assert_equivalent(trace, queries=("Q1",))
        assert stats.reports_total > 0

    def test_single_switch(self):
        stats = assert_equivalent(workload(3000), switches=1)
        assert stats.reports_total > 0

    def test_window_straddling_small_batches(self):
        """A tiny batch size forces sub-batches to straddle every window
        boundary and split repeatedly inside windows."""
        stats = assert_equivalent(
            workload(2500), vector_engine=VectorizedEngine(batch_size=17)
        )
        assert stats.epochs > 1

    def test_midtrace_update_query_rule_epoch_flip(self):
        """``update_query`` scheduled via ``at()`` mid-trace: the rule
        bank flips epoch between two packets, and both engines must put
        the flip at exactly the same point in the stream."""
        fired = []

        def schedule(deployment):
            def flip():
                deployment.controller.update_query(
                    build_query(
                        "Q1",
                        replace(evaluation_thresholds(), new_tcp_conns=8),
                    ),
                    PARAMS, path=["s0", "s1", "s2"],
                )
                fired.append(True)
            deployment.simulator.at(0.23, flip)

        stats = assert_equivalent(workload(), schedule=schedule)
        assert len(fired) == 2  # once per engine
        assert stats.reports_total > 0

    def test_reboot_drop_window(self):
        """A switch reboot mid-trace drops packets in both engines at the
        same timestamps."""
        def schedule(deployment):
            deployment.switch("s1").reboot(at=0.2, entries_to_restore=500)

        stats = assert_equivalent(workload(), schedule=schedule)
        assert stats.dropped > 0
        assert stats.delivered > 0

    def test_multislice_cqe_falls_back_to_scalar(self):
        """A query sliced across the path (total_slices > 1) is outside
        the compiled-program subset; the vectorized engine must detect it
        and defer whole batches to the scalar path — same stats, same SP
        byte accounting, same deferred count."""
        query = build_query("Q1", thresholds())
        probe = compile_query(query, PARAMS)
        stages = -(-probe.num_stages // 3)

        def run(engine):
            deployment = build_deployment(
                linear(3), num_stages=stages, array_size=1 << 13,
                engine=engine,
            )
            deployment.controller.install_query(
                query, PARAMS, path=["s0", "s1", "s2"],
                stages_per_switch=stages,
            )
            recorded = record_reports(deployment)
            stats = deployment.simulator.run(workload(3000))
            return signature(stats, recorded), register_dumps(deployment), \
                stats

        scalar_sig, scalar_regs, scalar_stats = run("scalar")
        vector_sig, vector_regs, _ = run("vector")
        assert vector_sig == scalar_sig
        assert vector_regs == scalar_regs
        assert scalar_stats.sp_bytes > 0  # the install really is sliced
