"""Property-based tests for Algorithm 2's resilience guarantee."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.placement import place_slices


@st.composite
def connected_graph(draw):
    """A small random connected graph as an adjacency map."""
    n = draw(st.integers(3, 9))
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    # Random spanning tree first (guarantees connectivity)...
    nodes = list(range(n))
    for i in range(1, n):
        parent = draw(st.integers(0, i - 1))
        graph.add_edge(nodes[i], nodes[parent])
    # ...then sprinkle extra links.
    extra = draw(st.integers(0, n))
    for _ in range(extra):
        a = draw(st.integers(0, n - 1))
        b = draw(st.integers(0, n - 1))
        if a != b:
            graph.add_edge(a, b)
    return graph


class TestPlacementProperties:
    @given(connected_graph(), st.integers(1, 4), st.data())
    @settings(max_examples=60, deadline=None)
    def test_every_simple_path_covered(self, graph, num_slices, data):
        adjacency = {v: list(graph.neighbors(v)) for v in graph.nodes}
        root = data.draw(st.sampled_from(sorted(graph.nodes)))
        result = place_slices(adjacency, [root], num_slices, method="dfs")
        # Every simple path from the root long enough to host all slices
        # must execute them in order.
        for target in graph.nodes:
            if target == root:
                continue
            for path in nx.all_simple_paths(graph, root, target,
                                            cutoff=num_slices + 1):
                if len(path) < num_slices:
                    continue
                assert result.covers_path(path), (path, result.assignments)

    @given(connected_graph(), st.integers(1, 4), st.data())
    @settings(max_examples=60, deadline=None)
    def test_layered_superset_of_dfs(self, graph, num_slices, data):
        adjacency = {v: list(graph.neighbors(v)) for v in graph.nodes}
        root = data.draw(st.sampled_from(sorted(graph.nodes)))
        dfs = place_slices(adjacency, [root], num_slices, method="dfs")
        layered = place_slices(adjacency, [root], num_slices,
                               method="layered")
        for switch, slices in dfs.assignments.items():
            assert set(slices) <= set(layered.slices_at(switch))

    @given(connected_graph(), st.integers(1, 4), st.data())
    @settings(max_examples=40, deadline=None)
    def test_roots_host_slice_zero(self, graph, num_slices, data):
        adjacency = {v: list(graph.neighbors(v)) for v in graph.nodes}
        roots = data.draw(
            st.lists(st.sampled_from(sorted(graph.nodes)), min_size=1,
                     max_size=3, unique=True)
        )
        result = place_slices(adjacency, roots, num_slices, method="dfs")
        for root in roots:
            assert 0 in result.slices_at(root)

    @given(connected_graph(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_depth_bounds_assignment(self, graph, data):
        """Slice d only ever lands within d hops of some root."""
        adjacency = {v: list(graph.neighbors(v)) for v in graph.nodes}
        root = data.draw(st.sampled_from(sorted(graph.nodes)))
        num_slices = 3
        result = place_slices(adjacency, [root], num_slices, method="dfs")
        dist = nx.single_source_shortest_path_length(graph, root)
        for switch, slices in result.assignments.items():
            for d in slices:
                assert dist[switch] <= d
