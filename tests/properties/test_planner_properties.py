"""Differential properties of planner-driven re-planning (200 seeds).

Each seed builds a randomized traffic schedule (benign mix, with a
flood + scan shift at a random window) and runs it three times with a
:class:`DynamicPlanner` managing Q1 — scalar engine, vectorized engine,
and the sharded fabric plane (2 workers) — stepping the planner between
windows so refinement installs and occupancy-driven resizes land
mid-run as real 2PC transactions.  Invariants per seed:

* **bit-identical observables** — all three runs produce the same plan
  trajectory (kind/qid/trigger/status/size per step) and the same
  merged per-window results for every installed sub-query;
* **no lost queries** — after every run the control plane holds exactly
  the queries the planner believes it manages;
* **atomicity** — zero mixed-rule-epoch packets in every run, no staged
  or retired residue left behind by any planner transaction.
"""

import random
from dataclasses import replace

from repro.core.compiler import QueryParams
from repro.core.library import build_query
from repro.core.query import flatten
from repro.experiments.common import evaluation_thresholds
from repro.fabric import ShardedDeployment
from repro.network.deployment import build_deployment
from repro.network.topology import linear
from repro.planner import DynamicPlanner, PlannerConfig, RefinementLadder
from repro.traffic.generators import (
    assign_hosts,
    caida_like,
    syn_flood,
    syn_scan_noise,
)
from repro.traffic.traces import merge_traces

N_SEEDS = 200
WINDOW_S = 0.1
PARAMS = QueryParams(cm_depth=2, reduce_registers=128)
CONFIG = PlannerConfig(cooldown_windows=1, child_idle_windows=2)


def make_schedule(seed):
    """Per-window traces + whether a ladder manages the query."""
    rng = random.Random(seed)
    windows = rng.randint(2, 3)
    shift_at = rng.randint(0, windows - 1)
    use_ladder = rng.random() < 0.5
    traces = []
    for index in range(windows):
        start = index * WINDOW_S
        parts = [caida_like(300, duration_s=WINDOW_S, seed=seed + index,
                            start_s=start)]
        if index >= shift_at:
            parts.append(syn_flood(
                n_packets=250, duration_s=WINDOW_S,
                seed=seed + 31 + index, start_s=start,
            ))
            parts.append(syn_scan_noise(
                n_packets=800, duration_s=WINDOW_S,
                seed=seed + 67 + index, start_s=start,
            ))
        traces.append(assign_hosts(
            merge_traces(parts), [("h_src0", "h_dst0")]
        ))
    return traces, use_ladder


def run_managed(dep, traces, use_ladder):
    """Drive the schedule with a planner-managed Q1; return observables."""
    planner = DynamicPlanner(dep, CONFIG)
    query = build_query(
        "Q1", replace(evaluation_thresholds(), new_tcp_conns=3)
    )
    planner.manage(
        query, PARAMS,
        ladder=RefinementLadder.ipv4() if use_ladder else None,
        path=["s0", "s1"],
    )
    steps = []
    mixed = 0
    for trace in traces:
        stats = dep.simulator.run(trace)
        mixed += stats.mixed_rule_epoch_packets
        dep.simulator.roll_window()
        execution = planner.step()
        if execution is None:
            continue
        steps.extend(
            (execution.epoch, s.kind, s.qid, s.trigger, s.status,
             None if s.params is None else s.params.reduce_registers)
            for s in execution.steps
        )
    answers = {}
    for record in dep.controller.installed.values():
        for sub in flatten(record.query):
            answers[sub.qid] = dep.collector.merged_results(sub.qid)
    residue = [
        (str(sid), switch.staged_rule_count, switch.retired_rule_count)
        for sid, switch in sorted(dep.switches.items(), key=str)
        if switch.staged_rule_count or switch.retired_rule_count
    ]
    return {
        "steps": tuple(steps),
        "answers": answers,
        "installed": sorted(dep.controller.installed),
        "managed": sorted(planner.plans),
        "mixed": mixed,
        "residue": residue,
    }


class TestPlannerDifferentialSweep:
    def test_200_seeded_schedules(self):
        replanned = 0
        for seed in range(N_SEEDS):
            traces, use_ladder = make_schedule(seed)
            label = f"seed {seed}"
            scalar = run_managed(
                build_deployment(linear(2), engine="scalar",
                                 array_size=1 << 13),
                traces, use_ladder,
            )
            vector = run_managed(
                build_deployment(linear(2), engine="vector",
                                 array_size=1 << 13),
                traces, use_ladder,
            )
            with ShardedDeployment(
                linear(2), workers=2, inline=True, engine="vector",
                array_size=1 << 13,
            ) as sd:
                fabric = run_managed(sd, traces, use_ladder)

            for name, run in (("vector", vector), ("fabric", fabric)):
                assert run["steps"] == scalar["steps"], (
                    f"{label}: {name} plan trajectory diverged"
                )
                assert run["answers"] == scalar["answers"], (
                    f"{label}: {name} window answers diverged"
                )
            for name, run in (("scalar", scalar), ("vector", vector),
                              ("fabric", fabric)):
                assert run["installed"] == run["managed"], (
                    f"{label}: {name} lost/leaked queries — installed "
                    f"{run['installed']} vs managed {run['managed']}"
                )
                assert run["mixed"] == 0, (
                    f"{label}: {name} saw mixed-epoch packets"
                )
                assert run["residue"] == [], (
                    f"{label}: {name} left rule residue {run['residue']}"
                )
            if any(s[3] != "bootstrap" for s in scalar["steps"]):
                replanned += 1
        # The sweep is not vacuous: most seeds actually re-planned.
        assert replanned >= N_SEEDS // 2, (
            f"only {replanned}/{N_SEEDS} seeds exercised a re-plan"
        )
