"""Property-based tests for the collection plane (hypothesis).

Two invariants the collector documents:

* **counters balance** — ``ingested == processed + dropped + pending``
  for any fault schedule, backpressure policy, and window pattern;
* **block is lossless** — under the ``block`` policy the per-window
  answers equal a loss-free baseline, whatever the arrival order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collector import (
    BackpressurePolicy,
    CollectorConfig,
    FaultConfig,
    QueryRegistration,
    ReportCollector,
)
from repro.core.rules import Report

QID = "prop.q"


def make_collector(config):
    collector = ReportCollector(config=config)
    collector._registrations[QID] = QueryRegistration(
        qid=QID, top_qid=QID, key_fields=("dip",), result_set=1,
        cpu_start=1, num_primitives=1, tail=(),
    )
    return collector


def report(dip, count, epoch):
    return Report(
        qid=QID, switch_id=f"s{dip % 3}", ts=epoch * 0.1, epoch=epoch,
        payload={"set1_fields": {"dip": dip}, "global_result": count},
    )


#: (dip, count, epoch-step) triples; epochs are cumulative so the stream
#: is monotone in time like a real mirror session.
arrivals = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=20),     # dip
        st.integers(min_value=1, max_value=100),    # clipped count
        st.integers(min_value=0, max_value=2),      # windows to advance
    ),
    min_size=1,
    max_size=80,
)

fault_configs = st.builds(
    FaultConfig,
    loss=st.sampled_from([0.0, 0.1, 0.5, 1.0]),
    duplication=st.sampled_from([0.0, 0.2, 1.0]),
    reorder=st.sampled_from([0.0, 0.3, 1.0]),
    delay=st.sampled_from([0.0, 0.25]),
    delay_windows=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**16),
)

policies = st.sampled_from(BackpressurePolicy.ALL)


def drive(collector, stream):
    """Feed the arrival stream, closing windows as epochs advance."""
    epoch = 0
    for dip, count, step in stream:
        for _ in range(step):
            collector.close_window(epoch)
            epoch += 1
        collector.ingest(report(dip, count, epoch))
    collector.flush()


class TestFlowInvariant:
    @given(stream=arrivals, faults=fault_configs, policy=policies,
           capacity=st.integers(min_value=1, max_value=16))
    @settings(max_examples=60, deadline=None)
    def test_counters_balance(self, stream, faults, policy, capacity):
        collector = make_collector(CollectorConfig(
            queue_capacity=capacity, policy=policy, faults=faults,
        ))
        drive(collector, stream)
        ingested, accounted = collector.balance()
        assert ingested == accounted
        # After flush, nothing is left on the wire or in the queues.
        assert collector.pending == 0

    @given(stream=arrivals, faults=fault_configs)
    @settings(max_examples=30, deadline=None)
    def test_balance_holds_at_every_window_boundary(self, stream, faults):
        collector = make_collector(CollectorConfig(
            queue_capacity=4, policy=BackpressurePolicy.DROP_OLDEST,
            faults=faults,
        ))
        epoch = 0
        for dip, count, step in stream:
            for _ in range(step):
                collector.close_window(epoch)
                epoch += 1
                ingested, accounted = collector.balance()
                assert ingested == accounted
            collector.ingest(report(dip, count, epoch))


class TestBlockEqualsBaseline:
    @given(stream=arrivals,
           faults=st.builds(
               FaultConfig,
               duplication=st.sampled_from([0.0, 0.5]),
               reorder=st.sampled_from([0.0, 0.5]),
               seed=st.integers(min_value=0, max_value=2**16),
           ),
           capacity=st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_results_match_lossfree_baseline(self, stream, faults,
                                             capacity):
        """Block backpressure plus loss-free faults (duplication and
        reordering only) must produce exactly the answers of an
        unconstrained collector.

        The lateness horizon covers the whole run: the reorder shim can
        hold a record across window closes, and this property is about
        backpressure/merge transparency, not watermark policy (the
        balance property accounts for late drops separately).
        """
        lateness = 2 * len(stream) + 1  # epochs advance <= 2 per arrival
        baseline = make_collector(CollectorConfig(
            queue_capacity=1 << 16, allowed_lateness=lateness,
        ))
        blocked = make_collector(CollectorConfig(
            queue_capacity=capacity, policy=BackpressurePolicy.BLOCK,
            faults=faults, allowed_lateness=lateness,
        ))
        drive(baseline, stream)
        drive(blocked, stream)
        assert blocked.results(QID) == baseline.results(QID)
        assert blocked.dropped == 0
