"""Property-based tests for sketches (hypothesis)."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplane.hashing import HashFamily
from repro.sketches.bloom import BloomFilter
from repro.sketches.countmin import CountMinSketch

keys = st.lists(st.binary(min_size=1, max_size=8), min_size=1, max_size=200)


class TestBloomProperties:
    @given(keys)
    @settings(max_examples=50, deadline=None)
    def test_no_false_negatives_ever(self, items):
        bf = BloomFilter(bits=128, num_hashes=2)
        for key in items:
            bf.add(key)
        assert all(key in bf for key in items)

    @given(keys)
    @settings(max_examples=50, deadline=None)
    def test_second_add_always_present(self, items):
        bf = BloomFilter(bits=256, num_hashes=3)
        for key in items:
            bf.add(key)
            assert bf.add(key) is True

    @given(keys)
    @settings(max_examples=50, deadline=None)
    def test_inserted_counts_distinct_at_most(self, items):
        bf = BloomFilter(bits=4096, num_hashes=3)
        bf.add_all(items)
        assert bf.inserted <= len(set(items))

    @given(keys)
    @settings(max_examples=30, deadline=None)
    def test_clear_restores_empty(self, items):
        bf = BloomFilter(bits=128, num_hashes=2)
        bf.add_all(items)
        bf.clear()
        assert bf.fill_ratio == 0.0


class TestCountMinProperties:
    @given(keys)
    @settings(max_examples=50, deadline=None)
    def test_never_underestimates(self, items):
        cm = CountMinSketch(width=32, depth=2)
        truth = Counter(items)
        for key in items:
            cm.add(key)
        for key, count in truth.items():
            assert cm.estimate(key) >= count

    @given(keys)
    @settings(max_examples=50, deadline=None)
    def test_total_preserved(self, items):
        cm = CountMinSketch(width=64, depth=3)
        for key in items:
            cm.add(key)
        assert cm.total == len(items)

    @given(keys, st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_estimate_monotone_in_inserts(self, items, repeats):
        cm = CountMinSketch(width=32, depth=2)
        probe = b"probe"
        before = cm.estimate(probe)
        for _ in range(repeats):
            cm.add(probe)
        assert cm.estimate(probe) >= before + repeats

    @given(keys)
    @settings(max_examples=30, deadline=None)
    def test_same_seeds_same_estimates(self, items):
        family = HashFamily(77)
        a = CountMinSketch(width=32, depth=2, family=family, seed_base=5)
        b = CountMinSketch(width=32, depth=2, family=family, seed_base=5)
        for key in items:
            a.add(key)
            b.add(key)
        assert all(a.estimate(k) == b.estimate(k) for k in items)
