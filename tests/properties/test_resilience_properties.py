"""Property tests: no silent loss under ANY seeded fault plan.

ISSUE 5 acceptance: across 200+ seeded FaultPlans mixing switch crashes,
planned reboots, control-message loss, and report loss, every installed
query must end the run either

* **fully recovered** — every switch in its placement record hosts its
  slices, no staged residue, fleet-wide epoch agreement — within the
  windows the trace provides, or
* **explicitly degraded** — ``CoverageTracker.is_degraded`` with a
  recorded reason.

And in both cases the impaired windows are visible: coverage < 1.0 with
epoch-stamped gap records.  Silent loss (impaired monitoring with a
clean coverage ledger) fails the sweep.
"""

import random

import pytest

from repro.core.compiler import QueryParams
from repro.core.packet import Packet
from repro.core.query import Query
from repro.ctrlplane import TransactionAborted
from repro.network.deployment import build_deployment
from repro.network.topology import linear
from repro.resilience import (
    FaultPlan,
    RecoveryConfig,
    ResilienceConfig,
    SwitchState,
    control_faults,
    crash,
    reboot,
    report_faults,
)
from repro.traffic.traces import Trace
from repro.verify import VerificationError

N_SEEDS = 200
N_SWITCHES = 3
PARAMS = QueryParams(cm_depth=2, bf_hashes=2,
                     reduce_registers=128, distinct_registers=128)

#: Trace long enough that any fault injected in the first 0.35 s has
#: >= 6 windows of detection + recovery headroom before it ends.
TRACE_END_S = 1.3


def syn_query():
    return (
        Query("rzp.q")
        .filter(proto=6, tcp_flags=2)
        .map("dip")
        .reduce("dip")
        .where(ge=2)
    )


def trace():
    return Trace([
        Packet(sip=100 + (i % 4), dip=9, proto=6, tcp_flags=2,
               sport=5000 + i, ts=i * 0.01,
               src_host="h_src0", dst_host="h_dst0")
        for i in range(int(TRACE_END_S / 0.01))
    ])


def random_plan(seed):
    """Seeded mix of crashes, reboots, control loss, and report loss.

    All timed faults land in [0.05, 0.35] so recovery has bounded-window
    headroom; crash outages are shorter than the replacement threshold
    or permanent (exercising re-placement and degradation).
    """
    rng = random.Random(seed)
    events = []
    for _ in range(rng.randint(1, 3)):
        victim = f"s{rng.randrange(N_SWITCHES)}"
        at = rng.uniform(0.05, 0.35)
        kind = rng.random()
        if kind < 0.6:
            down_for = rng.choice([rng.uniform(0.05, 0.3), None])
            events.append(crash(victim, at, down_for=down_for))
        else:
            events.append(reboot(victim, at, entries=rng.randrange(50)))
    if rng.random() < 0.4:
        events.append(control_faults(loss=rng.uniform(0, 0.15),
                                     timeout=rng.uniform(0, 0.1)))
    if rng.random() < 0.4:
        events.append(report_faults(loss=rng.uniform(0, 0.3)))
    return FaultPlan(events=tuple(events), seed=seed)


def run_seed(seed):
    plan = random_plan(seed)
    dep = build_deployment(
        linear(N_SWITCHES), faults=plan,
        resilience=ResilienceConfig(
            recovery=RecoveryConfig(replace_after_windows=3),
        ),
    )
    try:
        dep.controller.install_query(
            syn_query(), PARAMS, path=["s0", "s1", "s2"]
        )
    except (TransactionAborted, VerificationError):
        return dep, plan, False  # control faults defeated the install
    dep.simulator.run(trace())
    return dep, plan, True


def assert_recovered_or_degraded(dep, label):
    coverage = dep.recovery.coverage
    qid = "rzp.q"
    assert qid in dep.controller.installed, (
        f"{label}: recovery dropped the installed query"
    )
    record = dep.controller.installed[qid]
    # Planned reboots outlast the trace (5 s restore): a switch may
    # legitimately still be DOWN at trace end with recovery pending.
    pending = any(
        dep.detector.state_of(sid) != SwitchState.ALIVE
        for sid in record.by_switch
    )
    if coverage.is_degraded(qid):
        assert coverage.degraded()[qid], (
            f"{label}: degraded without a recorded reason"
        )
    elif not pending:
        # Fully recovered: placement record and pipelines must agree.
        for sid, entries in record.by_switch.items():
            pipeline = dep.switches[sid].pipeline
            for sub_qid, index in entries:
                assert pipeline.hosts_slice(sub_qid, index), (
                    f"{label}: slice ({sub_qid}, {index}) missing on "
                    f"{sid} after recovery"
                )
        for sid, switch in dep.switches.items():
            assert switch.staged_rule_count == 0, (
                f"{label}: staged residue on {sid}"
            )
        # A switch that never came back keeps its stale epoch stamp;
        # every reachable switch must agree.
        epochs = {
            s.rule_epoch for sid, s in dep.switches.items()
            if dep.detector.state_of(sid) == SwitchState.ALIVE
        }
        assert len(epochs) <= 1, (
            f"{label}: epoch skew across live switches: {epochs}"
        )
    # No silent loss: any impaired window must be on the ledger.
    full, total = coverage.windows(qid)
    assert total > 0, f"{label}: no windows were ever graded"
    assert full + coverage.gap_count(qid) >= total, (
        f"{label}: {total - full} impaired windows but only "
        f"{coverage.gap_count(qid)} gap records"
    )
    had_outage = any(
        dep.switches[sid].has_outage for sid in record.by_switch
    )
    if had_outage:
        assert coverage.gap_count(qid) > 0, (
            f"{label}: a hosting switch went down yet coverage shows "
            f"no gap — silent loss"
        )
        assert coverage.gap_epochs(qid), (
            f"{label}: gaps lost their epoch stamps"
        )


class TestNoSilentLoss:
    def test_200_seeded_fault_plans(self):
        ran = recovered = degraded = 0
        actions = set()
        for seed in range(N_SEEDS):
            dep, plan, installed = run_seed(seed)
            if not installed:
                continue
            ran += 1
            label = f"seed {seed} ({[e.kind for e in plan.events]})"
            assert_recovered_or_degraded(dep, label)
            if dep.recovery.coverage.is_degraded("rzp.q"):
                degraded += 1
            if dep.recovery.records:
                recovered += 1
                actions.update(r.action for r in dep.recovery.records)
        # The sweep must exercise every outcome to mean anything.
        assert ran >= N_SEEDS * 0.8, "control faults starved the sweep"
        assert recovered > 0, "no seed ever recovered a switch"
        assert degraded > 0, "no seed ever degraded explicitly"
        assert "reinstall" in actions, "no crash/restart was re-installed"
        assert "replace" in actions, "no permanent loss was re-placed"

    @pytest.mark.parametrize("seed", [3, 17, 42])
    def test_gap_epochs_merge_with_collector_results(self, seed):
        """Gap records key (qid, epoch) exactly like per-window answers:
        a consumer can line them up without translation."""
        dep, plan, installed = run_seed(seed)
        if not installed:
            pytest.skip("install aborted under control faults")
        coverage = dep.recovery.coverage
        gap_epochs = set(coverage.gap_epochs("rzp.q"))
        graded = coverage.windows("rzp.q")[1]
        # Every gap epoch lies inside the graded window range.
        assert all(0 <= e <= graded + 1 for e in gap_epochs)
