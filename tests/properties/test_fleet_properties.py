"""Analyzer/sanitizer agreement: what static analysis admits, the
runtime sanitizer never flags.

The fleet analyzer promises its clean verdict is *sound* for the
invariants the sanitizer watches (register bounds, epoch atomicity,
hash-seed isolation, coverage accounting).  These properties drive an
analyzer-admitted deployment through a 100-seed traffic sweep and hold
the sanitizer to zero violations — in both execution engines — and pin
that sanitizing never perturbs execution (bit-identical runs).
"""

import pytest

from repro.core.compiler import QueryParams
from repro.core.query import Query
from repro.network.deployment import build_deployment
from repro.network.topology import linear
from repro.runtime.sanitizer import CHECKS
from repro.traffic.generators import assign_hosts, caida_like, syn_flood
from repro.traffic.traces import merge_traces
from repro.verify.fleet import FleetConfig, analyze_deployment

#: Distinct register budgets -> distinct hash units -> no NV402; both
#: fit re-staging headroom on a 1<<14 array -> no NV601.
PARAMS_A = QueryParams(cm_depth=2, reduce_registers=1024,
                       distinct_registers=1024)
PARAMS_B = QueryParams(cm_depth=2, reduce_registers=2048,
                       distinct_registers=2048)


def query_a():
    return (Query("fp.syn").filter(proto=6, tcp_flags=2)
            .map("dip").reduce("dip").where(ge=3))


def query_b():
    return (Query("fp.udp").filter(proto=17)
            .map("dip").reduce("dip").where(ge=4))


def admitted_deployment(engine, sanitize=True):
    dep = build_deployment(linear(2), array_size=1 << 14, engine=engine,
                           sanitize=sanitize)
    dep.controller.install_query(query_a(), PARAMS_A, path=["s0", "s1"])
    dep.controller.install_query(query_b(), PARAMS_B, path=["s0", "s1"])
    return dep


def trace(seed, n_packets=800):
    mixed = merge_traces([
        caida_like(n_packets, duration_s=0.3, seed=seed),
        syn_flood(n_packets=n_packets // 4, duration_s=0.3,
                  seed=seed + 10_000),
    ])
    return assign_hosts(mixed, [("h_src0", "h_dst0")])


def test_the_deployment_is_analyzer_admitted():
    dep = admitted_deployment("scalar")
    report = analyze_deployment(
        dep.switches,
        compiled={
            sub: comp
            for record in dep.controller.installed.values()
            for sub, comp in record.compiled.items()
        },
        committed_epoch=dep.controller.txn.epoch,
        config=FleetConfig(),
    )
    assert report.errors == []
    assert report.by_code("NV402") == []
    assert report.by_code("NV601") == []


@pytest.mark.parametrize("engine", ["scalar", "vector"])
def test_admitted_deployment_survives_100_seed_sweep(engine):
    violations = {}
    for seed in range(100):
        dep = admitted_deployment(engine)
        dep.simulator.run(trace(seed))
        if dep.sanitizer.total:
            violations[seed] = dep.sanitizer.summary()
    assert violations == {}


def test_sanitizing_never_perturbs_execution():
    # Scalar vs vector, sanitizer on: still bit-identical stats and
    # registers (the CI differential smoke runs the full equivalence
    # suite under NEWTON_SANITIZE=1; this is the in-tree witness).
    outcomes = {}
    for engine in ("scalar", "vector"):
        dep = admitted_deployment(engine)
        stats = dep.simulator.run(trace(seed=7))
        outcomes[engine] = (
            stats.packets, stats.delivered, stats.dropped,
            dict(stats.reports_by_switch), stats.deferred,
            stats.mixed_rule_epoch_packets,
            dict(stats.initiated_by_query),
            {
                str(sid): tuple(
                    tuple(bank.array.dump().tolist())
                    for bank in sw.pipeline.layout.state_banks()
                )
                for sid, sw in dep.switches.items()
            },
        )
        assert dep.sanitizer.summary() == {c: 0 for c in CHECKS}
    assert outcomes["scalar"] == outcomes["vector"]
