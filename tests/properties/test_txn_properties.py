"""Property tests: transaction atomicity under seeded fault schedules.

ISSUE 3 acceptance: after ANY seeded mid-transaction fault schedule
(loss, ack timeout, mid-transaction reboot), every switch is either fully
at the old rule epoch or fully at the new one — with rollback leaving the
prior epoch completely intact — and no packet in the simulator ever
observes a mixed rule set.  Swept over 200+ fault seeds.
"""

import pytest

from repro.core.compiler import QueryParams
from repro.core.query import Query
from repro.ctrlplane import (
    FaultPlan,
    FaultyControlChannel,
    TransactionAborted,
    TxnConfig,
)
from repro.network.deployment import build_deployment
from repro.network.topology import linear
from repro.traffic.generators import assign_hosts, syn_flood

PARAMS = QueryParams(cm_depth=2, bf_hashes=2,
                     reduce_registers=128, distinct_registers=128)

#: Aggressive per-message fault rates: with 4 delivery attempts the
#: per-message abort probability is a few percent, so a 200-seed sweep
#: exercises commits, retried commits, aborts, AND rollbacks.
FAULTS = dict(loss_rate=0.25, timeout_rate=0.2, reboot_rate=0.1)

N_SEEDS = 200
N_SWITCHES = 3


def q(threshold=3):
    return (
        Query("prop.q")
        .filter(proto=6, tcp_flags=2)
        .map("dip")
        .reduce("dip")
        .where(ge=threshold)
    )


def deploy(seed):
    channel = FaultyControlChannel(FaultPlan(seed=seed, **FAULTS))
    return build_deployment(
        linear(N_SWITCHES), channel=channel,
        txn_config=TxnConfig(max_attempts=4),
    )


def assert_atomic(dep, label):
    """Every-switch invariants that must hold after ANY transaction."""
    epochs = {s.rule_epoch for s in dep.switches.values()}
    assert len(epochs) == 1, (
        f"{label}: switches disagree on the rule epoch: {epochs}"
    )
    for sid, switch in dep.switches.items():
        assert switch.staged_rule_count == 0, (
            f"{label}: switch {sid} has staged residue"
        )
        assert switch.retired_rule_count == 0, (
            f"{label}: switch {sid} has un-GCed retired rules"
        )
    installed = "prop.q" in dep.controller.installed
    record = dep.controller.installed.get("prop.q")
    for sid, switch in dep.switches.items():
        hosts_any = bool(switch.pipeline.installed_qids())
        if not installed:
            assert not hosts_any, (
                f"{label}: switch {sid} serves rules of an uninstalled query"
            )
        else:
            expected = sid in record.by_switch
            assert hosts_any == expected, (
                f"{label}: switch {sid} serving={hosts_any}, "
                f"controller says {expected}"
            )


def syn_burst(n, seed):
    return assign_hosts(
        syn_flood(n_packets=n, duration_s=0.05, seed=seed),
        [("h_src0", "h_dst0")],
    )


class TestAtomicityUnderFaults:
    def test_200_seeded_fault_schedules(self):
        committed = aborted = 0
        for seed in range(N_SEEDS):
            dep = deploy(seed)
            try:
                dep.controller.install_query(
                    q(3), PARAMS, path=["s0", "s1", "s2"]
                )
            except TransactionAborted:
                aborted += 1
                assert_atomic(dep, f"seed {seed} install-abort")
                assert dep.controller.rule_count() == 0
                continue
            assert_atomic(dep, f"seed {seed} install")
            rules_before = dep.controller.rule_count()
            epoch_before = dep.controller.txn.epoch
            try:
                dep.controller.update_query(
                    q(9), PARAMS, path=["s0", "s1", "s2"]
                )
                committed += 1
            except TransactionAborted:
                aborted += 1
                # Rollback must leave the prior epoch fully intact.
                assert dep.controller.rule_count() == rules_before, (
                    f"seed {seed}: rollback changed the resident rule set"
                )
                assert dep.controller.txn.epoch == epoch_before
                assert "prop.q" in dep.controller.installed
            assert_atomic(dep, f"seed {seed} update")
        # The sweep must actually exercise both outcomes to mean anything.
        assert committed > 0, "no transaction ever committed"
        assert aborted > 0, (
            "no transaction ever aborted; raise the fault rates"
        )

    @pytest.mark.parametrize("seed", range(12))
    def test_no_packet_observes_a_mixed_rule_set(self, seed):
        """Run traffic THROUGH the faulty update: zero packets may see a
        mixed epoch across their 3-hop path, and — commit or rollback —
        monitoring never gaps (one version is always serving)."""
        dep = deploy(seed)
        try:
            dep.controller.install_query(
                q(3), PARAMS, path=["s0", "s1", "s2"]
            )
        except TransactionAborted:
            return  # nothing installed, nothing to observe
        outcome = {}

        def churn():
            try:
                dep.controller.update_query(
                    q(9), PARAMS, path=["s0", "s1", "s2"]
                )
                outcome["state"] = "committed"
            except TransactionAborted:
                outcome["state"] = "rolled-back"

        dep.simulator.at(0.005, churn)
        stats = dep.simulator.run(syn_burst(1500, seed=seed))
        assert outcome["state"] in ("committed", "rolled-back")
        assert stats.mixed_rule_epoch_packets == 0
        assert stats.initiated_by_query["prop.q"] == stats.packets, (
            f"monitoring gap during a {outcome['state']} update"
        )


class TestUpdateDuringRecovery:
    """ISSUE 5 satellite: an ``update_query`` racing switch recovery must
    land on exactly one epoch — the update's — with no epoch skew, no
    staged/retired residue, and no packet observing a mixed rule set.
    Swept over 200 seeded (crash time, update time) interleavings."""

    N_SEEDS = 200

    @staticmethod
    def recovery_deploy():
        from repro.resilience import FaultPlan, crash

        return build_deployment(
            linear(N_SWITCHES),
            faults=FaultPlan(),  # stands up detector + recovery
        )

    @staticmethod
    def traffic(seed):
        return syn_burst(300, seed=seed)

    def run_interleaving(self, seed):
        import random as random_module

        rng = random_module.Random(seed)
        dep = self.recovery_deploy()
        dep.controller.install_query(q(3), PARAMS, path=["s0", "s1", "s2"])
        victim = rng.choice(["s0", "s1", "s2"])
        crash_at = rng.uniform(0.005, 0.02)
        down_for = rng.uniform(0.05, 0.3)
        # The update lands anywhere across the crash/detect/recover span.
        update_at = rng.uniform(0.005, 0.045)
        switch = dep.switches[victim]
        dep.simulator.at(crash_at, lambda: switch.crash(crash_at,
                                                        down_for=down_for))
        outcome = {}

        def update():
            try:
                dep.controller.update_query(
                    q(9), PARAMS, path=["s0", "s1", "s2"]
                )
                outcome["state"] = "committed"
            except TransactionAborted:
                outcome["state"] = "rolled-back"

        dep.simulator.at(update_at, update)
        # 0.05 s of traffic, then idle windows so detection + recovery
        # complete inside the trace.
        trace = self.traffic(seed)
        from repro.core.packet import Packet
        from repro.traffic.traces import Trace, merge_traces
        tail = Trace([Packet(sip=1, dip=2, ts=0.05 + i * 0.1,
                             src_host="h_src0", dst_host="h_dst0")
                      for i in range(8)])
        stats = dep.simulator.run(merge_traces([trace, tail]))
        return dep, stats, outcome

    def test_200_seeded_recovery_interleavings(self):
        committed = 0
        for seed in range(self.N_SEEDS):
            dep, stats, outcome = self.run_interleaving(seed)
            label = f"seed {seed} ({outcome['state']})"
            assert_atomic(dep, label)
            assert stats.mixed_rule_epoch_packets == 0, label
            # Exactly one update transaction ever ran, and if it
            # committed it did so at exactly one epoch.
            updates = [e for e in dep.controller.txn.journal.snapshot()
                       if e["op"] == "update"]
            assert len(updates) == 1, label
            if outcome["state"] == "committed":
                committed += 1
                assert updates[0]["state"] == "committed", label
                epochs = {s.rule_epoch for s in dep.switches.values()}
                assert epochs == {dep.controller.txn.epoch}, label
            # Recovery must never leave the query silently impaired:
            # healthy again, or an explicit degraded/coverage record.
            coverage = dep.recovery.coverage
            qid = "prop.q"
            if not coverage.is_degraded(qid):
                record = dep.controller.installed[qid]
                for sid, entries in record.by_switch.items():
                    pipeline = dep.switches[sid].pipeline
                    for sub_qid, index in entries:
                        assert pipeline.hosts_slice(sub_qid, index), (
                            f"{label}: ({sub_qid},{index}) not resident "
                            f"on {sid} after recovery"
                        )
        assert committed > 0, "no interleaving ever committed the update"
