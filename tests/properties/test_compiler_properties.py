"""Property-based tests for the compiler's structural invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiler import (
    Optimizations,
    QueryParams,
    compile_query,
    slice_compiled,
)
from repro.core.query import Query
from repro.dataplane.module_types import ModuleType

FIELDS = ("sip", "dip", "sport", "dport", "proto", "len")


@st.composite
def random_query(draw):
    """A random but valid query chain."""
    qid = draw(st.text(alphabet="abcdef", min_size=1, max_size=6))
    query = Query("h." + qid)
    n_front = draw(st.integers(0, 2))
    for _ in range(n_front):
        field = draw(st.sampled_from(FIELDS))
        query.map(field)
    keys = draw(st.lists(st.sampled_from(FIELDS), min_size=1, max_size=3,
                         unique=True))
    if draw(st.booleans()):
        query.distinct(*keys)
    reduce_keys = draw(st.lists(st.sampled_from(FIELDS), min_size=1,
                                max_size=2, unique=True))
    query.reduce(*reduce_keys)
    query.where(ge=draw(st.integers(1, 100)))
    return query


PARAMS = QueryParams(cm_depth=2, bf_hashes=2,
                     reduce_registers=64, distinct_registers=64)


class TestCompilerInvariants:
    @given(random_query())
    @settings(max_examples=60, deadline=None)
    def test_schedule_respects_dependencies(self, query):
        compiled = compile_query(query, PARAMS)
        # Intra-suite dataflow: H < S < R stage order per suite.
        suites = {}
        for spec in compiled.specs:
            suites.setdefault(
                (spec.primitive_index, spec.suite_index), {}
            )[spec.module_type] = spec.stage
        for stages in suites.values():
            order = [
                stages.get(ModuleType.KEY_SELECTION),
                stages.get(ModuleType.HASH_CALCULATION),
                stages.get(ModuleType.STATE_BANK),
                stages.get(ModuleType.RESULT_PROCESS),
            ]
            present = [s for s in order if s is not None]
            assert present == sorted(present)

    @given(random_query())
    @settings(max_examples=60, deadline=None)
    def test_slot_exclusivity(self, query):
        compiled = compile_query(query, PARAMS)
        seen = set()
        for spec in compiled.specs:
            key = (spec.stage, spec.module_type)
            assert key not in seen
            seen.add(key)

    @given(random_query())
    @settings(max_examples=60, deadline=None)
    def test_optimized_never_larger(self, query):
        naive = compile_query(query, PARAMS, Optimizations.none())
        optimized = compile_query(query, PARAMS, Optimizations.all())
        assert optimized.num_modules <= naive.num_modules
        assert optimized.num_stages <= naive.num_stages

    @given(random_query())
    @settings(max_examples=60, deadline=None)
    def test_steps_are_contiguous(self, query):
        compiled = compile_query(query, PARAMS)
        steps = sorted(spec.step for spec in compiled.specs)
        assert steps == list(range(len(steps)))

    @given(random_query(), st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_slicing_partitions_specs(self, query, stages_per_switch):
        compiled = compile_query(query, PARAMS)
        slices = slice_compiled(compiled, stages_per_switch)
        total = sum(len(s.specs) for s in slices)
        assert total == compiled.num_modules
        # Slices carry disjoint step sets in increasing stage ranges.
        seen_steps = set()
        for s in slices:
            for spec in s.specs:
                assert spec.step not in seen_steps
                seen_steps.add(spec.step)
        assert slices[0].init_entries
        assert all(s.total_slices == len(slices) for s in slices)

    @given(random_query())
    @settings(max_examples=40, deadline=None)
    def test_r_chain_total_order(self, query):
        compiled = compile_query(query, PARAMS)
        r_stages = [s.stage for s in compiled.specs
                    if s.module_type is ModuleType.RESULT_PROCESS]
        assert len(set(r_stages)) == len(r_stages)
        assert r_stages == sorted(r_stages)
