"""Analyzer tests: report decoding, joins, deferred execution."""

import pytest

from repro.core.analyzer import Analyzer, first_incomplete_primitive
from repro.core.compiler import QueryParams, compile_query
from repro.core.library import QueryThresholds, build_query
from repro.core.packet import Packet, Proto, TcpFlags
from repro.core.query import Query, flatten
from repro.core.rules import Report

PARAMS = QueryParams(cm_depth=2, reduce_registers=128,
                     distinct_registers=128)


def q(threshold=3, qid="a.q"):
    return (
        Query(qid)
        .filter(proto=Proto.TCP, tcp_flags=TcpFlags.SYN)
        .map("dip")
        .reduce("dip")
        .where(ge=threshold)
    )


def report_for(qid, dip, count, epoch=0, set_id=0):
    payload = {
        "global_result": count,
        f"set{set_id}_fields": {"dip": dip},
        f"set{set_id}_hash": 1,
        f"set{set_id}_state": count,
    }
    payload.setdefault("set0_fields", {})
    payload.setdefault("set1_fields", {})
    return Report(qid=qid, switch_id="s0", ts=0.0, epoch=epoch,
                  payload=payload)


def register(analyzer, query):
    compiled = {
        sub.qid: compile_query(sub, PARAMS) for sub in flatten(query)
    }
    analyzer.register(query, compiled)
    return compiled


class TestReportDecoding:
    def test_results_keyed_by_epoch_and_key(self):
        analyzer = Analyzer()
        query = q()
        register(analyzer, query)
        analyzer.on_report(report_for("a.q", dip=9, count=3))
        analyzer.on_report(report_for("a.q", dip=8, count=3, epoch=1))
        assert analyzer.results("a.q") == {0: {(9,): 3}, 1: {(8,): 3}}

    def test_duplicate_reports_keep_max(self):
        analyzer = Analyzer()
        register(analyzer, q())
        analyzer.on_report(report_for("a.q", dip=9, count=3))
        analyzer.on_report(report_for("a.q", dip=9, count=7))
        assert analyzer.results("a.q")[0] == {(9,): 7}

    def test_unregistered_reports_kept_raw(self):
        analyzer = Analyzer()
        analyzer.on_report(report_for("ghost", dip=1, count=1))
        assert len(analyzer.reports) == 1
        assert analyzer.results("ghost") == {}

    def test_detections_single_chain(self):
        analyzer = Analyzer()
        register(analyzer, q())
        analyzer.on_report(report_for("a.q", dip=9, count=3))
        assert analyzer.detections("a.q") == {0: [(9,)]}

    def test_detections_unknown_query(self):
        with pytest.raises(KeyError):
            Analyzer().detections("nope")

    def test_unregister(self):
        analyzer = Analyzer()
        register(analyzer, q())
        analyzer.unregister("a.q")
        with pytest.raises(KeyError):
            analyzer.detections("a.q")


class TestCompositeJoin:
    def test_q7_detection_from_reports(self):
        th = QueryThresholds(completed_conns=2)
        q7 = build_query("Q7", th)
        analyzer = Analyzer()
        register(analyzer, q7)
        analyzer.on_report(report_for("Q7.syn", dip=5, count=2))
        analyzer.on_report(report_for("Q7.fin", dip=5, count=2))
        analyzer.on_report(report_for("Q7.syn", dip=6, count=2))
        assert analyzer.detections("Q7") == {0: [5]}


class TestDeferred:
    def test_first_incomplete_primitive(self):
        compiled = compile_query(q(), PARAMS)
        assert first_incomplete_primitive(compiled, 0) <= 1
        assert first_incomplete_primitive(
            compiled, compiled.num_stages
        ) == 4

    def test_deferred_execution_produces_results(self):
        analyzer = Analyzer()
        query = q(threshold=2)
        register(analyzer, query)
        # Defer from primitive 0: the analyzer runs the whole chain.
        for i in range(3):
            analyzer.defer("a.q", Packet(sip=i, dip=9, proto=6, tcp_flags=2),
                           start_at=0)
        analyzer.advance_window(0)
        assert analyzer.results("a.q")[0] == {(9,): 3}
        assert analyzer.deferred_packets == 3

    def test_deferred_respects_threshold(self):
        analyzer = Analyzer()
        register(analyzer, q(threshold=5))
        analyzer.defer("a.q", Packet(dip=9, proto=6, tcp_flags=2), 0)
        analyzer.advance_window(0)
        assert analyzer.results("a.q").get(0, {}) == {}

    def test_message_count_includes_deferrals(self):
        analyzer = Analyzer()
        register(analyzer, q())
        analyzer.on_report(report_for("a.q", dip=9, count=3))
        analyzer.defer("a.q", Packet(proto=6, tcp_flags=2), 0)
        assert analyzer.message_count == 2

    def test_reset(self):
        analyzer = Analyzer()
        register(analyzer, q())
        analyzer.on_report(report_for("a.q", dip=9, count=3))
        analyzer.reset()
        assert analyzer.message_count == 0
        assert analyzer.results("a.q") == {}
