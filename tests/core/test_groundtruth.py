"""Ground-truth engine tests."""

import pytest

from repro.core.groundtruth import GroundTruthEngine, QueryStreamState, evaluate_trace
from repro.core.library import QueryThresholds, build_query
from repro.core.packet import Packet, Proto, TcpFlags
from repro.core.query import Query


def syn(sip, dip, ts=0.0):
    return Packet(sip=sip, dip=dip, proto=6, tcp_flags=2, ts=ts)


def q(threshold=3):
    return (
        Query("g.q")
        .filter(proto=Proto.TCP, tcp_flags=TcpFlags.SYN)
        .map("dip")
        .reduce("dip")
        .where(ge=threshold)
    )


class TestStreamState:
    def test_counts_per_key(self):
        state = QueryStreamState(q())
        for i in range(4):
            state.process(syn(i, dip=7))
        state.process(syn(9, dip=8))
        truth = state.finish_window(0)
        assert truth.counts == {(7,): 4, (8,): 1}
        assert truth.keys == {(7,)}

    def test_filter_drops(self):
        state = QueryStreamState(q())
        state.process(Packet(proto=17, dip=7))
        assert state.finish_window(0).counts == {}

    def test_distinct_dedup(self):
        query = Query("g.d").distinct("sip", "dip").map("dip").reduce("dip")
        state = QueryStreamState(query)
        for _ in range(5):
            state.process(Packet(sip=1, dip=2))
        state.process(Packet(sip=3, dip=2))
        truth = state.finish_window(0)
        assert truth.counts == {(2,): 2}

    def test_window_reset(self):
        state = QueryStreamState(q(threshold=2))
        state.process(syn(1, 7))
        state.finish_window(0)
        state.process(syn(2, 7))
        assert state.finish_window(1).counts == {(7,): 1}

    def test_sum_len(self):
        query = Query("g.s").reduce("dip", func="sum")
        state = QueryStreamState(query)
        state.process(Packet(dip=7, len=100))
        state.process(Packet(dip=7, len=200))
        assert state.finish_window(0).counts == {(7,): 300}

    def test_start_at_skips_prefix(self):
        state = QueryStreamState(q(), start_at=1)  # skip the filter
        state.process(Packet(proto=17, dip=7))  # UDP passes now
        assert state.finish_window(0).counts == {(7,): 1}

    def test_mid_stream_threshold(self):
        query = (
            Query("g.m").reduce("dip").where(ge=2).map("sip").reduce("sip")
        )
        state = QueryStreamState(query)
        # dip 5 reaches 2 on the second packet; only then do sips count.
        state.process(Packet(sip=1, dip=5))
        state.process(Packet(sip=1, dip=5))
        state.process(Packet(sip=1, dip=5))
        truth = state.finish_window(0)
        assert truth.counts == {(1,): 2}

    def test_invalid_start_at(self):
        with pytest.raises(ValueError):
            QueryStreamState(q(), start_at=99)


class TestEngine:
    def test_epoch_bucketing(self):
        packets = [syn(1, 7, ts=0.01), syn(2, 7, ts=0.15), syn(3, 7, ts=0.31)]
        out = evaluate_trace(q(threshold=1), packets, window_ms=100)
        assert set(out) == {0, 1, 2, 3}
        assert out[0]["g.q"].counts == {(7,): 1}
        assert out[2]["g.q"].counts == {}  # empty window still closed
        assert out[3]["g.q"].counts == {(7,): 1}

    def test_unsorted_packets_rejected(self):
        engine = GroundTruthEngine(q())
        with pytest.raises(ValueError):
            engine.evaluate([syn(1, 7, ts=0.5), syn(2, 7, ts=0.1)])

    def test_composite_evaluation_and_join(self):
        th = QueryThresholds(syn_flood=5, syn_flood_sub=1)
        q6 = build_query("Q6", th)
        engine = GroundTruthEngine(q6)
        packets = [syn(i, 50, ts=0.001 * i) for i in range(10)]
        out = engine.evaluate(packets)
        window = out[0]
        assert window["Q6.syn"].counts == {(50,): 10}
        victims = engine.join(window)
        assert victims == [50]

    def test_join_on_single_query_rejected(self):
        engine = GroundTruthEngine(q())
        with pytest.raises(TypeError):
            engine.join({})

    def test_empty_trace(self):
        assert evaluate_trace(q(), []) == {}
