"""Rule export tests: the serialised form must be lossless."""

import json

import pytest

from repro.core.compiler import QueryParams, compile_query
from repro.core.export import entries_for, render_entries, to_json
from repro.core.library import QueryThresholds, build_query
from repro.core.packet import Proto, TcpFlags
from repro.core.query import Query, flatten

PARAMS = QueryParams(cm_depth=2, bf_hashes=2,
                     reduce_registers=256, distinct_registers=256)


def q1():
    return (
        Query("x.q1")
        .filter(proto=Proto.TCP, tcp_flags=TcpFlags.SYN)
        .map("dip")
        .reduce("dip")
        .where(ge=10)
    )


class TestEntries:
    def test_entry_count_matches_rule_count(self):
        compiled = compile_query(q1(), PARAMS)
        entries = entries_for(compiled)
        assert len(entries) == compiled.rule_count

    def test_dispatch_entry_first(self):
        compiled = compile_query(q1(), PARAMS)
        first = entries_for(compiled)[0]
        assert first["table"] == "newton_init"
        assert first["match"]["proto"] == {"value": 6, "mask": 0xFF}
        assert first["action"]["params"]["qid"] == "x.q1"

    def test_tables_carry_stage_suffix(self):
        compiled = compile_query(q1(), PARAMS)
        tables = {e["table"] for e in entries_for(compiled)[1:]}
        assert any(t.startswith("newton_state_bank_s") for t in tables)
        assert all("_s" in t for t in tables)

    def test_every_module_type_exports(self):
        compiled = compile_query(
            Query("x.d").distinct("dip", "sip").map("dip").reduce("dip")
            .where(ge=2),
            PARAMS,
        )
        actions = {e["action"]["name"] for e in entries_for(compiled)[1:]}
        assert actions == {"select_keys", "compute_hash", "state_update",
                           "process_result"}

    def test_result_entries_capture_semantics(self):
        compiled = compile_query(q1(), PARAMS)
        r_entries = [e for e in entries_for(compiled)
                     if e["action"]["name"] == "process_result"]
        final = r_entries[-1]["action"]["params"]
        assert final["source"] == "global"
        assert any(e["report"] for e in final["entries"])
        assert final["default"]["stop"]

    def test_state_update_register_sizing(self):
        compiled = compile_query(q1(), PARAMS)
        s_entries = [e for e in entries_for(compiled)
                     if e["action"]["name"] == "state_update"
                     and not e["action"]["params"]["passthrough"]]
        assert all(e["action"]["params"]["slice_size"] == 256
                   for e in s_entries)


class TestJson:
    def test_round_trips_through_json(self):
        compiled = compile_query(q1(), PARAMS)
        doc = json.loads(to_json(compiled))
        assert doc["qid"] == "x.q1"
        assert doc["stages"] == compiled.num_stages
        assert len(doc["entries"]) == compiled.rule_count

    def test_all_library_queries_export(self):
        for name in [f"Q{i}" for i in range(1, 10)]:
            query = build_query(name, QueryThresholds())
            for sub in flatten(query):
                compiled = compile_query(sub, PARAMS)
                doc = json.loads(to_json(compiled))
                assert len(doc["entries"]) == compiled.rule_count

    def test_deterministic(self):
        compiled = compile_query(q1(), PARAMS)
        assert to_json(compiled) == to_json(compiled)


class TestRender:
    def test_readable_dump(self):
        compiled = compile_query(q1(), PARAMS)
        text = render_entries(compiled)
        assert "newton_init" in text
        assert "state_update" in text
        assert text.count("\n") + 1 == compiled.rule_count
