"""CLI tests."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_names_registered(self):
        expected = {"table3", "ablations"} | {f"fig{i}" for i in
                                              (7, 10, 11, 12, 13, 14, 15,
                                               16, 17)}
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_unknown_query_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compile", "Q42"])


class TestCommands:
    def test_list_queries(self, capsys):
        assert main(["list-queries"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 10):
            assert f"Q{i}" in out
        assert "Monitor super spreaders" in out

    def test_compile_summary(self, capsys):
        assert main(["compile", "Q1"]) == 0
        out = capsys.readouterr().out
        assert "modules=8" in out and "stages=6" in out

    def test_compile_with_rules(self, capsys):
        assert main(["compile", "Q1", "--rules"]) == 0
        out = capsys.readouterr().out
        assert "KConfig" in out and "RConfig" in out

    def test_compile_opt_levels_differ(self, capsys):
        main(["compile", "Q1", "--opt-level", "0"])
        naive = capsys.readouterr().out
        main(["compile", "Q1", "--opt-level", "3"])
        optimized = capsys.readouterr().out
        assert "modules=20" in naive
        assert "modules=8" in optimized

    def test_experiment_table3(self, capsys):
        assert main(["experiment", "table3"]) == 0
        out = capsys.readouterr().out
        assert "Per-stage" in out and "Compact Module Layout" in out

    def test_experiment_fig7(self, capsys):
        assert main(["experiment", "fig7"]) == 0
        assert "42.4%" in capsys.readouterr().out
