"""Register readout tests: exact window aggregates via the control plane."""

import pytest

from repro.core.compiler import QueryParams, compile_query
from repro.core.packet import Packet
from repro.core.query import Query
from repro.core.readout import reduce_probe_rows
from repro.network.deployment import build_deployment
from repro.network.topology import linear

PARAMS = QueryParams(cm_depth=3, reduce_registers=1 << 12,
                     distinct_registers=1 << 12)


def q(qid="ro.q", threshold=100):
    return (
        Query(qid)
        .filter(proto=6, tcp_flags=2)
        .map("dip")
        .reduce("dip")
        .where(ge=threshold)
    )


def syn(sip, dip, ts=0.0):
    return Packet(sip=sip, dip=dip, proto=6, tcp_flags=2, ts=ts,
                  src_host="h_src0", dst_host="h_dst0")


class TestProbeRows:
    def test_one_row_per_sketch_row(self):
        compiled = compile_query(q(), PARAMS)
        rows = reduce_probe_rows(compiled)
        assert len(rows) == 3
        assert len({r.hash_config.seed_index for r in rows}) == 3

    def test_masks_recovered_through_opt2(self):
        """The reduce's K was deduplicated away; masks still resolve."""
        compiled = compile_query(q(), PARAMS)
        for row in reduce_probe_rows(compiled):
            assert dict(row.masks) == {"dip": 0xFFFFFFFF}

    def test_final_reduce_selected(self):
        query = (
            Query("ro.two")
            .map("sip", "dip")
            .distinct("sip", "dip")
            .map("sip")
            .reduce("sip")
            .where(ge=5)
        )
        compiled = compile_query(query, PARAMS)
        for row in reduce_probe_rows(compiled):
            assert dict(row.masks) == {"sip": 0xFFFFFFFF}

    def test_no_reduce_yields_nothing(self):
        compiled = compile_query(Query("ro.map").map("dip"), PARAMS)
        assert reduce_probe_rows(compiled) == []

    def test_flag_suite_not_probed(self):
        """A byte-sum threshold's OR flag suite must not masquerade as a
        sketch row."""
        query = (
            Query("ro.sum").filter(proto=6).map("dip")
            .reduce("dip", func="sum").where(ge=5000)
        )
        compiled = compile_query(query, PARAMS)
        rows = reduce_probe_rows(compiled)
        assert len(rows) == PARAMS.cm_depth


class TestEstimateCount:
    def test_exact_on_single_switch(self):
        deployment = build_deployment(linear(1), array_size=1 << 13)
        deployment.controller.install_query(q(), PARAMS, path=["s0"])
        for i in range(7):
            deployment.simulator.run([syn(i + 1, dip=9, ts=i * 1e-4)])
        assert deployment.controller.estimate_count("ro.q", {"dip": 9}) == 7
        assert deployment.controller.estimate_count("ro.q", {"dip": 8}) == 0

    def test_exact_across_cqe_slices(self):
        deployment = build_deployment(linear(3), num_stages=4,
                                      array_size=1 << 13)
        deployment.controller.install_query(
            q(), PARAMS, path=["s0", "s1", "s2"], stages_per_switch=4
        )
        deployment.simulator.run(
            [syn(i + 1, dip=9, ts=i * 1e-4) for i in range(5)]
        )
        assert deployment.controller.estimate_count("ro.q", {"dip": 9}) == 5

    def test_window_reset_clears_estimate(self):
        deployment = build_deployment(linear(1), array_size=1 << 13)
        deployment.controller.install_query(q(), PARAMS, path=["s0"])
        deployment.simulator.run([syn(1, dip=9)])
        deployment.controller.advance_window()
        assert deployment.controller.estimate_count("ro.q", {"dip": 9}) == 0

    def test_unknown_query_rejected(self):
        deployment = build_deployment(linear(1))
        with pytest.raises(KeyError):
            deployment.controller.estimate_count("ghost", {"dip": 1})

    def test_sharpens_clipped_report(self):
        """The workflow the readout exists for: a crossing report says
        'count reached 10'; the readout recovers the true total."""
        deployment = build_deployment(linear(1), array_size=1 << 13)
        deployment.controller.install_query(q(threshold=10), PARAMS,
                                            path=["s0"])
        deployment.simulator.run(
            [syn(i + 1, dip=9, ts=i * 1e-4) for i in range(25)]
        )
        reported = deployment.analyzer.results("ro.q")[0][(9,)]
        assert reported == 10  # clipped at the crossing
        exact = deployment.controller.estimate_count("ro.q", {"dip": 9})
        assert exact == 25
