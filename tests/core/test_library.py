"""Query library (Table 2) tests."""

import pytest

from repro.core.library import (
    QUERY_NAMES,
    QueryThresholds,
    all_queries,
    build_query,
)
from repro.core.query import CompositeQuery, Query, flatten


class TestLibraryStructure:
    def test_all_nine_present(self):
        queries = all_queries()
        assert set(queries) == {f"Q{i}" for i in range(1, 10)}

    def test_all_validate(self):
        for query in all_queries().values():
            query.validate()

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_query("Q42")

    def test_single_chain_queries(self):
        for name in ("Q1", "Q2", "Q3", "Q4", "Q5"):
            assert isinstance(build_query(name), Query)

    def test_composites(self):
        for name in ("Q6", "Q7", "Q8", "Q9"):
            assert isinstance(build_query(name), CompositeQuery)

    def test_dataplane_primitive_counts_match_paper_shape(self):
        """Q6 has the most primitives (12); Q8 has 10 (paper §6.4)."""
        q6 = build_query("Q6")
        q8 = build_query("Q8")
        assert q6.dataplane_primitives == 12
        assert q8.dataplane_primitives == 10

    def test_thresholds_propagate(self):
        th = QueryThresholds(new_tcp_conns=77)
        q1 = build_query("Q1", th)
        assert q1.final_threshold.threshold == 77

    def test_sub_query_ids_namespaced(self):
        for name in ("Q6", "Q7", "Q8", "Q9"):
            for sub in flatten(build_query(name)):
                assert sub.qid.startswith(name + ".")


class TestJoins:
    def test_q6_join_flags_asymmetric_hosts(self):
        th = QueryThresholds(syn_flood=5, syn_flood_sub=10)
        q6 = build_query("Q6", th)
        victims = q6.join({
            "Q6.syn": {(1,): 10, (2,): 10},
            "Q6.synack": {(1,): 10},
            "Q6.ack": {(2,): 10},  # host 2 completes handshakes
        })
        assert victims == [1]

    def test_q7_join_requires_both_sides(self):
        q7 = build_query("Q7")
        hosts = q7.join({
            "Q7.syn": {(1,): 10, (2,): 10},
            "Q7.fin": {(1,): 10},
        })
        assert hosts == [1]

    def test_q8_join_ratio(self):
        th = QueryThresholds(slowloris_ratio=100)
        q8 = build_query("Q8", th)
        victims = q8.join({
            "Q8.conns": {(1,): 50, (2,): 50},
            "Q8.bytes": {(1,): 1000, (2,): 500000},
        })
        assert victims == [1]

    def test_q8_join_ignores_missing_bytes(self):
        q8 = build_query("Q8")
        assert q8.join({"Q8.conns": {(1,): 50}, "Q8.bytes": {}}) == []

    def test_q9_join_excludes_connected_hosts(self):
        th = QueryThresholds(dns_tcp=2, dns_sub=2)
        q9 = build_query("Q9", th)
        orphans = q9.join({
            "Q9.dns": {(1,): 5, (2,): 5},
            "Q9.tcp": {(2,): 3},
        })
        assert orphans == [1]

    def test_q9_join_respects_answer_threshold(self):
        th = QueryThresholds(dns_tcp=4)
        q9 = build_query("Q9", th)
        assert q9.join({"Q9.dns": {(1,): 3}, "Q9.tcp": {}}) == []


class TestThresholdValidation:
    """Clipped-count join consistency (QueryThresholds.validate)."""

    def test_defaults_valid(self):
        QueryThresholds().validate()

    def test_q6_score_must_be_reachable(self):
        with pytest.raises(ValueError, match="syn_flood"):
            QueryThresholds(syn_flood=10, syn_flood_sub=10).validate()

    def test_q9_answer_threshold_must_be_exported(self):
        with pytest.raises(ValueError, match="dns_tcp"):
            QueryThresholds(dns_tcp=5, dns_sub=2).validate()

    def test_q8_ratio_must_pass_on_clipped_counts(self):
        with pytest.raises(ValueError, match="ratio"):
            QueryThresholds(slowloris_bytes=10_000, slowloris_conns=10,
                            slowloris_ratio=100).validate()

    def test_non_positive_thresholds_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            QueryThresholds(port_scan=0).validate()

    def test_build_query_does_not_force_validation(self):
        # Ground-truth / readout-backed flows legitimately use threshold
        # combinations the clipped-report pipeline cannot satisfy.
        build_query("Q6", QueryThresholds(syn_flood=99)).validate()
