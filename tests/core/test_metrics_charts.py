"""Metrics and terminal-chart tests."""

import pytest

from repro.core.groundtruth import WindowTruth
from repro.experiments.charts import bar_chart, series_chart
from repro.experiments.metrics import score_detections


def truth(epoch, counts, keys):
    return WindowTruth(epoch=epoch, counts=counts, keys=set(keys))


class TestScoreDetections:
    def test_perfect_detection(self):
        truths = {0: truth(0, {(1,): 10, (2,): 3}, [(1,)])}
        quality = score_detections(truths, {0: {(1,)}})
        assert quality.recall == 1.0
        assert quality.fpr == 0.0
        assert quality.precision == 1.0
        assert quality.f1 == 1.0

    def test_miss_counts_against_recall(self):
        truths = {0: truth(0, {(1,): 10, (2,): 12, (3,): 1},
                           [(1,), (2,)])}
        quality = score_detections(truths, {0: {(1,)}})
        assert quality.recall == 0.5
        assert quality.false_negatives == 1

    def test_false_positive_rate_over_negatives(self):
        truths = {0: truth(0, {(1,): 10, (2,): 1, (3,): 1}, [(1,)])}
        quality = score_detections(truths, {0: {(1,), (2,)}})
        assert quality.fpr == pytest.approx(0.5)  # 1 of 2 negatives
        assert quality.false_positives == 1
        assert quality.precision == pytest.approx(0.5)

    def test_windows_averaged(self):
        truths = {
            0: truth(0, {(1,): 10}, [(1,)]),
            1: truth(1, {(2,): 10}, [(2,)]),
        }
        quality = score_detections(truths, {0: {(1,)}, 1: set()})
        assert quality.recall == pytest.approx(0.5)

    def test_empty_truth_is_vacuously_perfect(self):
        quality = score_detections({}, {})
        assert quality.recall == 1.0 and quality.fpr == 0.0

    def test_f1_zero_when_nothing_found(self):
        truths = {0: truth(0, {(1,): 10}, [(1,)])}
        quality = score_detections(truths, {})
        assert quality.f1 == 0.0


class TestBarChart:
    def test_scales_to_largest(self):
        chart = bar_chart({"a": 10, "b": 5}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_log_scale_compresses_orders(self):
        chart = bar_chart({"small": 1, "big": 1000}, width=30, log=True)
        small, big = (line.count("#") for line in chart.splitlines())
        assert 0 < small < big
        assert big / max(small, 1) < 1000  # compressed, not linear

    def test_zero_value_gets_no_bar(self):
        chart = bar_chart({"z": 0, "a": 5})
        assert chart.splitlines()[0].count("#") == 0

    def test_values_printed(self):
        assert "1.50e-05" in bar_chart({"x": 1.5e-5})

    def test_empty(self):
        assert bar_chart({}) == "(no data)"


class TestSeriesChart:
    def test_legend_and_axis(self):
        chart = series_chart([1, 2, 3], {"Newton": [4, 4, 4],
                                         "Sonata": [4, 8, 12]})
        assert "N=Newton" in chart
        assert "S=Sonata" in chart
        assert "x: 1  2  3" in chart

    def test_flat_series_stays_on_one_row(self):
        chart = series_chart([1, 2, 3, 4], {"Flat": [5, 5, 5, 5],
                                            "Up": [1, 5, 9, 13]})
        rows_with_f = [line for line in chart.splitlines()
                       if "F" in line and line.startswith("|")]
        assert len(rows_with_f) == 1

    def test_collision_marked(self):
        chart = series_chart([1, 2], {"Aa": [1, 2], "Bb": [1, 3]})
        assert "*" in chart  # both series share the first point

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            series_chart([1, 2], {"x": [1]})

    def test_log_scale_noted(self):
        assert "(log y)" in series_chart([1, 2], {"x": [1, 1000]},
                                         log=True)
