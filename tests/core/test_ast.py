"""Primitive IR tests."""

import pytest

from repro.core.ast import (
    CmpOp,
    Distinct,
    FieldPredicate,
    Filter,
    KeyExpr,
    Map,
    Reduce,
    ReduceFunc,
    ResultFilter,
)


class TestFieldPredicate:
    @pytest.mark.parametrize("op,value,actual,expected", [
        (CmpOp.EQ, 5, 5, True), (CmpOp.EQ, 5, 6, False),
        (CmpOp.NE, 5, 6, True), (CmpOp.GT, 5, 6, True),
        (CmpOp.GT, 5, 5, False), (CmpOp.GE, 5, 5, True),
        (CmpOp.LT, 5, 4, True), (CmpOp.LE, 5, 5, True),
    ])
    def test_comparisons(self, op, value, actual, expected):
        pred = FieldPredicate("dport", op, value)
        assert pred.evaluate({"dport": actual}) is expected

    def test_mask_eq(self):
        pred = FieldPredicate("tcp_flags", CmpOp.MASK_EQ, 0x02, mask=0x02)
        assert pred.evaluate({"tcp_flags": 0x12})
        assert not pred.evaluate({"tcp_flags": 0x10})

    def test_mask_eq_requires_mask(self):
        with pytest.raises(ValueError):
            FieldPredicate("tcp_flags", CmpOp.MASK_EQ, 2)

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError):
            FieldPredicate("bogus", CmpOp.EQ, 1)

    def test_init_foldable(self):
        assert FieldPredicate("dport", CmpOp.EQ, 22).init_foldable
        assert FieldPredicate("tcp_flags", CmpOp.MASK_EQ, 2,
                              mask=2).init_foldable
        assert not FieldPredicate("dport", CmpOp.GT, 22).init_foldable
        assert not FieldPredicate("len", CmpOp.EQ, 64).init_foldable

    def test_to_init_match(self):
        value, mask = FieldPredicate("dport", CmpOp.EQ, 22).to_init_match()
        assert (value, mask) == (22, 0xFFFF)

    def test_to_init_match_rejects_ranges(self):
        with pytest.raises(ValueError):
            FieldPredicate("dport", CmpOp.GT, 22).to_init_match()


class TestKeyExpr:
    def test_full_field_default(self):
        assert KeyExpr("dip").effective_mask == 0xFFFFFFFF

    def test_masked_extract(self):
        expr = KeyExpr("dip", 0xFFFFFF00)
        assert expr.extract({"dip": 0x0A0000FF}) == 0x0A000000

    def test_mask_bounds(self):
        with pytest.raises(ValueError):
            KeyExpr("proto", 0x1FF)

    def test_describe(self):
        assert KeyExpr("dip").describe() == "dip"
        assert "&" in KeyExpr("dip", 0xFF).describe()


class TestPrimitives:
    def test_filter_requires_predicates(self):
        with pytest.raises(ValueError):
            Filter(predicates=())

    def test_filter_and_semantics(self):
        f = Filter((FieldPredicate("proto", CmpOp.EQ, 6),
                    FieldPredicate("dport", CmpOp.EQ, 22)))
        assert f.evaluate({"proto": 6, "dport": 22})
        assert not f.evaluate({"proto": 6, "dport": 23})

    def test_filter_foldability(self):
        assert Filter((FieldPredicate("proto", CmpOp.EQ, 6),)).init_foldable
        mixed = Filter((FieldPredicate("proto", CmpOp.EQ, 6),
                        FieldPredicate("len", CmpOp.GT, 100)))
        assert not mixed.init_foldable

    def test_filter_duplicate_fields_not_foldable(self):
        f = Filter((FieldPredicate("dport", CmpOp.EQ, 22),
                    FieldPredicate("dport", CmpOp.EQ, 80)))
        assert not f.init_foldable

    def test_map_key_masks(self):
        m = Map(keys=(KeyExpr("dip"), KeyExpr("sport")))
        masks = m.key_masks()
        assert masks == {"dip": 0xFFFFFFFF, "sport": 0xFFFF}

    def test_map_needs_keys(self):
        with pytest.raises(ValueError):
            Map(keys=())

    def test_extract_key_order(self):
        m = Map(keys=(KeyExpr("dport"), KeyExpr("sip")))
        assert m.extract_key({"dport": 80, "sip": 9}) == (80, 9)

    def test_reduce_operand_field(self):
        assert Reduce(keys=(KeyExpr("dip"),)).operand_field is None
        assert Reduce(keys=(KeyExpr("dip"),),
                      func=ReduceFunc.SUM_LEN).operand_field == "len"

    def test_distinct_describe(self):
        assert "distinct" in Distinct(keys=(KeyExpr("dip"),)).describe()


class TestResultFilter:
    def test_crossing_value(self):
        assert ResultFilter(CmpOp.GE, 10).crossing_value == 10
        assert ResultFilter(CmpOp.GT, 10).crossing_value == 11
        assert ResultFilter(CmpOp.EQ, 10).crossing_value == 10

    def test_evaluate_count(self):
        ge = ResultFilter(CmpOp.GE, 10)
        assert ge.evaluate_count(10) and not ge.evaluate_count(9)
        gt = ResultFilter(CmpOp.GT, 10)
        assert gt.evaluate_count(11) and not gt.evaluate_count(10)

    def test_invalid_ops_rejected(self):
        with pytest.raises(ValueError):
            ResultFilter(CmpOp.LT, 10)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            ResultFilter(CmpOp.GE, -1)
