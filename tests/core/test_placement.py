"""Algorithm 2 placement tests."""

import pytest

from repro.core.placement import PlacementError, PlacementResult, place_slices
from repro.network.topology import fat_tree, isp_backbone, linear


def adjacency(topology):
    return topology.neighbor_map()


class TestLinearChain:
    def test_slices_follow_depth(self):
        topo = linear(4)
        result = place_slices(adjacency(topo), ["s0"], num_slices=3,
                              method="dfs")
        assert result.slices_at("s0") == (0,)
        assert result.slices_at("s1") == (1,)
        assert result.slices_at("s2") == (2,)
        assert result.slices_at("s3") == ()

    def test_single_slice_only_edges(self):
        topo = linear(3)
        result = place_slices(adjacency(topo), ["s0"], num_slices=1,
                              method="dfs")
        assert result.assignments == {"s0": (0,)}

    def test_both_ends_monitored(self):
        topo = linear(3)
        result = place_slices(adjacency(topo), ["s0", "s2"], num_slices=2,
                              method="dfs")
        # Middle switch is depth 2 from both ends.
        assert result.slices_at("s1") == (1,)
        assert result.slices_at("s0") == (0,)
        assert result.slices_at("s2") == (0,)


class TestCoverage:
    """Algorithm 2's guarantee: any path from a monitored edge executes
    the whole query in order."""

    @pytest.mark.parametrize("method", ["dfs", "layered"])
    def test_all_simple_paths_covered_fat_tree(self, method):
        import networkx as nx

        topo = fat_tree(4)
        edges = topo.edge_switches
        result = place_slices(adjacency(topo), edges, num_slices=3,
                              method=method)
        graph = topo.graph
        root = edges[0]
        count = 0
        for target in topo.switches():
            if target == root:
                continue
            for path in nx.all_simple_paths(graph, root, target, cutoff=4):
                if len(path) < 3:
                    continue
                assert result.covers_path(path), path
                count += 1
                if count > 300:
                    return

    @pytest.mark.parametrize("method", ["dfs", "layered"])
    def test_isp_rerouting_still_covered(self, method):
        """The Figure 9 scenario: remove a link, the alternate path still
        carries all slices in order."""
        import networkx as nx

        topo = isp_backbone()
        result = place_slices(adjacency(topo), ["Los Angeles"],
                              num_slices=3, method=method)
        graph = topo.graph.copy()
        primary = nx.shortest_path(graph, "Los Angeles", "New York")
        assert result.covers_path(primary)
        graph.remove_edge(primary[0], primary[1])
        detour = nx.shortest_path(graph, "Los Angeles", "New York")
        assert result.covers_path(detour)


class TestEngines:
    def test_layered_superset_of_dfs(self):
        topo = fat_tree(4)
        edges = topo.edge_switches
        dfs = place_slices(adjacency(topo), edges, 4, method="dfs")
        layered = place_slices(adjacency(topo), edges, 4, method="layered")
        for switch, slices in dfs.assignments.items():
            assert set(slices) <= set(layered.slices_at(switch))

    def test_engines_agree_on_trees(self):
        # A chain has no cycles, so walks and simple paths coincide.
        topo = linear(6)
        dfs = place_slices(adjacency(topo), ["s0"], 4, method="dfs")
        layered = place_slices(adjacency(topo), ["s0"], 4, method="layered")
        assert dfs.assignments == layered.assignments

    def test_auto_threshold(self):
        small = place_slices(adjacency(linear(3)), ["s0"], 2, method="auto")
        assert small.method == "dfs"
        big_topo = fat_tree(12)  # 180 switches
        big = place_slices(adjacency(big_topo), big_topo.edge_switches, 2,
                           method="auto", dfs_limit_nodes=100)
        assert big.method == "layered"


class TestAccounting:
    def test_total_entries(self):
        topo = linear(3)
        result = place_slices(adjacency(topo), ["s0"], 2, method="dfs")
        # s0 gets slice 0 (say 5 rules), s1 slice 1 (3 rules).
        assert result.total_entries([5, 3]) == 8

    def test_average_entries(self):
        topo = linear(4)
        result = place_slices(adjacency(topo), ["s0"], 2, method="dfs")
        assert result.average_entries([4, 4], topo.num_switches) == 2.0

    def test_rules_length_validated(self):
        topo = linear(2)
        result = place_slices(adjacency(topo), ["s0"], 2, method="dfs")
        with pytest.raises(PlacementError):
            result.total_entries([1])

    def test_placements_counts_pairs(self):
        topo = linear(3)
        result = place_slices(adjacency(topo), ["s0", "s2"], 2, method="dfs")
        assert result.placements() == sum(
            len(v) for v in result.assignments.values()
        )


class TestValidation:
    def test_no_edges_rejected(self):
        with pytest.raises(PlacementError):
            place_slices(adjacency(linear(2)), [], 1)

    def test_unknown_edge_rejected(self):
        with pytest.raises(PlacementError):
            place_slices(adjacency(linear(2)), ["s9"], 1)

    def test_zero_slices_rejected(self):
        with pytest.raises(PlacementError):
            place_slices(adjacency(linear(2)), ["s0"], 0)

    def test_unknown_method_rejected(self):
        with pytest.raises(PlacementError):
            place_slices(adjacency(linear(2)), ["s0"], 1, method="magic")
