"""Packet model tests."""

import pytest

from repro.core.packet import Packet, Proto, TcpFlags, ip, ip_str


class TestIpConversion:
    def test_round_trip(self):
        for addr in ("0.0.0.0", "10.1.2.3", "255.255.255.255"):
            assert ip_str(ip(addr)) == addr

    def test_known_value(self):
        assert ip("10.0.0.1") == 0x0A000001

    def test_malformed_rejected(self):
        for bad in ("10.0.0", "1.2.3.4.5", "300.0.0.1", "a.b.c.d"):
            with pytest.raises(ValueError):
                ip(bad)

    def test_out_of_range_int(self):
        with pytest.raises(ValueError):
            ip_str(1 << 33)


class TestPacket:
    def test_defaults_valid(self):
        packet = Packet()
        assert packet.five_tuple == (0, 0, 0, 0, 0)

    def test_field_validation(self):
        with pytest.raises(ValueError):
            Packet(sport=70000)

    def test_five_tuple(self):
        packet = Packet(sip=1, dip=2, proto=6, sport=3, dport=4)
        assert packet.five_tuple == (1, 2, 6, 3, 4)

    def test_protocol_helpers(self):
        assert Packet(proto=int(Proto.TCP)).is_tcp
        assert Packet(proto=int(Proto.UDP)).is_udp
        assert not Packet(proto=1).is_tcp

    def test_has_flags(self):
        packet = Packet(tcp_flags=int(TcpFlags.SYNACK))
        assert packet.has_flags(TcpFlags.SYN)
        assert packet.has_flags(TcpFlags.ACK)
        assert not packet.has_flags(TcpFlags.FIN)

    def test_field_values_complete(self):
        values = Packet().field_values()
        assert set(values) == {
            "sip", "dip", "proto", "sport", "dport", "tcp_flags",
            "len", "ttl", "dns_ancount",
        }

    def test_reply_swaps_endpoints(self):
        packet = Packet(sip=1, dip=2, sport=10, dport=20, proto=6,
                        src_host="a", dst_host="b")
        reply = packet.reply()
        assert (reply.sip, reply.dip) == (2, 1)
        assert (reply.sport, reply.dport) == (20, 10)
        assert (reply.src_host, reply.dst_host) == ("b", "a")

    def test_reply_overrides(self):
        reply = Packet(sip=1, dip=2).reply(tcp_flags=int(TcpFlags.SYNACK))
        assert reply.tcp_flags == int(TcpFlags.SYNACK)

    def test_describe_readable(self):
        text = Packet(sip=ip("10.0.0.1"), dip=ip("10.0.0.2"), proto=6,
                      tcp_flags=int(TcpFlags.SYN)).describe()
        assert "10.0.0.1" in text and "SYN" in text
