"""Compiler tests: lowering, Algorithm 1 optimisations, scheduling, slicing."""

import pytest

from repro.core.ast import CmpOp, FieldPredicate
from repro.core.compiler import (
    CompilationError,
    Optimizations,
    QueryParams,
    compile_query,
    slice_compiled,
)
from repro.core.packet import Proto, TcpFlags
from repro.core.query import Query
from repro.core.rules import HConfig, KConfig, RConfig, SConfig
from repro.dataplane.module_types import ModuleType


def q1(threshold=40):
    return (
        Query("c.q1")
        .filter(proto=Proto.TCP, tcp_flags=TcpFlags.SYN)
        .map("dip")
        .reduce("dip")
        .where(ge=threshold)
    )


PARAMS = QueryParams(cm_depth=2, bf_hashes=3,
                     reduce_registers=128, distinct_registers=128)


class TestOpt1:
    def test_front_filter_folds_into_init(self):
        compiled = compile_query(q1(), PARAMS)
        assert compiled.absorbed_front_filter
        match = compiled.init_entries[0].match_map()
        assert match["proto"] == (6, 0xFF)
        assert match["tcp_flags"] == (2, 0xFF)

    def test_disabled_keeps_filter_on_modules(self):
        compiled = compile_query(q1(), PARAMS, Optimizations.upto(0))
        assert not compiled.absorbed_front_filter
        assert compiled.init_entries[0].match == ()

    def test_partial_fold(self):
        query = (
            Query("c.partial")
            .filter(
                FieldPredicate("proto", CmpOp.EQ, 17),
                FieldPredicate("dns_ancount", CmpOp.GT, 0),
            )
            .map("dip")
            .reduce("dip")
            .where(ge=2)
        )
        compiled = compile_query(query, PARAMS)
        assert not compiled.absorbed_front_filter  # residue remains
        assert "proto" in compiled.init_entries[0].match_map()
        # The residue predicate still occupies module rules.
        r_modules = [s for s in compiled.specs
                     if s.primitive_index == 0]
        assert r_modules

    def test_non_front_filter_never_folds(self):
        query = (
            Query("c.mid")
            .map("dip")
            .reduce("dip")
            .where(ge=2)
        )
        query.filter(proto=6)  # appended after the reduce
        compiled = compile_query(query, PARAMS)
        assert not compiled.absorbed_front_filter


class TestOpt2:
    def test_map_compiles_to_k_only(self):
        compiled = compile_query(Query("c.map").map("dip"), PARAMS)
        assert [s.module_type for s in compiled.specs] == [
            ModuleType.KEY_SELECTION
        ]

    def test_redundant_k_removed_between_primitives(self):
        compiled = compile_query(q1(), PARAMS)
        k_modules = [s for s in compiled.specs
                     if s.module_type is ModuleType.KEY_SELECTION]
        # map(dip) and both reduce rows share one K.
        assert len(k_modules) == 1

    def test_sketch_rows_share_k(self):
        compiled = compile_query(
            Query("c.red").reduce("dip"),
            QueryParams(cm_depth=4, reduce_registers=64),
        )
        counts = {}
        for spec in compiled.specs:
            counts[spec.module_type] = counts.get(spec.module_type, 0) + 1
        assert counts[ModuleType.KEY_SELECTION] == 1
        assert counts[ModuleType.HASH_CALCULATION] == 4
        assert counts[ModuleType.STATE_BANK] == 4

    def test_without_opt2_padding_modules_remain(self):
        compiled = compile_query(Query("c.map").map("dip"), PARAMS,
                                 Optimizations.upto(1))
        assert len(compiled.specs) == 4  # full K/H/S/R suite


class TestOpt3:
    def test_vertical_composition_reduces_stages(self):
        flat = compile_query(q1(), PARAMS, Optimizations.upto(2))
        packed = compile_query(q1(), PARAMS, Optimizations.upto(3))
        assert packed.num_stages < flat.num_stages
        assert packed.num_modules == flat.num_modules

    def test_sets_alternate_on_key_change(self):
        query = (
            Query("c.two")
            .map("sip", "dip")
            .distinct("sip", "dip")
            .map("sip")
            .reduce("sip")
            .where(ge=2)
        )
        compiled = compile_query(query, PARAMS)
        sets = {s.set_id for s in compiled.specs}
        assert sets == {0, 1}

    def test_intra_set_order_preserved(self):
        """Within one metadata set, K < H < S stage ordering must hold for
        each suite (write-read dependencies, Figure 4)."""
        compiled = compile_query(q1(), PARAMS)
        by_suite = {}
        for spec in compiled.specs:
            by_suite.setdefault(
                (spec.primitive_index, spec.suite_index), {}
            )[spec.module_type] = spec.stage
        for stages in by_suite.values():
            h = stages.get(ModuleType.HASH_CALCULATION)
            s = stages.get(ModuleType.STATE_BANK)
            r = stages.get(ModuleType.RESULT_PROCESS)
            if h is not None and s is not None:
                assert h < s
            if s is not None and r is not None:
                assert s < r

    def test_r_chain_strictly_ordered(self):
        compiled = compile_query(q1(), PARAMS)
        r_stages = [s.stage for s in compiled.specs
                    if s.module_type is ModuleType.RESULT_PROCESS]
        assert r_stages == sorted(r_stages)
        assert len(set(r_stages)) == len(r_stages)

    def test_one_slot_per_type_per_stage(self):
        compiled = compile_query(q1(), PARAMS)
        seen = set()
        for spec in compiled.specs:
            key = (spec.stage, spec.module_type)
            assert key not in seen
            seen.add(key)


class TestConfigs:
    def test_reduce_slice_matches_hash_range(self):
        compiled = compile_query(Query("c.red").reduce("dip"), PARAMS)
        h_configs = [s.config for s in compiled.specs
                     if s.module_type is ModuleType.HASH_CALCULATION]
        s_configs = [s.config for s in compiled.specs
                     if s.module_type is ModuleType.STATE_BANK]
        for h, s in zip(h_configs, s_configs):
            assert isinstance(h, HConfig) and isinstance(s, SConfig)
            assert h.range_size == s.slice_size == PARAMS.reduce_registers

    def test_hash_seeds_unique_per_row(self):
        compiled = compile_query(
            Query("c.red").reduce("dip"),
            QueryParams(cm_depth=3, reduce_registers=64),
        )
        seeds = [s.config.seed_index for s in compiled.specs
                 if s.module_type is ModuleType.HASH_CALCULATION]
        assert len(seeds) == len(set(seeds)) == 3

    def test_distinct_uses_test_and_set(self):
        compiled = compile_query(
            Query("c.dis").distinct("dip"),
            QueryParams(bf_hashes=2, distinct_registers=64),
        )
        s_configs = [s.config for s in compiled.specs
                     if s.module_type is ModuleType.STATE_BANK]
        assert all(c.output_old for c in s_configs)

    def test_register_demand(self):
        compiled = compile_query(Query("c.red").reduce("dip"),
                                 QueryParams(cm_depth=2, reduce_registers=64))
        assert compiled.register_demand == 128

    def test_rule_count_includes_init(self):
        compiled = compile_query(q1(), PARAMS)
        assert compiled.rule_count == compiled.num_modules + 1


class TestErrors:
    def test_empty_query_rejected(self):
        with pytest.raises(ValueError):
            compile_query(Query("c.empty"), PARAMS)

    def test_fold_only_query_rejected(self):
        query = Query("c.init").filter(proto=6)
        with pytest.raises(CompilationError):
            compile_query(query, PARAMS)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            QueryParams(cm_depth=0)
        with pytest.raises(ValueError):
            QueryParams(reduce_registers=0)


class TestSlicing:
    def test_single_slice_when_fits(self):
        compiled = compile_query(q1(), PARAMS)
        slices = slice_compiled(compiled, 12)
        assert len(slices) == 1
        assert slices[0].total_slices == 1
        assert slices[0].init_entries

    def test_multi_slice_partition(self):
        compiled = compile_query(q1(), PARAMS)
        stages_per = 2
        slices = slice_compiled(compiled, stages_per)
        assert len(slices) == -(-compiled.num_stages // stages_per)
        # Every spec lands in exactly one slice.
        total = sum(len(s.specs) for s in slices)
        assert total == compiled.num_modules
        # Only slice 0 dispatches.
        assert slices[0].init_entries
        assert all(not s.init_entries for s in slices[1:])

    def test_slice_stage_bounds(self):
        compiled = compile_query(q1(), PARAMS)
        for s in slice_compiled(compiled, 3):
            for spec in s.specs:
                assert s.stage_base <= spec.stage < s.stage_base + 3

    def test_invalid_stage_budget(self):
        compiled = compile_query(q1(), PARAMS)
        with pytest.raises(ValueError):
            slice_compiled(compiled, 0)
