"""Execution-level tests for the filter lowering paths.

Equality filters fold into ``newton_init`` or use the hash-match trick;
range predicates compile to direct-mode H plus R range entries; mid-query
filters sit behind stateful primitives.  Each path is exercised against a
live pipeline, not just structurally.
"""

import pytest

from repro.core.ast import CmpOp, FieldPredicate
from repro.core.compiler import (
    CompilationError,
    Optimizations,
    QueryParams,
    compile_query,
    slice_compiled,
)
from repro.core.packet import Packet
from repro.core.query import Query
from repro.dataplane.pipeline import NewtonPipeline

PARAMS = QueryParams(cm_depth=1, bf_hashes=1,
                     reduce_registers=128, distinct_registers=128)


def dips(reports):
    """Extract the reduce's dip key from whichever metadata set holds it."""
    out = []
    for report in reports:
        f0 = report.payload["set0_fields"]
        f1 = report.payload["set1_fields"]
        out.append((f1 if "dip" in f1 else f0)["dip"])
    return out


def run_query(query, packets, threshold_reports=True):
    pipeline = NewtonPipeline(num_stages=12, array_size=256)
    compiled = compile_query(query, PARAMS,
                             hash_family=pipeline.hash_family)
    pipeline.install_slice(slice_compiled(compiled, 12)[0])
    reports = []
    for packet in packets:
        reports.extend(pipeline.process(packet).reports)
    return reports


class TestRangePredicates:
    def _q(self, pred):
        return (
            Query("rf.q")
            .filter(pred)
            .map("dip")
            .reduce("dip")
            .where(ge=1)
        )

    def test_gt(self):
        query = self._q(FieldPredicate("len", CmpOp.GT, 100))
        reports = run_query(query, [
            Packet(dip=1, len=100, ts=0.0),
            Packet(dip=2, len=101, ts=0.001),
        ])
        assert len(reports) == 1
        assert dips(reports) == [2]

    def test_le(self):
        query = self._q(FieldPredicate("len", CmpOp.LE, 100))
        reports = run_query(query, [
            Packet(dip=1, len=100, ts=0.0),
            Packet(dip=2, len=101, ts=0.001),
        ])
        assert dips(reports) == [1]

    def test_lt_zero_matches_nothing(self):
        query = self._q(FieldPredicate("len", CmpOp.LT, 64))
        # len defaults to 64, so nothing passes len < 64.
        assert run_query(query, [Packet(dip=1)]) == []

    def test_ne(self):
        query = self._q(FieldPredicate("ttl", CmpOp.NE, 64))
        reports = run_query(query, [
            Packet(dip=1, ttl=64, ts=0.0),
            Packet(dip=2, ttl=63, ts=0.001),
            Packet(dip=3, ttl=65, ts=0.002),
        ])
        assert sorted(dips(reports)) == [2, 3]

    def test_range_plus_equality_combined(self):
        query = (
            Query("rf.combo")
            .filter(
                FieldPredicate("proto", CmpOp.EQ, 17),
                FieldPredicate("len", CmpOp.GE, 512),
            )
            .map("dip")
            .reduce("dip")
            .where(ge=1)
        )
        reports = run_query(query, [
            Packet(dip=1, proto=17, len=600, ts=0.0),   # passes both
            Packet(dip=2, proto=6, len=600, ts=0.001),  # wrong proto
            Packet(dip=3, proto=17, len=64, ts=0.002),  # too small
        ])
        assert dips(reports) == [1]


class TestHashTrickEquality:
    def test_non_front_multifield_filter(self):
        """A filter behind a map cannot fold into newton_init; it must use
        the hash-match path and still behave exactly."""
        query = (
            Query("rf.hash")
            .map("sip")
            .filter(proto=17, dport=53)
            .map("dip")
            .reduce("dip")
            .where(ge=1)
        )
        reports = run_query(query, [
            Packet(dip=1, proto=17, dport=53, ts=0.0),
            Packet(dip=2, proto=17, dport=54, ts=0.001),
            Packet(dip=3, proto=6, dport=53, ts=0.002),
        ])
        assert dips(reports) == [1]

    def test_masked_flag_filter_mid_query(self):
        query = (
            Query("rf.mask")
            .map("dip")
            .filter(FieldPredicate("tcp_flags", CmpOp.MASK_EQ, 0x01,
                                   mask=0x01))
            .reduce("dip")
            .where(ge=1)
        )
        reports = run_query(query, [
            Packet(dip=1, proto=6, tcp_flags=0x11, ts=0.0),  # FIN|ACK
            Packet(dip=2, proto=6, tcp_flags=0x10, ts=0.001),  # ACK only
        ])
        assert dips(reports) == [1]


class TestThresholdVariants:
    def test_eq_threshold_fires_once(self):
        query = Query("rf.eq").map("dip").reduce("dip").where(eq=2)
        reports = run_query(query, [
            Packet(dip=7, ts=i * 1e-3) for i in range(5)
        ])
        assert len(reports) == 1
        assert reports[0].global_result == 2

    def test_gt_threshold_crossing(self):
        query = Query("rf.gt").map("dip").reduce("dip").where(gt=2)
        reports = run_query(query, [
            Packet(dip=7, ts=i * 1e-3) for i in range(5)
        ])
        assert len(reports) == 1
        assert reports[0].global_result == 3  # first count exceeding 2

    def test_byte_sum_threshold_dedups(self):
        query = (
            Query("rf.sum").map("dip").reduce("dip", func="sum")
            .where(ge=1000)
        )
        # 300-byte packets: the sum jumps 900 -> 1200 over the threshold,
        # which exact-crossing matching would miss; the flag suite both
        # catches it and reports exactly once.
        reports = run_query(query, [
            Packet(dip=7, len=300, ts=i * 1e-3) for i in range(8)
        ])
        assert len(reports) == 1
        assert reports[0].global_result >= 1000


class TestUnsupportedShapes:
    def test_range_on_multiple_fields_splits_suites(self):
        query = (
            Query("rf.two")
            .filter(
                FieldPredicate("len", CmpOp.GT, 100),
                FieldPredicate("ttl", CmpOp.LT, 32),
            )
            .map("dip")
            .reduce("dip")
            .where(ge=1)
        )
        reports = run_query(query, [
            Packet(dip=1, len=200, ttl=16, ts=0.0),
            Packet(dip=2, len=200, ttl=64, ts=0.001),
            Packet(dip=3, len=64, ttl=16, ts=0.002),
        ])
        assert dips(reports) == [1]
