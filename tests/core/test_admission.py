"""Admission planner tests: predictions must match install reality."""

import pytest

from repro.core.admission import (
    AdmissionPlanner,
    ResourceSnapshot,
    demand_of,
)
from repro.core.compiler import QueryParams, compile_query
from repro.core.library import QueryThresholds, build_query
from repro.core.query import Query
from repro.dataplane.module_types import ModuleType
from repro.network.deployment import build_deployment
from repro.network.topology import linear


def q(qid, threshold=10):
    return (
        Query(qid)
        .filter(proto=6, tcp_flags=2)
        .map("dip")
        .reduce("dip")
        .where(ge=threshold)
    )


SMALL = QueryParams(cm_depth=2, bf_hashes=2,
                    reduce_registers=256, distinct_registers=256)


class TestDemand:
    def test_demand_counts_rules_and_registers(self):
        compiled = compile_query(q("ad.q"), SMALL)
        demand = demand_of(compiled)
        assert demand.init_entries == 1
        assert sum(n for _, n in demand.rules) == compiled.num_modules
        assert sum(n for _, n in demand.registers) == 2 * 256
        assert demand.stages == compiled.num_stages

    def test_passthrough_s_needs_no_registers(self):
        query = Query("ad.f").map("dip").reduce("dip").where(ge=2)
        query.primitives.insert(0, build_query("Q3").primitives[0])
        compiled = compile_query(Query("ad.m").map("dip"), SMALL)
        assert demand_of(compiled).registers == ()


class TestSnapshot:
    def test_fresh_switch_fully_free(self):
        deployment = build_deployment(linear(1), table_capacity=256,
                                      array_size=4096)
        snapshot = ResourceSnapshot.of(deployment.switch("s0"))
        assert snapshot.init_free == 256
        assert all(v == 256 for v in snapshot.table_free.values())
        assert all(v == 4096 for v in snapshot.register_free.values())

    def test_snapshot_reflects_installs(self):
        deployment = build_deployment(linear(1), array_size=4096)
        deployment.controller.install_query(q("ad.q"), SMALL, path=["s0"])
        snapshot = ResourceSnapshot.of(deployment.switch("s0"))
        assert snapshot.init_free == 255
        used_tables = sum(
            1 for v in snapshot.table_free.values() if v < 256
        )
        assert used_tables == compile_query(q("ad.q"), SMALL).num_modules


class TestCheck:
    def test_fitting_query_has_no_violations(self):
        deployment = build_deployment(linear(1), array_size=4096)
        planner = AdmissionPlanner(deployment.switch("s0"))
        assert planner.check(q("ad.q"), SMALL) == []

    def test_register_violation_detected(self):
        deployment = build_deployment(linear(1), array_size=128)
        planner = AdmissionPlanner(deployment.switch("s0"))
        violations = planner.check(q("ad.q"), SMALL)  # 256 > 128
        assert violations and all("registers" in v for v in violations)

    def test_stage_violation_detected(self):
        deployment = build_deployment(linear(1), num_stages=3)
        planner = AdmissionPlanner(deployment.switch("s0"))
        violations = planner.check(q("ad.q"), SMALL)
        assert any("stages" in v for v in violations)

    def test_prediction_matches_install(self):
        """check() == [] iff the controller install succeeds."""
        deployment = build_deployment(linear(1), array_size=700)
        planner = AdmissionPlanner(deployment.switch("s0"))
        installed = 0
        for i in range(6):
            query = q(f"ad.q{i}")
            fits = planner.check(query, SMALL) == []
            try:
                deployment.controller.install_query(query, SMALL,
                                                    path=["s0"])
                ok = True
                installed += 1
            except Exception:
                ok = False
            assert fits == ok, f"prediction diverged at query {i}"
        assert 0 < installed < 6  # the scenario actually exercised both


class TestPlan:
    def test_greedy_admits_until_full(self):
        deployment = build_deployment(linear(1), array_size=1024)
        planner = AdmissionPlanner(deployment.switch("s0"))
        requests = [(q(f"ad.p{i}"), SMALL) for i in range(8)]
        result = planner.plan(requests, degrade=False)
        assert result.admitted and result.rejected
        # All rejections are register-bound in this configuration.
        for admission in result.admissions:
            if not admission.admitted:
                assert all("registers" in v for v in admission.violations)

    def test_degradation_extends_capacity(self):
        # 896 registers: three 256-wide queries leave 128 free — enough
        # for a fourth only if it shrinks its sketches.
        deployment = build_deployment(linear(1), array_size=896)
        planner = AdmissionPlanner(deployment.switch("s0"),
                                   min_registers=32)
        requests = [(q(f"ad.d{i}"), SMALL) for i in range(8)]
        strict = planner.plan(requests, degrade=False)
        degraded = planner.plan(requests, degrade=True)
        assert len(degraded.admitted) > len(strict.admitted)
        assert degraded.degraded  # some queries shrank their sketches

    def test_degraded_params_still_install(self):
        deployment = build_deployment(linear(1), array_size=1024)
        planner = AdmissionPlanner(deployment.switch("s0"),
                                   min_registers=32)
        requests = [(q(f"ad.i{i}"), SMALL) for i in range(8)]
        result = planner.plan(requests, degrade=True)
        for admission in result.admissions:
            if admission.admitted:
                deployment.controller.install_query(
                    q(admission.qid), admission.params, path=["s0"]
                )

    def test_stage_bound_queries_not_degraded(self):
        deployment = build_deployment(linear(1), num_stages=3)
        planner = AdmissionPlanner(deployment.switch("s0"))
        result = planner.plan([(q("ad.s"), SMALL)], degrade=True)
        assert result.rejected == ["ad.s"]
        assert not result.degraded

    def test_composite_queries_planned_whole(self):
        deployment = build_deployment(linear(1), array_size=1 << 14)
        planner = AdmissionPlanner(deployment.switch("s0"))
        q6 = build_query("Q6", QueryThresholds())
        result = planner.plan([(q6, SMALL)])
        assert result.admitted == ["Q6"]
