"""Field registry tests."""

import pytest

from repro.core.fields import (
    Field,
    FieldRegistry,
    GLOBAL_FIELDS,
    full_mask,
    prefix_mask,
)


class TestMasks:
    def test_full_mask(self):
        assert full_mask(8) == 0xFF
        assert full_mask(32) == 0xFFFFFFFF

    def test_prefix_mask(self):
        assert prefix_mask(32, 24) == 0xFFFFFF00
        assert prefix_mask(32, 0) == 0
        assert prefix_mask(32, 32) == 0xFFFFFFFF

    def test_prefix_mask_bounds(self):
        with pytest.raises(ValueError):
            prefix_mask(32, 33)
        with pytest.raises(ValueError):
            prefix_mask(32, -1)


class TestField:
    def test_max_value(self):
        assert Field("x", 16).max_value == 0xFFFF

    def test_byte_width_rounds_up(self):
        assert Field("x", 8).byte_width == 1
        assert Field("x", 9).byte_width == 2

    def test_validate(self):
        field = Field("x", 8)
        assert field.validate(255) == 255
        with pytest.raises(ValueError):
            field.validate(256)
        with pytest.raises(TypeError):
            field.validate("nope")


class TestRegistry:
    def test_global_fields_present(self):
        for name in ("sip", "dip", "proto", "sport", "dport", "tcp_flags",
                     "len", "ttl", "dns_ancount"):
            assert name in GLOBAL_FIELDS

    def test_unknown_field_message(self):
        with pytest.raises(KeyError, match="known fields"):
            GLOBAL_FIELDS.get("nonexistent")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            FieldRegistry([Field("a", 8), Field("a", 8)])

    def test_total_bits(self):
        registry = FieldRegistry([Field("a", 8), Field("b", 16)])
        assert registry.total_bits == 24

    def test_pack_respects_registry_order(self):
        values = {"sip": 1, "dip": 2}
        masks = {"dip": full_mask(32), "sip": full_mask(32)}
        packed = GLOBAL_FIELDS.pack(values, masks)
        # sip comes first in registry order regardless of dict order.
        assert packed == (1).to_bytes(4, "big") + (2).to_bytes(4, "big")

    def test_pack_applies_masks(self):
        packed = GLOBAL_FIELDS.pack({"dip": 0x0A0000FF},
                                    {"dip": 0xFFFFFF00})
        assert packed == (0x0A000000).to_bytes(4, "big")

    def test_pack_skips_zero_masks(self):
        packed = GLOBAL_FIELDS.pack({"dip": 5}, {"dip": 0})
        assert packed == b""

    def test_equal_selection_equal_keys(self):
        a = GLOBAL_FIELDS.pack({"sip": 1, "dport": 80},
                               {"sip": full_mask(32), "dport": full_mask(16)})
        b = GLOBAL_FIELDS.pack({"dport": 80, "sip": 1},
                               {"dport": full_mask(16), "sip": full_mask(32)})
        assert a == b

    def test_selected_values(self):
        out = GLOBAL_FIELDS.selected_values(
            {"dip": 0x0A0000FF}, {"dip": 0xFFFFFF00}
        )
        assert out == {"dip": 0x0A000000}
