"""InstallResult op-specific fields and the legacy ``rules_installed``
alias deprecation."""

import warnings
from dataclasses import replace

import pytest

from repro.core.compiler import QueryParams
from repro.core.library import build_query
from repro.experiments.common import evaluation_thresholds
from repro.network.deployment import build_deployment
from repro.network.topology import linear

PARAMS = QueryParams(cm_depth=2, reduce_registers=1024)


def deploy():
    deployment = build_deployment(linear(3))
    result = deployment.controller.install_query(
        build_query("Q1", evaluation_thresholds()), PARAMS,
        path=["s0", "s1", "s2"],
    )
    return deployment, result


class TestInstallResultAlias:
    def test_install_alias_is_silent(self):
        _, result = deploy()
        assert result.op == "install"
        assert result.rules_staged > 0
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert result.rules_installed == result.rules_staged

    def test_remove_alias_warns_and_maps_to_removed(self):
        deployment, installed = deploy()
        result = deployment.controller.remove_query(installed.qid)
        assert result.op == "remove"
        assert result.rules_removed > 0
        assert result.rules_staged == 0
        with pytest.deprecated_call(match="rules_removed instead"):
            assert result.rules_installed == result.rules_removed

    def test_update_reports_both_directions(self):
        deployment, _ = deploy()
        result = deployment.controller.update_query(
            build_query(
                "Q1", replace(evaluation_thresholds(), new_tcp_conns=9)
            ),
            PARAMS, path=["s0", "s1", "s2"],
        )
        assert result.op == "update"
        assert result.rules_staged > 0
        assert result.rules_removed > 0
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert result.rules_installed == result.rules_staged
