"""Controller tests: install/remove/update, placement modes, timing."""

import pytest

from repro.core.compiler import QueryParams
from repro.core.controller import NewtonController
from repro.core.library import QueryThresholds, build_query
from repro.core.packet import Packet
from repro.core.query import Query
from repro.network.deployment import build_deployment
from repro.network.topology import fat_tree, linear

PARAMS = QueryParams(cm_depth=2, bf_hashes=2,
                     reduce_registers=128, distinct_registers=128)


def q(qid="ctl.q", threshold=3):
    return (
        Query(qid)
        .filter(proto=6, tcp_flags=2)
        .map("dip")
        .reduce("dip")
        .where(ge=threshold)
    )


class TestPathMode:
    def test_install_and_remove(self):
        dep = build_deployment(linear(1))
        result = dep.controller.install_query(q(), PARAMS, path=["s0"])
        assert result.rules_staged > 0
        assert result.delay_s > 0
        assert dep.switch("s0").rule_count == result.rules_staged
        removal = dep.controller.remove_query("ctl.q")
        assert dep.switch("s0").rule_count == 0
        assert removal.delay_s > 0

    def test_double_install_rejected(self):
        dep = build_deployment(linear(1))
        dep.controller.install_query(q(), PARAMS, path=["s0"])
        with pytest.raises(ValueError):
            dep.controller.install_query(q(), PARAMS, path=["s0"])

    def test_remove_unknown_rejected(self):
        dep = build_deployment(linear(1))
        with pytest.raises(KeyError):
            dep.controller.remove_query("ghost")

    def test_update_is_remove_plus_install(self):
        dep = build_deployment(linear(1))
        dep.controller.install_query(q(threshold=3), PARAMS, path=["s0"])
        result = dep.controller.update_query(q(threshold=9), PARAMS,
                                             path=["s0"])
        assert result.delay_s > 0
        assert "ctl.q" in dep.controller.installed

    def test_multi_switch_path_slices(self):
        dep = build_deployment(linear(3), num_stages=3, array_size=256)
        result = dep.controller.install_query(
            q(), PARAMS, path=["s0", "s1", "s2"], stages_per_switch=3
        )
        assert result.slices_per_sub["ctl.q"] >= 2
        assert dep.switch("s0").rule_count > 0
        assert dep.switch("s1").rule_count > 0

    def test_short_path_defers_remainder(self):
        dep = build_deployment(linear(1), num_stages=2, array_size=256)
        dep.controller.install_query(
            q(), PARAMS, path=["s0"], stages_per_switch=2
        )
        # Slices beyond the path are not installed anywhere.
        assert dep.controller.total_slices("ctl.q") > 1
        assert dep.controller.cpu_start_for("ctl.q", 1) < 4

    def test_rollback_on_failure(self):
        dep = build_deployment(linear(1), array_size=64)
        big = QueryParams(cm_depth=2, reduce_registers=4096)
        with pytest.raises(Exception):
            dep.controller.install_query(q(), big, path=["s0"])
        assert dep.switch("s0").rule_count == 0
        assert "ctl.q" not in dep.controller.installed

    def test_remove_reports_rules_removed(self):
        dep = build_deployment(linear(1))
        install = dep.controller.install_query(q(), PARAMS, path=["s0"])
        removal = dep.controller.remove_query("ctl.q")
        assert removal.rules_removed == install.rules_staged

    def test_update_reports_both_directions(self):
        dep = build_deployment(linear(1))
        dep.controller.install_query(q(threshold=3), PARAMS, path=["s0"])
        result = dep.controller.update_query(q(threshold=9), PARAMS,
                                             path=["s0"])
        assert result.rules_staged > 0
        assert result.rules_removed > 0

    def test_failed_update_leaves_query_installed(self):
        """Regression: update_query used to run remove-then-install, so a
        failing install left the query gone entirely.  Now the swap is one
        transaction — a rejected update must leave the old version
        serving untouched."""
        dep = build_deployment(linear(1), array_size=1024)
        tight = QueryParams(cm_depth=2, reduce_registers=768)
        dep.controller.install_query(q(threshold=3), tight, path=["s0"])
        rules_before = dep.switch("s0").rule_count
        with pytest.raises(Exception):
            dep.controller.update_query(q(threshold=9), tight, path=["s0"])
        assert "ctl.q" in dep.controller.installed
        assert dep.switch("s0").rule_count == rules_before
        # The surviving version still processes traffic.
        reports = []
        for i in range(4):
            res = dep.switch("s0").process(
                Packet(sip=i + 1, dip=9, proto=6, tcp_flags=2, ts=0.0),
                snapshot=None,
            )
            reports.extend(res.reports)
        assert len(reports) == 1

    def test_unknown_switch_rejected(self):
        dep = build_deployment(linear(1))
        with pytest.raises(KeyError):
            dep.controller.install_query(q(), PARAMS, path=["s9"])

    def test_needs_exactly_one_mode(self):
        dep = build_deployment(linear(1))
        with pytest.raises(ValueError):
            dep.controller.install_query(q(), PARAMS)
        with pytest.raises(ValueError):
            dep.controller.install_query(
                q(), PARAMS, path=["s0"], topology=dep.topology
            )


class TestNetworkMode:
    def test_placement_covers_edges(self):
        topo = fat_tree(4)
        dep = build_deployment(topo, num_stages=4, array_size=256)
        result = dep.controller.install_query(
            q(), PARAMS, topology=topo, stages_per_switch=4
        )
        placement = result.placements["ctl.q"]
        for edge in topo.edge_switches:
            assert 0 in placement.slices_at(edge)

    def test_composite_installs_all_subs(self):
        topo = linear(2)
        dep = build_deployment(topo, num_stages=12, array_size=4096)
        q7 = build_query("Q7", QueryThresholds(completed_conns=2))
        result = dep.controller.install_query(
            q7, QueryParams(cm_depth=2, reduce_registers=512),
            topology=topo,
        )
        assert set(result.slices_per_sub) == {"Q7.syn", "Q7.fin"}
        removal = dep.controller.remove_query("Q7")
        assert dep.controller.rule_count() == 0
        assert removal.rules_removed > 0

    def test_advance_window_touches_all_switches(self):
        topo = linear(3)
        dep = build_deployment(topo)
        dep.controller.advance_window()
        assert all(
            s.pipeline.epoch == 1 for s in dep.switches.values()
        )


class TestTiming:
    def test_delay_scales_with_rules(self):
        dep = build_deployment(linear(1), array_size=1 << 14)
        small = dep.controller.install_query(
            Query("small").map("dip").reduce("dip").where(ge=2),
            PARAMS, path=["s0"],
        )
        big = dep.controller.install_query(
            build_query("Q4", QueryThresholds()),
            QueryParams(cm_depth=2, bf_hashes=3, reduce_registers=64,
                        distinct_registers=64),
            path=["s0"],
        )
        assert big.delay_s > small.delay_s

    def test_channel_log_records_operations(self):
        dep = build_deployment(linear(1))
        dep.controller.install_query(q(), PARAMS, path=["s0"])
        dep.controller.remove_query("ctl.q")
        ops = [t.operation for t in dep.controller.channel.log]
        assert "install" in ops and "remove" in ops
