"""Fluent query API tests."""

import pytest

from repro.core.ast import CmpOp, Distinct, Filter, Map, Reduce, ResultFilter
from repro.core.packet import Proto, TcpFlags
from repro.core.query import CompositeQuery, Query, flatten


class TestQueryBuilder:
    def test_chain_builds_primitives(self):
        q = (
            Query("t")
            .filter(proto=Proto.TCP)
            .map("dip")
            .distinct("dip", "sip")
            .reduce("dip")
            .where(ge=10)
        )
        types = [type(p) for p in q.primitives]
        assert types == [Filter, Map, Distinct, Reduce, ResultFilter]

    def test_filter_kwargs_sorted_deterministically(self):
        a = Query("a").filter(proto=6, dport=22).primitives[0]
        b = Query("b").filter(dport=22, proto=6).primitives[0]
        assert a.predicates == b.predicates

    def test_map_accepts_masked_tuples(self):
        q = Query("t").map(("dip", 0xFFFFFF00))
        assert q.primitives[0].keys[0].effective_mask == 0xFFFFFF00

    def test_where_variants(self):
        assert Query("t").reduce("dip").where(ge=5).final_threshold.op is CmpOp.GE
        assert Query("t").reduce("dip").where(gt=5).final_threshold.op is CmpOp.GT
        assert Query("t").reduce("dip").where(eq=5).final_threshold.op is CmpOp.EQ

    def test_where_rejects_multiple_kwargs(self):
        with pytest.raises(ValueError):
            Query("t").reduce("dip").where(ge=5, gt=6)

    def test_where_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            Query("t").reduce("dip").where(le=5)

    def test_empty_qid_rejected(self):
        with pytest.raises(ValueError):
            Query("")

    def test_describe(self):
        text = Query("t").filter(proto=6).map("dip").describe()
        assert "filter" in text and "map(dip)" in text


class TestValidation:
    def test_empty_query_invalid(self):
        with pytest.raises(ValueError):
            Query("t").validate()

    def test_threshold_without_stateful_invalid(self):
        q = Query("t").map("dip")
        q.primitives.append(ResultFilter(CmpOp.GE, 5))
        with pytest.raises(ValueError):
            q.validate()

    def test_valid_chain_passes(self):
        Query("t").distinct("dip").map("dip").reduce("dip").where(
            ge=2
        ).validate()


class TestComposite:
    def _composite(self):
        a = Query("c.a").filter(proto=6).map("dip").reduce("dip").where(ge=2)
        b = Query("c.b").filter(proto=17).map("dip").reduce("dip").where(ge=2)
        return CompositeQuery(
            qid="c", description="", subqueries=(a, b),
            join=lambda results: [],
        )

    def test_flatten(self):
        comp = self._composite()
        assert [q.qid for q in flatten(comp)] == ["c.a", "c.b"]
        single = Query("s").map("dip")
        assert list(flatten(single)) == [single]

    def test_primitive_counts(self):
        comp = self._composite()
        assert comp.dataplane_primitives == 8
        assert comp.num_primitives == 8 + comp.cpu_primitives

    def test_duplicate_sub_ids_rejected(self):
        a = Query("dup").map("dip")
        with pytest.raises(ValueError):
            CompositeQuery(qid="c", description="", subqueries=(a, a),
                           join=lambda r: [])

    def test_empty_subqueries_rejected(self):
        with pytest.raises(ValueError):
            CompositeQuery(qid="c", description="", subqueries=(),
                           join=lambda r: [])

    def test_validate_delegates(self):
        broken = Query("c.x")
        comp = CompositeQuery(qid="c", description="", subqueries=(broken,),
                              join=lambda r: [])
        with pytest.raises(ValueError):
            comp.validate()
