"""Sonata baseline tests: reboots, timelines, table estimates."""

import pytest

from repro.baselines.sonata import (
    SWITCH_P4_DEFAULT_ENTRIES,
    SonataSystem,
    interruption_delay,
    sonata_compile,
    throughput_timeline,
)
from repro.core.compiler import QueryParams
from repro.core.library import QueryThresholds, build_query


class TestInterruption:
    def test_switch_p4_scale_outage(self):
        """Figure 10(a): ~7.5 s outage at switch.p4 defaults."""
        delay = interruption_delay(SWITCH_P4_DEFAULT_ENTRIES)
        assert delay == pytest.approx(7.5, abs=0.2)

    def test_linear_growth(self):
        """Figure 10(b): linear, ~half a minute at 60K entries."""
        d10 = interruption_delay(10_000)
        d60 = interruption_delay(60_000)
        assert d60 > d10
        slope1 = (interruption_delay(20_000) - d10) / 10_000
        slope2 = (d60 - interruption_delay(50_000)) / 10_000
        assert slope1 == pytest.approx(slope2)
        assert 25 <= d60 <= 35

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            interruption_delay(-1)


class TestTimeline:
    def test_outage_window_zero_throughput(self):
        series = throughput_timeline(
            update_at_s=5.0, entries_to_restore=SWITCH_P4_DEFAULT_ENTRIES,
            duration_s=20.0, line_rate_gbps=40.0, step_s=0.5,
        )
        during = [tp for t, tp in series if 5.0 <= t < 12.0]
        before = [tp for t, tp in series if t < 5.0]
        after = [tp for t, tp in series if t > 13.0]
        assert all(tp == 0.0 for tp in during)
        assert all(tp == 40.0 for tp in before)
        assert all(tp == 40.0 for tp in after)

    def test_outage_duration_matches_delay(self):
        series = throughput_timeline(2.0, 10_000, 20.0, step_s=0.1)
        down = [t for t, tp in series if tp == 0.0]
        assert max(down) - min(down) == pytest.approx(
            interruption_delay(10_000), abs=0.2
        )


class TestCompilationEstimate:
    def test_tables_grow_with_primitives(self):
        params = QueryParams()
        q1 = sonata_compile(build_query("Q1"), params)
        q4 = sonata_compile(build_query("Q4"), params)
        assert q4.tables > q1.tables

    def test_stages_equal_tables(self):
        comp = sonata_compile(build_query("Q3"), QueryParams())
        assert comp.stages == comp.tables

    def test_composites_sum_subqueries(self):
        params = QueryParams()
        q6 = sonata_compile(build_query("Q6"), params)
        subs = build_query("Q6").subqueries
        assert q6.tables == sum(
            sonata_compile(sub, params).tables for sub in subs
        )

    def test_newton_opt_beats_sonata_stages(self):
        """The §6.4 claim: optimised Newton uses fewer stages than Sonata."""
        from repro.core.compiler import Optimizations
        from repro.experiments.common import query_footprint

        params = QueryParams()
        for name in ("Q1", "Q2", "Q3", "Q4", "Q5"):
            query = build_query(name)
            sonata = sonata_compile(query, params)
            _, newton_stages = query_footprint(query, params,
                                               Optimizations.all())
            assert newton_stages < sonata.stages, name


class TestSonataSystem:
    def test_export_matches_newton(self):
        """Sonata and Newton share accurate exportation (Figure 12)."""
        from repro.baselines.newton import NewtonSystem
        from repro.traffic.generators import caida_like, syn_flood
        from repro.traffic.traces import merge_traces

        trace = merge_traces([
            caida_like(1500, duration_s=0.2, seed=4),
            syn_flood(n_packets=150, duration_s=0.2),
        ])
        th = QueryThresholds(new_tcp_conns=25)
        queries = [build_query("Q1", th)]
        params = QueryParams(cm_depth=2, reduce_registers=2048)
        newton = NewtonSystem(queries, params=params).process_trace(trace)
        sonata = SonataSystem(queries, params=params).process_trace(trace)
        assert sonata.messages == newton.messages
        assert sonata.system == "Sonata"
