"""Baseline export-discipline tests."""

import pytest

from repro.baselines.flowradar import FlowRadar
from repro.baselines.newton import NewtonSystem
from repro.baselines.scream import Scream
from repro.baselines.starflow import StarFlow
from repro.baselines.turboflow import TurboFlow
from repro.core.compiler import QueryParams
from repro.core.packet import Packet
from repro.core.query import Query
from repro.traffic.generators import caida_like
from repro.traffic.traces import Trace


def small_trace(n=2000, seed=3):
    return caida_like(n, duration_s=0.3, seed=seed)


class TestTurboFlow:
    def test_messages_track_flows_not_packets(self):
        trace = small_trace()
        result = TurboFlow(table_slots=1 << 14).process_trace(trace)
        flows = trace.stats().flows
        # Every flow exports at least once per window it appears in, plus
        # collision churn — far fewer messages than packets.
        assert flows <= result.messages < len(trace)

    def test_small_table_evicts_more(self):
        trace = small_trace()
        small = TurboFlow(table_slots=64).process_trace(trace)
        large = TurboFlow(table_slots=1 << 14).process_trace(trace)
        assert small.messages > large.messages
        assert small.details["evictions"] > large.details["evictions"]

    def test_empty_trace(self):
        result = TurboFlow().process_trace(Trace([]))
        assert result.messages == 0 and result.overhead_ratio == 0.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TurboFlow(table_slots=0)


class TestStarFlow:
    def test_messages_scale_with_packets(self):
        a = StarFlow(gpv_capacity=8).process_trace(small_trace(1500))
        b = StarFlow(gpv_capacity=8).process_trace(small_trace(4500))
        assert b.messages > 2 * a.messages

    def test_bigger_gpv_fewer_messages(self):
        trace = small_trace()
        small = StarFlow(gpv_capacity=2).process_trace(trace)
        large = StarFlow(gpv_capacity=32).process_trace(trace)
        assert small.messages > large.messages

    def test_all_packets_eventually_exported(self):
        # One steady flow: ceil(n / gpv) exports.
        packets = [Packet(sip=1, dip=2, proto=6, ts=i * 0.001)
                   for i in range(100)]
        result = StarFlow(gpv_capacity=10).process_trace(Trace(packets))
        assert result.messages == 10


class TestFlowRadar:
    def test_constant_per_window(self):
        system = FlowRadar(cells=1024, cells_per_message=8)
        sparse = system.process_trace(small_trace(1000))
        dense = system.process_trace(small_trace(6000))
        assert sparse.details["windows"] == dense.details["windows"]
        assert sparse.messages == dense.messages

    def test_messages_per_window(self):
        system = FlowRadar(cells=1024, cells_per_message=8)
        assert system.messages_per_window == 128

    def test_empty_trace(self):
        assert FlowRadar().process_trace(Trace([])).messages == 0


class TestScream:
    def test_export_is_structure_sized(self):
        system = Scream(rows=3, width=1024, counters_per_message=8)
        result = system.process_trace(small_trace())
        windows = result.details["windows"]
        assert result.messages == windows * system.messages_per_window


class TestNewtonSystem:
    def _query(self):
        return (
            Query("b.q1")
            .filter(proto=6, tcp_flags=2)
            .map("dip")
            .reduce("dip")
            .where(ge=5)
        )

    def test_reports_only_matching_intent(self):
        from repro.traffic.generators import syn_flood
        from repro.traffic.traces import merge_traces

        trace = merge_traces([
            small_trace(1500),
            syn_flood(n_packets=300, duration_s=0.3),
        ])
        params = QueryParams(cm_depth=2, reduce_registers=2048)
        result = NewtonSystem([self._query()], params=params).process_trace(
            trace
        )
        assert 0 < result.messages < 50
        assert result.overhead_ratio < 0.03

    def test_orders_of_magnitude_below_generic_exporters(self):
        from repro.traffic.generators import syn_flood
        from repro.traffic.traces import merge_traces

        trace = merge_traces([
            small_trace(2500),
            syn_flood(n_packets=200, duration_s=0.3),
        ])
        params = QueryParams(cm_depth=2, reduce_registers=2048)
        newton = NewtonSystem([self._query()], params=params).process_trace(
            trace
        )
        star = StarFlow().process_trace(trace)
        turbo = TurboFlow().process_trace(trace)
        assert newton.overhead_ratio * 10 < star.overhead_ratio
        assert newton.overhead_ratio * 10 < turbo.overhead_ratio
