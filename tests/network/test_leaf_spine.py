"""Leaf-spine topology construction and routing."""

import pytest

from repro.core.packet import Packet
from repro.network.routing import Router
from repro.network.topology import leaf_spine


def _packet(src_host, dst_host, sport=1234, dport=80):
    return Packet(
        ts=0.0, sip=0x0A000001, dip=0x0A000002, sport=sport, dport=dport,
        proto=6, src_host=src_host, dst_host=dst_host,
    )


class TestLeafSpineStructure:
    def test_counts(self):
        topo = leaf_spine(4, 6, hosts_per_leaf=2)
        assert topo.num_switches == 10
        # Full bipartite spine-leaf mesh.
        assert topo.num_links == 4 * 6
        assert len(topo.hosts) == 12
        assert topo.name == "leaf-spine-4x6"

    def test_hosts_attach_to_leaves_only(self):
        topo = leaf_spine(2, 3, hosts_per_leaf=2)
        assert set(topo.edge_switches) == {"lf0", "lf1", "lf2"}
        assert topo.attachment("hlf1n0") == "lf1"
        assert topo.hosts_at("lf2") == ["hlf2n0", "hlf2n1"]

    def test_every_leaf_sees_every_spine(self):
        topo = leaf_spine(3, 4)
        for j in range(4):
            assert set(topo.neighbors(f"lf{j}")) == {"sp0", "sp1", "sp2"}
        for i in range(3):
            assert set(topo.neighbors(f"sp{i}")) == {
                "lf0", "lf1", "lf2", "lf3"
            }

    @pytest.mark.parametrize("spines,leaves,hosts", [
        (0, 3, 1), (3, 0, 1), (2, 2, 0),
    ])
    def test_degenerate_shapes_rejected(self, spines, leaves, hosts):
        with pytest.raises(ValueError):
            leaf_spine(spines, leaves, hosts_per_leaf=hosts)


class TestLeafSpineRouting:
    def test_cross_leaf_path_is_three_hops_via_one_spine(self):
        topo = leaf_spine(4, 4)
        router = Router(topo)
        path = router.path_for(_packet("hlf0n0", "hlf3n0"))
        assert len(path) == 3
        assert path[0] == "lf0" and path[2] == "lf3"
        assert path[1].startswith("sp")

    def test_same_leaf_traffic_stays_on_the_leaf(self):
        topo = leaf_spine(4, 2, hosts_per_leaf=2)
        router = Router(topo)
        assert router.path_for(_packet("hlf1n0", "hlf1n1")) == ["lf1"]

    def test_ecmp_offers_every_spine(self):
        topo = leaf_spine(3, 2)
        router = Router(topo)
        paths = router.switch_paths("lf0", "lf1")
        assert sorted(p[1] for p in paths) == ["sp0", "sp1", "sp2"]

    def test_ecmp_choice_is_flow_stable(self):
        topo = leaf_spine(4, 4)
        router = Router(topo)
        first = router.path_for(_packet("hlf0n0", "hlf2n0", sport=5555))
        for _ in range(10):
            assert router.path_for(
                _packet("hlf0n0", "hlf2n0", sport=5555)
            ) == first

    def test_spine_failure_reroutes_and_restores(self):
        topo = leaf_spine(2, 2)
        router = Router(topo)
        packet = _packet("hlf0n0", "hlf1n0")
        original = router.path_for(packet)
        spine = original[1]
        router.fail_link("lf0", spine)
        rerouted = router.path_for(packet)
        assert rerouted[1] != spine
        assert len(rerouted) == 3
        router.restore_link("lf0", spine)
        assert router.path_for(packet) == original
