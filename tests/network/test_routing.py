"""Routing and failure tests."""

import pytest

from repro.core.packet import Packet
from repro.network.routing import Router, RoutingError
from repro.network.topology import fat_tree, linear


def pkt(src_host, dst_host, sport=1000):
    return Packet(sip=1, dip=2, proto=6, sport=sport, dport=80,
                  src_host=src_host, dst_host=dst_host)


class TestShortestPath:
    def test_chain_path(self):
        router = Router(linear(3))
        path = router.path_for(pkt("h_src0", "h_dst0"))
        assert path == ["s0", "s1", "s2"]

    def test_same_switch(self):
        topo = linear(1)
        router = Router(topo)
        assert router.path_for(pkt("h_src0", "h_dst0")) == ["s0"]

    def test_hop_count(self):
        router = Router(linear(4))
        assert router.hop_count("h_src0", "h_dst0") == 4

    def test_missing_host_info(self):
        router = Router(linear(2))
        with pytest.raises(RoutingError):
            router.path_for(Packet())


class TestEcmp:
    def test_path_is_flow_stable(self):
        topo = fat_tree(4)
        router = Router(topo)
        hosts = sorted(topo.hosts)
        a, b = hosts[0], hosts[-1]
        p1 = router.path_for(pkt(a, b, sport=1))
        p2 = router.path_for(pkt(a, b, sport=1))
        assert p1 == p2

    def test_different_flows_can_diverge(self):
        topo = fat_tree(4)
        router = Router(topo)
        hosts = sorted(topo.hosts)
        a, b = hosts[0], hosts[-1]
        paths = {tuple(router.path_for(pkt(a, b, sport=s)))
                 for s in range(64)}
        assert len(paths) > 1  # ECMP actually spreads

    def test_ecmp_disabled_is_deterministic(self):
        topo = fat_tree(4)
        router = Router(topo, ecmp=False)
        hosts = sorted(topo.hosts)
        a, b = hosts[0], hosts[-1]
        paths = {tuple(router.path_for(pkt(a, b, sport=s)))
                 for s in range(16)}
        assert len(paths) == 1


class TestFailures:
    def test_reroute_on_failure(self):
        topo = fat_tree(4)
        router = Router(topo, ecmp=False)
        hosts = sorted(topo.hosts)
        a, b = hosts[0], hosts[-1]
        before = router.path_for(pkt(a, b))
        router.fail_link(before[0], before[1])
        after = router.path_for(pkt(a, b))
        assert after != before
        assert (before[0], before[1]) not in zip(after, after[1:])

    def test_restore_recovers_path(self):
        topo = fat_tree(4)
        router = Router(topo, ecmp=False)
        hosts = sorted(topo.hosts)
        a, b = hosts[0], hosts[-1]
        before = router.path_for(pkt(a, b))
        router.fail_link(before[0], before[1])
        router.restore_link(before[0], before[1])
        assert router.path_for(pkt(a, b)) == before

    def test_partition_raises(self):
        router = Router(linear(2))
        router.fail_link("s0", "s1")
        with pytest.raises(RoutingError):
            router.path_for(pkt("h_src0", "h_dst0"))

    def test_fail_unknown_link(self):
        with pytest.raises(RoutingError):
            Router(linear(2)).fail_link("s0", "s5")

    def test_failed_links_tracked(self):
        router = Router(linear(3))
        router.fail_link("s0", "s1")
        assert len(router.failed_links) == 1
