"""Result snapshot protocol tests."""

import pytest

from repro.dataplane.phv import PhvContext
from repro.network.snapshot import (
    SNAPSHOT_VALUE_MAX,
    SP_HEADER_BYTES,
    SnapshotEntry,
    SnapshotHeader,
    decode_entry,
    encode_entry,
)


def entry(cursor=1, total=3, state0=None, state1=None, global_result=None,
          stopped=False):
    ctx = PhvContext()
    ctx.set(0).state_result = state0
    ctx.set(1).state_result = state1
    ctx.global_result = global_result
    ctx.stopped = stopped
    return SnapshotEntry(cursor=cursor, total_slices=total, ctx=ctx)


class TestWireFormat:
    def test_fits_reserved_budget(self):
        wire = encode_entry(entry(state0=5, state1=6, global_result=7))
        assert len(wire) <= SP_HEADER_BYTES

    def test_round_trip(self):
        original = entry(cursor=2, state0=100, state1=200, global_result=50)
        decoded = decode_entry(encode_entry(original), total_slices=3)
        assert decoded.cursor == 2
        assert decoded.ctx.set(0).state_result == 100
        assert decoded.ctx.set(1).state_result == 200
        assert decoded.ctx.global_result == 50
        assert not decoded.ctx.stopped

    def test_none_values_round_trip(self):
        decoded = decode_entry(encode_entry(entry()), total_slices=3)
        assert decoded.ctx.set(0).state_result is None
        assert decoded.ctx.global_result is None

    def test_stopped_flag(self):
        decoded = decode_entry(encode_entry(entry(stopped=True)), 3)
        assert decoded.ctx.stopped

    def test_saturation(self):
        big = entry(state0=SNAPSHOT_VALUE_MAX + 100)
        decoded = decode_entry(encode_entry(big), 3)
        assert decoded.ctx.set(0).state_result == SNAPSHOT_VALUE_MAX

    def test_cursor_limit(self):
        with pytest.raises(ValueError):
            encode_entry(entry(cursor=16))

    def test_decode_length_checked(self):
        with pytest.raises(ValueError):
            decode_entry(b"short", 3)


class TestHeader:
    def test_put_get_pop(self):
        header = SnapshotHeader()
        header.put("q1", entry())
        assert "q1" in header
        assert header.get("q1").cursor == 1
        assert header.pop("q1") is not None
        assert header.pop("q1") is None

    def test_wire_bytes_scale_with_queries(self):
        header = SnapshotHeader()
        assert header.wire_bytes == 0
        header.put("q1", entry())
        header.put("q2", entry())
        assert header.wire_bytes == 2 * SP_HEADER_BYTES

    def test_completion(self):
        done = entry(cursor=3, total=3)
        assert done.complete
        assert not entry(cursor=2, total=3).complete

    def test_copy_is_deep(self):
        header = SnapshotHeader()
        header.put("q1", entry(global_result=5))
        clone = header.copy()
        clone.get("q1").ctx.global_result = 99
        assert header.get("q1").ctx.global_result == 5

    def test_items_snapshot_safe_to_mutate(self):
        header = SnapshotHeader()
        header.put("q1", entry())
        header.put("q2", entry())
        for qid, _ in header.items():
            header.pop(qid)  # must not raise
        assert len(header) == 0
