"""Network simulator tests."""

import pytest

from repro.core.compiler import QueryParams
from repro.core.packet import Packet
from repro.core.query import Query
from repro.network.deployment import build_deployment
from repro.network.topology import linear
from repro.traffic.traces import Trace

PARAMS = QueryParams(cm_depth=2, reduce_registers=128,
                     distinct_registers=128)


def q(threshold=3):
    return (
        Query("sim.q")
        .filter(proto=6, tcp_flags=2)
        .map("dip")
        .reduce("dip")
        .where(ge=threshold)
    )


def syn_trace(n, dip=9, start=0.0):
    return Trace([
        Packet(sip=i + 1, dip=dip, proto=6, tcp_flags=2,
               ts=start + i * 0.001, src_host="h_src0", dst_host="h_dst0")
        for i in range(n)
    ])


class TestForwarding:
    def test_delivery_counts(self):
        dep = build_deployment(linear(2))
        stats = dep.simulator.run(syn_trace(10))
        assert stats.packets == 10
        assert stats.delivered == 10
        assert stats.dropped == 0

    def test_reports_reach_analyzer(self):
        dep = build_deployment(linear(1), array_size=256)
        dep.controller.install_query(q(), PARAMS, path=["s0"])
        stats = dep.simulator.run(syn_trace(5))
        assert stats.total_reports == 1
        assert dep.analyzer.results("sim.q")[0] == {(9,): 3}

    def test_unsorted_trace_rejected(self):
        dep = build_deployment(linear(1))
        packets = [
            Packet(ts=0.5, src_host="h_src0", dst_host="h_dst0"),
            Packet(ts=0.1, src_host="h_src0", dst_host="h_dst0"),
        ]
        with pytest.raises(ValueError):
            dep.simulator.run(packets)

    def test_missing_switch_object_rejected(self):
        from repro.network.simulator import NetworkSimulator

        topo = linear(2)
        with pytest.raises(ValueError):
            NetworkSimulator(topo, switches={})


class TestWindows:
    def test_epoch_rollover_resets_counts(self):
        dep = build_deployment(linear(1), array_size=256)
        dep.controller.install_query(q(threshold=3), PARAMS, path=["s0"])
        first = syn_trace(3)                      # crossing in window 0
        second = syn_trace(3, start=0.15)         # crossing again in window 1
        from repro.traffic.traces import merge_traces

        stats = dep.simulator.run(merge_traces([first, second]))
        assert stats.total_reports == 2
        results = dep.analyzer.results("sim.q")
        assert set(results) == {0, 1}

    def test_epochs_counted(self):
        dep = build_deployment(linear(1))
        stats = dep.simulator.run(syn_trace(2, start=0.25))
        assert stats.epochs >= 3


class TestSpOverhead:
    def test_single_switch_has_no_sp(self):
        dep = build_deployment(linear(1), array_size=256)
        dep.controller.install_query(q(), PARAMS, path=["s0"])
        stats = dep.simulator.run(syn_trace(5))
        assert stats.sp_bytes == 0

    def test_cqe_overhead_below_one_percent(self):
        dep = build_deployment(linear(3), num_stages=3, array_size=256)
        dep.controller.install_query(
            q(), PARAMS, path=["s0", "s1", "s2"], stages_per_switch=3
        )
        trace = Trace([
            Packet(sip=i, dip=9, proto=6, tcp_flags=2, len=1500,
                   ts=i * 0.001, src_host="h_src0", dst_host="h_dst0")
            for i in range(20)
        ])
        stats = dep.simulator.run(trace)
        assert 0 < stats.sp_overhead_ratio < 0.01  # paper: <1% at MTU

    def test_cqe_reports_once(self):
        dep = build_deployment(linear(3), num_stages=3, array_size=256)
        dep.controller.install_query(
            q(threshold=2), PARAMS, path=["s0", "s1", "s2"],
            stages_per_switch=3,
        )
        stats = dep.simulator.run(syn_trace(4))
        assert stats.total_reports == 1
        # The report came from the switch hosting the final slice.
        assert list(stats.reports_by_switch) == ["s1"] or list(
            stats.reports_by_switch
        ) == ["s2"]


class TestStats:
    def test_reports_by_switch_is_a_counter(self):
        from collections import Counter

        dep = build_deployment(linear(1), array_size=256)
        dep.controller.install_query(q(), PARAMS, path=["s0"])
        stats = dep.simulator.run(syn_trace(5))
        assert isinstance(stats.reports_by_switch, Counter)
        assert stats.reports_by_switch["s0"] == 1
        # Missing switches read as zero, Counter-style.
        assert stats.reports_by_switch["s999"] == 0

    def test_reports_total_alias(self):
        dep = build_deployment(linear(1), array_size=256)
        dep.controller.install_query(q(), PARAMS, path=["s0"])
        stats = dep.simulator.run(syn_trace(5))
        assert stats.reports_total == stats.total_reports == 1
        assert stats.monitoring_messages == stats.reports_total + stats.deferred


class TestStaleDeferred:
    def test_removed_query_mid_window_is_dropped_not_crashed(self):
        """Regression: a snapshot entry whose query was removed from the
        controller's registry while still in flight used to raise
        ``KeyError`` from ``cpu_start_for``; it must be dropped and
        accounted instead."""
        dep = build_deployment(linear(1), num_stages=3, array_size=256)
        dep.controller.install_query(
            q(threshold=3), PARAMS, path=["s0"], stages_per_switch=3
        )
        assert dep.controller.total_slices("sim.q") >= 2
        # Simulate the race: the registry entry disappears while switch
        # rules (and therefore in-flight snapshot entries) remain.
        del dep.controller._sub_owner["sim.q"]
        stats = dep.simulator.run(syn_trace(5))
        assert stats.stale_deferred == 5
        assert stats.deferred == 0

    def test_no_stale_entries_on_healthy_run(self):
        dep = build_deployment(linear(1), num_stages=3, array_size=256)
        dep.controller.install_query(
            q(threshold=3), PARAMS, path=["s0"], stages_per_switch=3
        )
        stats = dep.simulator.run(syn_trace(5))
        assert stats.stale_deferred == 0
        assert stats.deferred > 0


class TestDeferral:
    def test_short_path_defers_to_analyzer(self):
        # Query needs 2+ switches, path has 1: remainder runs on CPU.
        dep = build_deployment(linear(1), num_stages=3, array_size=256)
        dep.controller.install_query(
            q(threshold=3), PARAMS, path=["s0"], stages_per_switch=3
        )
        assert dep.controller.total_slices("sim.q") >= 2
        stats = dep.simulator.run(syn_trace(5))
        assert stats.deferred > 0
        # The analyzer completed the query exactly.
        assert dep.analyzer.results("sim.q")[0] == {(9,): 5}

    def test_dropped_on_switch_down(self):
        dep = build_deployment(linear(2))
        dep.switches["s1"].reboot(at=0.0, entries_to_restore=10_000)
        stats = dep.simulator.run(syn_trace(5))
        assert stats.dropped == 5
        assert stats.delivered == 0
