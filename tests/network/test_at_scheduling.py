"""``NetworkSimulator.at`` scheduling semantics."""

import pytest

from repro.core.packet import Packet
from repro.network.deployment import build_deployment
from repro.network.topology import linear
from repro.traffic.traces import Trace


def make_trace(n=20, dt=0.01):
    return Trace(
        [Packet(sip=i, dip=99, ts=i * dt, src_host="h_src0",
                dst_host="h_dst0") for i in range(n)],
        assume_sorted=True,
    )


@pytest.mark.parametrize("engine", ["scalar", "vector"])
class TestAtScheduling:
    def test_callbacks_fire_in_timestamp_order(self, engine):
        deployment = build_deployment(linear(2), engine=engine)
        fired = []
        deployment.simulator.at(0.15, lambda: fired.append("late"))
        deployment.simulator.at(0.05, lambda: fired.append("early"))
        deployment.simulator.run(make_trace())
        assert fired == ["early", "late"]

    def test_past_time_rejected_mid_run(self, engine):
        """Once the trace has advanced, scheduling behind it raises: the
        moment was already executed, so the callback could only fire
        late (and at a batch-dependent point under the vector engine)."""
        deployment = build_deployment(linear(2), engine=engine)

        def rewind():
            with pytest.raises(ValueError, match="already advanced"):
                deployment.simulator.at(0.02, lambda: None)
            # at-or-after the current time is still fine
            deployment.simulator.at(0.1, lambda: None)

        deployment.simulator.at(0.1, rewind)
        deployment.simulator.run(make_trace())

    def test_past_time_rejected_before_second_run(self, engine):
        deployment = build_deployment(linear(2), engine=engine)
        deployment.simulator.run(make_trace())
        with pytest.raises(ValueError, match="already advanced"):
            deployment.simulator.at(0.0, lambda: None)

    def test_schedule_at_zero_before_any_run_ok(self, engine):
        deployment = build_deployment(linear(2), engine=engine)
        fired = []
        deployment.simulator.at(0.0, lambda: fired.append(True))
        deployment.simulator.run(make_trace())
        assert fired == [True]
