"""Topology construction tests."""

import pytest

from repro.network.topology import (
    CALIFORNIA_SITES,
    Topology,
    fat_tree,
    isp_backbone,
    linear,
)


class TestLinear:
    def test_chain_structure(self):
        topo = linear(4)
        assert topo.num_switches == 4
        assert topo.num_links == 3
        assert topo.neighbors("s1") == ["s0", "s2"] or set(
            topo.neighbors("s1")
        ) == {"s0", "s2"}

    def test_hosts_at_ends(self):
        topo = linear(3, hosts_per_end=2)
        assert set(topo.edge_switches) == {"s0", "s2"}
        assert len(topo.hosts) == 4
        assert topo.attachment("h_src0") == "s0"

    def test_single_switch(self):
        topo = linear(1)
        assert topo.num_switches == 1
        assert topo.edge_switches == ["s0"]

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            linear(0)


class TestFatTree:
    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_switch_count(self, k):
        # Standard fat-tree: 5k^2/4 switches.
        topo = fat_tree(k)
        assert topo.num_switches == 5 * k * k // 4

    def test_edge_degree(self):
        topo = fat_tree(4)
        # Each edge switch connects to k/2 aggs.
        assert len(topo.neighbors("p0e0")) == 2

    def test_core_degree(self):
        topo = fat_tree(4)
        # Each core connects to one agg per pod.
        assert len(topo.neighbors("c0")) == 4

    def test_all_edges_have_hosts(self):
        topo = fat_tree(4, hosts_per_edge=1)
        assert len(topo.edge_switches) == 8  # k pods * k/2 edges

    def test_connected(self):
        import networkx as nx

        assert nx.is_connected(fat_tree(4).graph)

    def test_odd_arity_rejected(self):
        with pytest.raises(ValueError):
            fat_tree(3)


class TestIspBackbone:
    def test_shape(self):
        topo = isp_backbone()
        assert 20 <= topo.num_switches <= 30
        assert topo.num_links >= topo.num_switches  # meshy, not a tree

    def test_connected(self):
        import networkx as nx

        assert nx.is_connected(isp_backbone().graph)

    def test_california_sites_present(self):
        topo = isp_backbone()
        for city in CALIFORNIA_SITES:
            assert city in topo.graph

    def test_every_city_has_host(self):
        topo = isp_backbone()
        assert len(topo.edge_switches) == topo.num_switches


class TestTopologyApi:
    def test_unknown_host(self):
        with pytest.raises(KeyError):
            linear(2).attachment("ghost")

    def test_host_on_unknown_switch_rejected(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_node("a")
        with pytest.raises(ValueError):
            Topology(graph, {"h": "b"})

    def test_hosts_at(self):
        topo = linear(2, hosts_per_end=2)
        assert topo.hosts_at("s0") == ["h_src0", "h_src1"]

    def test_neighbor_map_complete(self):
        topo = fat_tree(4)
        assert set(topo.neighbor_map()) == set(topo.switches())
