"""Diagnostic / report mechanics: rendering, ordering, JSON, suppression."""

import json

from repro.verify import (
    Severity,
    VerificationError,
    VerificationReport,
    VerifierConfig,
)
from repro.verify.diagnostics import Diagnostic, Location


def diag(code="NV101", severity=Severity.ERROR, qid="q", **loc):
    return Diagnostic(
        severity=severity,
        code=code,
        message=f"message for {code}",
        location=Location(qid=qid, **loc),
    )


class TestReport:
    def test_partitions_by_severity(self):
        report = VerificationReport()
        report.extend([
            diag("NV301", Severity.WARNING),
            diag("NV101", Severity.ERROR),
        ])
        assert [d.code for d in report.errors] == ["NV101"]
        assert [d.code for d in report.warnings] == ["NV301"]
        assert not report.ok
        assert not report.clean

    def test_warnings_only_is_ok_but_not_clean(self):
        report = VerificationReport()
        report.extend([diag("NV301", Severity.WARNING)])
        assert report.ok
        assert not report.clean

    def test_sorted_puts_errors_first(self):
        report = VerificationReport()
        report.extend([
            diag("NV301", Severity.WARNING),
            diag("NV501", Severity.WARNING),
            diag("NV101", Severity.ERROR),
        ])
        assert [d.code for d in report.sorted()][0] == "NV101"

    def test_render_names_code_and_location(self):
        text = diag("NV104", qid="t.q", step=3, stage=2).render()
        assert "NV104" in text
        assert "t.q" in text
        assert "error" in text.lower()

    def test_to_json_round_trips(self):
        report = VerificationReport()
        report.extend([diag("NV101", step=1, stage=0)])
        [entry] = json.loads(report.to_json())
        assert entry["code"] == "NV101"
        assert entry["severity"] == "error"
        assert entry["qid"] == "q"
        assert entry["step"] == 1

    def test_verification_error_summarises(self):
        report = VerificationReport()
        report.extend([diag("NV102")])
        err = VerificationError(report)
        assert "NV102" in str(err)
        assert err.report is report


class TestSuppression:
    def test_config_suppresses_codes(self):
        config = VerifierConfig(suppress=("NV301",))
        kept = config.filter([
            diag("NV301", Severity.WARNING),
            diag("NV101", Severity.ERROR),
        ])
        assert [d.code for d in kept] == ["NV101"]
