"""Install-time verification: the controller gates rules behind the verifier."""

import pytest

from repro.core.compiler import QueryParams
from repro.core.query import Query
from repro.dataplane.registers import AllocationError
from repro.network.deployment import build_deployment
from repro.network.topology import linear
from repro.verify import VerificationError


def syn_query(qid="ctl.q", threshold=10):
    return (
        Query(qid)
        .filter(proto=6, tcp_flags=2)
        .map("dip")
        .reduce("dip")
        .where(ge=threshold)
    )


SMALL = QueryParams(cm_depth=2, reduce_registers=128, distinct_registers=128)


class TestInstallGate:
    def test_over_subscribed_registers_rejected_before_any_rule(self):
        dep = build_deployment(linear(1), array_size=64)
        with pytest.raises(VerificationError) as exc:
            dep.controller.install_query(syn_query(), QueryParams(),
                                         path=["s0"])
        assert "NV203" in exc.value.report.codes()
        # Rejected before touching the switch: nothing to roll back.
        assert dep.switch("s0").rule_count == 0
        assert "ctl.q" not in dep.controller.installed

    def test_verify_false_still_hits_the_epoch_gate(self):
        # verify=False skips the per-query verifier, but the transaction
        # manager's NV601 staging gate still proves the staging window
        # fits before 2PC touches the data plane.
        dep = build_deployment(linear(1), array_size=64)
        with pytest.raises(VerificationError) as exc:
            dep.controller.install_query(syn_query(), QueryParams(),
                                         path=["s0"], verify=False)
        assert "NV601" in exc.value.report.codes()
        assert dep.switch("s0").rule_count == 0

    def test_epoch_gate_off_dies_at_the_allocator(self):
        # With both gates off the install reaches the data plane and dies
        # on the allocator instead (and is rolled back there).
        dep = build_deployment(linear(1), array_size=64)
        dep.controller.txn.epoch_gate = False
        with pytest.raises(AllocationError):
            dep.controller.install_query(syn_query(), QueryParams(),
                                         path=["s0"], verify=False)
        assert dep.switch("s0").rule_count == 0

    def test_warnings_surface_on_install_result(self):
        dep = build_deployment(linear(1), array_size=256)
        params = QueryParams(cm_depth=1, reduce_registers=128,
                             distinct_registers=128)
        result = dep.controller.install_query(syn_query(), params,
                                              path=["s0"])
        assert result.rules_staged > 0
        assert "NV302" in {d.code for d in result.diagnostics}

    def test_clean_install_reports_no_diagnostics(self):
        dep = build_deployment(linear(1), array_size=256)
        result = dep.controller.install_query(syn_query(), SMALL, path=["s0"])
        assert result.rules_staged > 0
        assert result.diagnostics == []


class TestJointAdmission:
    def test_second_query_rejected_at_real_occupancy(self):
        # table_capacity=1: the resident query's S rule plus the newcomer's
        # demand a second state-bank instance in the same stage, and two
        # instances of salu cost exceed the per-stage budget.
        dep = build_deployment(linear(1), table_capacity=1,
                               array_size=1 << 16)
        first = dep.controller.install_query(syn_query("ctl.a"), SMALL,
                                             path=["s0"])
        assert first.rules_staged > 0
        resident_rules = dep.switch("s0").rule_count

        with pytest.raises(VerificationError) as exc:
            dep.controller.install_query(syn_query("ctl.b"), SMALL,
                                         path=["s0"])
        report = exc.value.report
        assert "NV201" in report.codes()
        nv201 = report.by_code("NV201")
        assert any(d.location.switch == "s0" for d in nv201)
        assert any("salu" in d.message for d in nv201)
        # The resident query is untouched.
        assert dep.switch("s0").rule_count == resident_rules
        assert "ctl.a" in dep.controller.installed

    def test_same_set_admitted_on_empty_switch(self):
        # Control: the rejected newcomer installs fine when it is first.
        dep = build_deployment(linear(1), table_capacity=1,
                               array_size=1 << 16)
        result = dep.controller.install_query(syn_query("ctl.b"), SMALL,
                                              path=["s0"])
        assert result.rules_staged > 0

class TestUpdateGate:
    def test_update_query_re_runs_the_verifier_gate(self):
        # Regression: updates go through the same verification gate as
        # installs — an over-subscribing update is rejected with NV203
        # and the old program stays fully resident.
        dep = build_deployment(linear(1), array_size=256)
        dep.controller.install_query(syn_query(), SMALL, path=["s0"])
        resident_rules = dep.switch("s0").rule_count

        huge = QueryParams(cm_depth=2, reduce_registers=100_000,
                           distinct_registers=128)
        with pytest.raises(VerificationError) as exc:
            dep.controller.update_query(syn_query(threshold=99), huge,
                                        path=["s0"])
        assert "NV203" in exc.value.report.codes()
        assert dep.switch("s0").rule_count == resident_rules
        assert "ctl.q" in dep.controller.installed
