"""Shared helpers for verifier tests: compile + doctor compiled artifacts.

Most fixtures seed exactly one violation by compiling a healthy query and
then surgically corrupting the frozen artifact with ``dataclasses.replace``
— the verifier sees artifacts, so corrupt artifacts are the natural unit
of test input.
"""

from dataclasses import replace

import pytest

from repro.core.compiler import (
    CompiledQuery,
    Optimizations,
    QueryParams,
    compile_query,
)
from repro.core.query import Query


def reduce_query(qid: str = "t.reduce", **params) -> CompiledQuery:
    """A healthy single-chain reduce query (SYN-flood shape)."""
    query = (
        Query(qid)
        .filter(proto=6, tcp_flags=2)
        .map("dip")
        .reduce("dip")
        .where(ge=10)
    )
    return compile_query(query, QueryParams(**params), Optimizations.all())


def distinct_query(qid: str = "t.distinct", **params) -> CompiledQuery:
    """A healthy query with a Bloom-filter distinct."""
    query = (
        Query(qid)
        .filter(proto=6)
        .map("dip", "sip")
        .distinct("dip", "sip")
        .map("dip")
        .reduce("dip")
        .where(ge=10)
    )
    return compile_query(query, QueryParams(**params), Optimizations.all())


def replace_spec(compiled: CompiledQuery, step: int, **changes):
    """Return a copy of ``compiled`` with one spec's fields replaced."""
    specs = tuple(
        replace(spec, **changes) if spec.step == step else spec
        for spec in compiled.specs
    )
    return replace(compiled, specs=specs)


def spec_at(compiled: CompiledQuery, step: int):
    for spec in compiled.specs:
        if spec.step == step:
            return spec
    raise AssertionError(f"no spec at step {step}")


@pytest.fixture
def compiled_reduce() -> CompiledQuery:
    return reduce_query()
