"""NewtonInitEntry construction validation (dispatch-entry sanity)."""

import pytest

from repro.core.rules import NewtonInitEntry


class TestInitEntryValidation:
    def test_valid_entry_accepted(self):
        entry = NewtonInitEntry(
            qid="q", match=(("proto", 6, 255), ("tcp_flags", 2, 255))
        )
        assert entry.qid == "q"

    def test_match_all_entry_accepted(self):
        NewtonInitEntry(qid="q", match=())

    def test_value_bits_outside_mask_rejected(self):
        # mask 0xF0 only inspects the high nibble; value 0x06 lives in the
        # low nibble, so the TCAM entry could never match what was meant.
        with pytest.raises(ValueError, match="outside"):
            NewtonInitEntry(qid="q", match=(("proto", 6, 0xF0),))

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="five-tuple"):
            NewtonInitEntry(qid="q", match=(("ttl", 64, 255),))

    def test_value_wider_than_field_rejected(self):
        with pytest.raises(ValueError):
            NewtonInitEntry(qid="q", match=(("proto", 300, 255),))

    def test_mask_wider_than_field_rejected(self):
        with pytest.raises(ValueError):
            NewtonInitEntry(qid="q", match=(("proto", 6, 0x1FF),))

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            NewtonInitEntry(qid="q", match=(("sport", -1, 0xFFFF),))

    def test_exact_match_on_wide_field_accepted(self):
        NewtonInitEntry(qid="q", match=(("dip", 0xC0A80001, 0xFFFFFFFF),))
