"""`repro lint` CLI: exit codes, suppression, JSON, file targets."""

import json
import textwrap

import pytest

from repro.cli import main


class TestLintExitCodes:
    """The documented contract: 0 clean, 1 warnings only, 2 errors."""

    def test_clean_catalog_exits_zero(self, capsys):
        assert main(["lint", "--all"]) == 0
        out = capsys.readouterr().out
        assert "== Q1" in out

    def test_warnings_exit_one(self, capsys):
        assert main(["lint", "Q1", "--cm-depth", "1"]) == 1
        assert "NV302" in capsys.readouterr().out

    def test_werror_promotes_warnings_to_two(self):
        assert main(["lint", "Q1", "--cm-depth", "1", "--werror"]) == 2

    def test_errors_exit_two_naming_the_code(self, capsys):
        assert main(["lint", "Q1", "--array-size", "64"]) == 2
        assert "NV203" in capsys.readouterr().out

    def test_suppress_drops_the_code(self):
        assert main([
            "lint", "Q1", "--array-size", "64", "--suppress", "NV203",
        ]) == 0

    def test_joint_catalog_warns_on_shared_seeds(self):
        # Co-installing the whole library shares hash seeds (NV304):
        # warnings only, exit 1.
        assert main(["lint", "--all", "--joint"]) == 1


class TestLintTargets:
    def test_file_target_with_query(self, tmp_path, capsys):
        path = tmp_path / "my_query.py"
        path.write_text(textwrap.dedent(
            """
            from repro.core.query import Query

            QUERY = (
                Query("user.syn")
                .filter(proto=6, tcp_flags=2)
                .map("dip")
                .reduce("dip")
                .where(ge=40)
            )
            """
        ))
        assert main(["lint", str(path)]) == 0
        assert "user.syn" not in capsys.readouterr().err

    def test_file_target_with_queries_list(self, tmp_path):
        path = tmp_path / "suite.py"
        path.write_text(textwrap.dedent(
            """
            from repro.core.query import Query

            def q(qid):
                return (Query(qid).filter(proto=17).map("dip")
                        .reduce("dip").where(ge=5))

            QUERIES = [q("u.a"), q("u.b")]
            """
        ))
        # The pair shares hash seeds within its unit (NV304 warnings).
        assert main(["lint", str(path)]) == 1

    def test_file_without_query_rejected(self, tmp_path):
        path = tmp_path / "empty.py"
        path.write_text("X = 1\n")
        with pytest.raises(SystemExit):
            main(["lint", str(path)])

    def test_unknown_name_rejected(self):
        with pytest.raises(SystemExit):
            main(["lint", "Q99"])

    def test_no_targets_rejected(self):
        with pytest.raises(SystemExit):
            main(["lint"])


class TestLintJson:
    def test_json_output_is_structured(self, capsys):
        assert main(["lint", "Q1", "--array-size", "64", "--json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        codes = {d["code"] for d in payload}
        assert "NV203" in codes

    def test_format_json_spans_units(self, capsys):
        # --format json merges every unit into one parseable document.
        assert main([
            "lint", "Q1", "Q4", "--array-size", "64", "--format", "json",
        ]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert {d["code"] for d in payload} >= {"NV203"}
