"""The shipped query catalog must verify clean — the acceptance bar."""

import pytest

from repro.core.compiler import Optimizations, QueryParams, compile_query
from repro.core.library import QUERY_NAMES, build_query
from repro.core.query import flatten
from repro.experiments.common import evaluation_thresholds
from repro.verify import PipelineModel, verify_queries


def compiled_subs(name):
    query = build_query(name, evaluation_thresholds())
    params = QueryParams()
    return [
        compile_query(sub, params, Optimizations.all())
        for sub in flatten(query)
    ]


@pytest.mark.parametrize("name", QUERY_NAMES)
def test_library_query_verifies_clean(name):
    report = verify_queries(compiled_subs(name), model=PipelineModel())
    assert report.clean, (
        f"{name} should produce zero diagnostics:\n{report.render()}"
    )


def test_joint_catalog_has_no_errors():
    # Jointly, independently-seeded queries share hash seeds (NV304
    # warnings are expected and true) but nothing rises to an error.
    everything = [c for name in QUERY_NAMES for c in compiled_subs(name)]
    report = verify_queries(everything, model=PipelineModel())
    assert report.ok, report.render()


@pytest.mark.parametrize("name", QUERY_NAMES)
@pytest.mark.parametrize("level", [0, 3])
def test_compiler_self_check_passes(name, level):
    query = build_query(name, evaluation_thresholds())
    for sub in flatten(query):
        compile_query(sub, QueryParams(), Optimizations.upto(level),
                      self_check=True)


def test_compiler_self_check_env_toggle(monkeypatch):
    monkeypatch.setenv("REPRO_COMPILER_SELFCHECK", "1")
    query = build_query("Q1", evaluation_thresholds())
    for sub in flatten(query):
        compile_query(sub, QueryParams(), Optimizations.all())
