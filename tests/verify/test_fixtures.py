"""One seeded-violation fixture per diagnostic code.

Each test corrupts a healthy compiled artifact (or picks degenerate
parameters) so exactly the targeted invariant breaks, then asserts the
verifier names the expected stable code.  Codes are public API: these
tests pin them.
"""

from dataclasses import replace

from repro.core.rules import (
    MatchSource,
    NewtonInitEntry,
    RAction,
    RConfig,
    RMatchEntry,
)
from repro.dataplane.module_types import ModuleType
from repro.verify import (
    PipelineModel,
    RuleView,
    Severity,
    verify_queries,
)
from repro.verify.resources import check_resources

from tests.verify.conftest import (
    distinct_query,
    reduce_query,
    replace_spec,
    spec_at,
)


def codes_of(report):
    return set(report.codes())


# --------------------------------------------------------------------- #
# NV0xx: ternary shadowing                                              #
# --------------------------------------------------------------------- #


class TestShadowing:
    def test_nv001_same_query_shadowed_entry(self, compiled_reduce):
        narrow = compiled_reduce.init_entries[0]
        catch_all = NewtonInitEntry(qid=compiled_reduce.qid, match=())
        doctored = replace(
            compiled_reduce, init_entries=(narrow, catch_all)
        )
        report = verify_queries([doctored])
        nv001 = report.by_code("NV001")
        assert len(nv001) == 1
        assert nv001[0].severity is Severity.ERROR
        assert nv001[0].location.qid == compiled_reduce.qid
        assert not report.ok

    def test_nv001_identical_twin_flags_only_the_later(self, compiled_reduce):
        entry = compiled_reduce.init_entries[0]
        doctored = replace(compiled_reduce, init_entries=(entry, entry))
        report = verify_queries([doctored])
        assert len(report.by_code("NV001")) == 1

    def test_nv002_cross_query_priority_containment(self):
        low = reduce_query("t.low")
        high = reduce_query("t.high")
        high = replace(
            high,
            init_entries=tuple(
                replace(e, match=(), priority=5) for e in high.init_entries
            ),
        )
        report = verify_queries([low, high])
        nv002 = report.by_code("NV002")
        assert len(nv002) == 1
        assert nv002[0].severity is Severity.WARNING
        assert nv002[0].location.qid == "t.low"

    def test_nv002_not_raised_on_equal_priority(self):
        # Multi-match dispatch runs overlapping equal-priority queries by
        # design (§4.1 Concurrency) — no warning.
        a, b = reduce_query("t.a"), reduce_query("t.b")
        assert not verify_queries([a, b]).by_code("NV002")

    def test_nv003_covered_r_entry(self, compiled_reduce):
        spec = spec_at(compiled_reduce, 3)
        dead = RConfig(
            source=MatchSource.STATE,
            entries=(
                RMatchEntry(0, 100, RAction()),
                RMatchEntry(5, 10, RAction(report=True)),  # covered
            ),
            default=spec.config.default,
        )
        doctored = replace_spec(compiled_reduce, 3, config=dead)
        report = verify_queries([doctored])
        nv003 = report.by_code("NV003")
        assert len(nv003) == 1
        assert nv003[0].severity is Severity.ERROR
        assert "index 1" in nv003[0].message


# --------------------------------------------------------------------- #
# NV1xx: dependency / layout soundness                                  #
# --------------------------------------------------------------------- #


class TestDependencies:
    def test_nv101_true_dependency_same_stage(self, compiled_reduce):
        # S reads the hash its H writes; placing both in one stage breaks
        # the strict ordering of Figure 4.
        doctored = replace_spec(compiled_reduce, 2, stage=1)
        report = verify_queries([doctored])
        assert "NV101" in codes_of(report)
        assert not report.ok

    def test_nv102_anti_dependency(self, compiled_reduce):
        # Row 2's H overwrites the hash result while row 1's S (a later
        # stage) still has to read the old value.
        doctored = replace_spec(compiled_reduce, 4, stage=1)
        report = verify_queries([doctored])
        assert "NV102" in codes_of(report)

    def test_nv103_output_dependency(self, compiled_reduce):
        # Two writers of the same container at the same stage: the later
        # logical write is lost.
        doctored = replace_spec(compiled_reduce, 4, stage=1)
        report = verify_queries([doctored])
        assert "NV103" in codes_of(report)

    def test_nv104_compact_layout_slot_clash(self, compiled_reduce):
        # Both S rules forced into stage 2: one S slot per stage.
        doctored = replace_spec(compiled_reduce, 5, stage=2)
        report = verify_queries([doctored])
        assert "NV104" in codes_of(report)
        assert not report.ok

    def test_clean_schedule_has_no_nv1xx(self, compiled_reduce):
        report = verify_queries([compiled_reduce])
        assert not [c for c in report.codes() if c.startswith("NV1")]


# --------------------------------------------------------------------- #
# NV2xx: resource admission                                             #
# --------------------------------------------------------------------- #


class TestResources:
    def test_nv201_stage_over_subscription_with_breakdown(
        self, compiled_reduce
    ):
        # 256 resident S rules + one more demand a second state-bank
        # instance: 2 x salu(2) blows the per-stage salu budget of 3.
        s_spec = spec_at(compiled_reduce, 2)
        model = PipelineModel(
            array_size=1 << 20,
            rules_used={(s_spec.stage, ModuleType.STATE_BANK): 256},
        )
        found = check_resources([RuleView.of(s_spec)], model)
        nv201 = [d for d in found if d.code == "NV201"]
        assert len(nv201) == 1
        assert nv201[0].severity is Severity.ERROR
        assert "salu 4/3" in nv201[0].message  # per-category breakdown
        assert nv201[0].location.stage == s_spec.stage

    def test_nv202_stage_budget_exceeded(self, compiled_reduce):
        report = verify_queries(
            [compiled_reduce], model=PipelineModel(num_stages=4)
        )
        nv202 = report.by_code("NV202")
        assert len(nv202) == 1
        assert nv202[0].severity is Severity.WARNING
        assert report.ok  # CQE can still deploy it: warning, not error

    def test_nv203_register_over_subscription(self, compiled_reduce):
        report = verify_queries(
            [compiled_reduce], model=PipelineModel(array_size=64)
        )
        nv203 = report.by_code("NV203")
        assert nv203
        assert all(d.severity is Severity.ERROR for d in nv203)
        assert not report.ok

    def test_fits_exactly_is_accepted(self, compiled_reduce):
        # Demand == capacity must pass: exp_fig14 fills arrays exactly.
        report = verify_queries(
            [compiled_reduce], model=PipelineModel(array_size=4096)
        )
        assert not report.by_code("NV203")


# --------------------------------------------------------------------- #
# NV3xx: sketch-parameter sanity                                        #
# --------------------------------------------------------------------- #


class TestSketchSanity:
    def test_nv301_count_min_width_too_small(self):
        report = verify_queries([reduce_query(reduce_registers=8)])
        nv301 = report.by_code("NV301")
        assert len(nv301) == 1
        assert nv301[0].severity is Severity.WARNING
        assert "epsilon" in nv301[0].message

    def test_nv302_count_min_depth_too_small(self):
        report = verify_queries([reduce_query(cm_depth=1)])
        assert len(report.by_code("NV302")) == 1
        # Depth 2 (the paper's default) must pass.
        assert not verify_queries([reduce_query()]).by_code("NV302")

    def test_nv303_bloom_fpr_too_high(self):
        report = verify_queries([distinct_query(bf_hashes=1)])
        nv303 = report.by_code("NV303")
        assert len(nv303) == 1
        assert "false-positive" in nv303[0].message
        assert not verify_queries([distinct_query()]).by_code("NV303")

    def test_nv303_ignores_report_once_flag_suites(self):
        # A byte-sum threshold lowers a single test-and-set OR bit (suite
        # index > 0); it is not a Bloom membership sketch.
        from repro.core.compiler import Optimizations, QueryParams, compile_query
        from repro.core.query import Query

        query = (
            Query("t.bytes")
            .filter(proto=6)
            .map("dip")
            .reduce("dip", func="sum")
            .where(ge=1000)
        )
        compiled = compile_query(query, QueryParams(), Optimizations.all())
        assert not verify_queries([compiled]).by_code("NV303")

    def test_nv304_cross_query_seed_collision(self):
        # Same shape, overlapping dispatch, independently compiled: both
        # allocate seeds 1, 2 over the same keys.
        report = verify_queries([reduce_query("t.a"), reduce_query("t.b")])
        nv304 = report.by_code("NV304")
        assert nv304
        assert all(d.severity is Severity.WARNING for d in nv304)

    def test_nv304_suppressed_for_disjoint_dispatch(self):
        a = reduce_query("t.a")
        b = reduce_query("t.b")
        # Make the dispatch entries disjoint (different protocols).
        b = replace(
            b,
            init_entries=tuple(
                replace(e, match=(("proto", 17, 255),))
                for e in b.init_entries
            ),
        )
        assert not verify_queries([a, b]).by_code("NV304")


# --------------------------------------------------------------------- #
# NV5xx: dead-rule hints                                                #
# --------------------------------------------------------------------- #


class TestDeadRules:
    def test_nv501_dead_state_entry(self, compiled_reduce):
        # The CM row's S is ADD(+1): the state result is always >= 1, so
        # an entry on [0, 0] can never match.
        spec = spec_at(compiled_reduce, 3)
        dead = replace(
            spec.config, entries=(RMatchEntry(0, 0, RAction(report=True)),)
        )
        doctored = replace_spec(compiled_reduce, 3, config=dead)
        report = verify_queries([doctored])
        nv501 = report.by_code("NV501")
        assert len(nv501) == 1
        assert nv501[0].severity is Severity.WARNING
        assert nv501[0].location.step == 3

    def test_nv502_dead_global_entry(self, compiled_reduce):
        # The folded global result (min over ADD(+1) rows) is >= 1.
        spec = spec_at(compiled_reduce, 7)
        assert spec.config.source == MatchSource.GLOBAL
        dead = replace(
            spec.config, entries=(RMatchEntry(0, 0, RAction(report=True)),)
        )
        doctored = replace_spec(compiled_reduce, 7, config=dead)
        report = verify_queries([doctored])
        nv502 = report.by_code("NV502")
        assert len(nv502) == 1
        assert nv502[0].location.step == 7

    def test_feasible_entries_not_flagged(self, compiled_reduce):
        report = verify_queries([compiled_reduce])
        assert not [c for c in report.codes() if c.startswith("NV5")]
