"""Seeded fixtures: one deployment per fleet diagnostic code.

Every NV4xx/NV6xx/NV7xx code has a minimal deployment that provably
triggers it — the analyzer's regression corpus.  Codes are stable; a
test failing here means a diagnostic changed meaning, not just wording.
"""

from dataclasses import replace as dc_replace

import pytest

from repro.core.compiler import Optimizations, QueryParams, compile_query
from repro.core.query import Query, flatten
from repro.dataplane.module_types import ModuleType
from repro.network.deployment import build_deployment
from repro.network.topology import linear
from repro.verify.fleet import (
    FleetConfig,
    analyze_deployment,
    check_staging_plan,
    exit_code,
)
from repro.verify.fleet.accuracy import check_accuracy_budget
from repro.verify.fleet.epochs import (
    check_epoch_hygiene,
    check_staged_bank_layout,
)
from repro.verify.fleet.interference import (
    check_dispatch_starvation,
    check_fleet_occupancy,
)
from repro.verify.fleet.model import STAGED, SwitchView
from repro.verify.program import PipelineModel

PARAMS = QueryParams(cm_depth=2, reduce_registers=2048,
                     distinct_registers=2048)
#: Fits a 4096-register array once, but not twice: the double-occupancy
#: window of a make-before-break update cannot fit (NV601 fixtures).
SNUG = QueryParams(cm_depth=2, reduce_registers=3000,
                   distinct_registers=128)


def reduce_query(qid, threshold=3, **predicates):
    predicates = predicates or {"proto": 6, "tcp_flags": 2}
    return (
        Query(qid)
        .filter(**predicates)
        .map("dip")
        .reduce("dip")
        .where(ge=threshold)
    )


def deploy(*makes, params=PARAMS, array_size=1 << 13, **kw):
    dep = build_deployment(linear(1), array_size=array_size, **kw)
    for make in makes:
        dep.controller.install_query(make(), params, path=["s0"])
    return dep


def view_of(dep, sid="s0"):
    return SwitchView.of_switch(dep.switch(sid))


def compiled_of(dep):
    return {
        sub_qid: comp
        for record in dep.controller.installed.values()
        for sub_qid, comp in record.compiled.items()
    }


def analyze(dep, **cfg):
    return analyze_deployment(
        dep.switches,
        compiled=compiled_of(dep),
        committed_epoch=dep.controller.txn.epoch,
        config=FleetConfig(**cfg) if cfg else None,
    )


class TestNV401FleetOccupancy:
    def test_fleet_exceeding_the_policy_envelope(self):
        dep = deploy(lambda: reduce_query("fl.a"))
        policy = PipelineModel(num_stages=12, table_capacity=256,
                               array_size=64, label="tight-envelope")
        found = check_fleet_occupancy(view_of(dep), policy)
        assert found and all(d.code == "NV401" for d in found)
        assert all(d.severity.value == "error" for d in found)
        assert "tight-envelope" in found[0].message

    def test_no_policy_means_no_audit(self):
        dep = deploy(lambda: reduce_query("fl.a"))
        assert check_fleet_occupancy(view_of(dep), None) == []

    def test_generous_policy_is_clean(self):
        dep = deploy(lambda: reduce_query("fl.a"))
        policy = PipelineModel(num_stages=12, table_capacity=256,
                               array_size=1 << 20)
        assert check_fleet_occupancy(view_of(dep), policy) == []


class TestNV402HashUnitSharing:
    def test_same_shape_queries_share_physical_units(self):
        dep = deploy(lambda: reduce_query("fl.a"),
                     lambda: reduce_query("fl.b", threshold=5))
        report = analyze(dep)
        nv402 = report.by_code("NV402")
        assert nv402
        assert "seed_index" in nv402[0].message

    def test_disjoint_dispatch_does_not_interfere(self):
        # Same geometry but disjoint traffic (TCP vs UDP): no shared
        # packet ever indexes both sketches.
        dep = deploy(lambda: reduce_query("fl.tcp", proto=6),
                     lambda: reduce_query("fl.udp", proto=17))
        assert analyze(dep).by_code("NV402") == []


class TestNV403DispatchStarvation:
    def test_contained_entry_loses_to_earlier_broader_one(self):
        # fl.broad (all TCP, installed first) fully contains fl.syn
        # (TCP SYN): at equal priority the earlier insertion wins
        # single-winner arbitration and fl.syn never initiates.
        dep = deploy(lambda: reduce_query("fl.broad", proto=6),
                     lambda: reduce_query("fl.syn"))
        found = check_dispatch_starvation(view_of(dep))
        assert any(
            d.code == "NV403" and d.location.qid == "fl.syn"
            and "earlier insertion" in d.message
            for d in found
        )

    def test_disjoint_entries_do_not_starve(self):
        dep = deploy(lambda: reduce_query("fl.tcp", proto=6),
                     lambda: reduce_query("fl.udp", proto=17))
        assert check_dispatch_starvation(view_of(dep)) == []


def first_slice(dep, qid_prefix="fl."):
    record = next(iter(dep.controller.installed.values()))
    return next(iter(record.slices.values()))[0]


class TestNV601StagingWindows:
    def test_error_form_gates_an_unfittable_plan(self):
        # Re-staging the resident query's own slice doubles its register
        # lease past the array: the concrete plan must be refused.
        dep = deploy(lambda: reduce_query("fl.a"), params=SNUG,
                     array_size=4096)
        qs = first_slice(dep)
        epoch = dep.controller.txn.epoch + 1
        report = check_staging_plan(dep.switches, {"s0": [qs]},
                                    target_epoch=epoch)
        nv601 = report.by_code("NV601")
        assert nv601 and all(d.severity.value == "error" for d in nv601)
        assert exit_code(report) == 2

    def test_error_form_admits_a_fitting_plan(self):
        dep = deploy(lambda: reduce_query("fl.a"), array_size=1 << 15)
        qs = first_slice(dep)
        report = check_staging_plan(
            dep.switches, {"s0": [qs]},
            target_epoch=dep.controller.txn.epoch + 1,
        )
        assert report.by_code("NV601") == []

    def test_warning_form_flags_unrestageable_residents(self):
        dep = deploy(lambda: reduce_query("fl.a"), params=SNUG,
                     array_size=4096)
        report = analyze(dep)
        nv601 = report.by_code("NV601")
        assert nv601 and all(d.severity.value == "warning" for d in nv601)
        assert "make-before-break" in nv601[0].message

    def test_warning_form_clean_with_headroom(self):
        dep = deploy(lambda: reduce_query("fl.a"), array_size=1 << 15)
        assert analyze(dep).by_code("NV601") == []


class TestNV602StagedLayout:
    def test_doctored_staged_bank_violates_figure4(self):
        dep = deploy(lambda: reduce_query("fl.a"), array_size=1 << 15)
        pipeline = dep.switch("s0").pipeline
        qs = first_slice(dep)
        pipeline.stage_slice(qs, pipeline.rule_epoch + 1)

        # Collapse a staged S onto its H's stage: S reads the hash
        # result H writes, so same-stage placement breaks the true
        # dependency (NV101) the staged bank must still satisfy.
        for versions in pipeline._slices.values():
            for i, inst in enumerate(versions):
                if inst.epoch_from <= pipeline.rule_epoch:
                    continue
                h_by_step = {
                    spec.step: spec.stage
                    for _, spec, _ in inst.placed
                    if spec.module_type is ModuleType.HASH_CALCULATION
                }
                placed, done = [], False
                for stage, spec, skey in inst.placed:
                    if (not done
                            and spec.module_type is ModuleType.STATE_BANK
                            and not spec.config.passthrough
                            and spec.step - 1 in h_by_step):
                        spec = dc_replace(
                            spec, stage=h_by_step[spec.step - 1]
                        )
                        done = True
                    placed.append((stage, spec, skey))
                versions[i] = dc_replace(inst, placed=tuple(placed))

        found = check_staged_bank_layout(view_of(dep))
        assert found and all(d.code == "NV602" for d in found)
        assert all(d.severity.value == "error" for d in found)

    def test_honest_staged_bank_is_clean(self):
        dep = deploy(lambda: reduce_query("fl.a"), array_size=1 << 15)
        pipeline = dep.switch("s0").pipeline
        pipeline.stage_slice(first_slice(dep), pipeline.rule_epoch + 1)
        assert check_staged_bank_layout(view_of(dep)) == []


class TestNV603EpochHygiene:
    def test_epoch_skew_between_switch_and_controller(self):
        dep = deploy(lambda: reduce_query("fl.a"))
        view = view_of(dep)
        found = check_epoch_hygiene(view, committed_epoch=view.rule_epoch + 5)
        assert any(d.code == "NV603" and "disagrees" in d.message
                   for d in found)

    def test_stranded_staged_bank_past_its_commit(self):
        dep = deploy(lambda: reduce_query("fl.a"), array_size=1 << 15)
        pipeline = dep.switch("s0").pipeline
        target = pipeline.rule_epoch + 1
        pipeline.stage_slice(first_slice(dep), target)
        # The controller has since committed past the staged target.
        found = check_epoch_hygiene(view_of(dep), committed_epoch=target)
        assert any(d.code == "NV603" and "already" in d.message
                   for d in found)

    def test_uncollected_retired_residue(self):
        dep = deploy(lambda: reduce_query("fl.a"))
        pipeline = dep.switch("s0").pipeline
        gone = pipeline.rule_epoch + 1
        pipeline.retire_query("fl.a", gone)
        pipeline.commit_epoch(gone)  # flip without gc_retired
        found = check_epoch_hygiene(view_of(dep), committed_epoch=gone)
        assert any(d.code == "NV603" and "garbage collector" in d.message
                   for d in found)

    def test_quiescent_switch_is_clean(self):
        dep = deploy(lambda: reduce_query("fl.a"))
        view = view_of(dep)
        assert check_epoch_hygiene(view, committed_epoch=view.rule_epoch) == []


def compile_all(query, params):
    return [
        compile_query(sub, params, Optimizations.all())
        for sub in flatten(query)
    ]


class TestNV7xxAccuracyBudget:
    def test_nv701_overloaded_count_min(self):
        # 1500 declared flows over width 2048: load 0.73 > 0.5 but the
        # row is still wider than N, so this is degradation, not NV703.
        comps = compile_all(
            reduce_query("fl.a"),
            QueryParams(cm_depth=2, reduce_registers=2048,
                        distinct_registers=1 << 15),
        )
        found = check_accuracy_budget(comps, expected_flows=1500)
        codes = {d.code for d in found}
        assert "NV701" in codes and "NV703" not in codes

    def test_nv702_saturated_bloom_filter(self):
        query = (
            Query("fl.d")
            .filter(proto=6)
            .map("sip", "dip")
            .distinct("sip", "dip")
            .reduce("dip")
            .where(ge=3)
        )
        comps = compile_all(
            query,
            QueryParams(cm_depth=2, bf_hashes=3,
                        reduce_registers=1 << 15,
                        distinct_registers=2048),
        )
        found = check_accuracy_budget(comps, expected_flows=10_000)
        nv702 = [d for d in found if d.code == "NV702"]
        assert nv702 and "false-positive" in nv702[0].message

    def test_nv703_pigeonhole_impossible_sketch(self):
        comps = compile_all(
            reduce_query("fl.a"),
            QueryParams(cm_depth=2, reduce_registers=2048,
                        distinct_registers=1 << 15),
        )
        found = check_accuracy_budget(comps, expected_flows=10_000)
        nv703 = [d for d in found if d.code == "NV703"]
        assert nv703 and all(d.severity.value == "error" for d in nv703)

    def test_comfortable_budget_is_clean(self):
        comps = compile_all(
            reduce_query("fl.a"),
            QueryParams(cm_depth=2, reduce_registers=1 << 15,
                        distinct_registers=1 << 15),
        )
        assert check_accuracy_budget(comps, expected_flows=1000) == []

    def test_analyze_threads_the_declared_workload(self):
        dep = deploy(lambda: reduce_query("fl.a"))
        report = analyze(dep, expected_flows=10_000)
        assert report.by_code("NV703")


class TestFleetConfig:
    def test_suppress_drops_codes_fleet_wide(self):
        dep = deploy(lambda: reduce_query("fl.a"),
                     lambda: reduce_query("fl.b", threshold=5))
        noisy = analyze(dep)
        assert noisy.by_code("NV402")
        quiet = analyze(dep, suppress=("NV402",))
        assert quiet.by_code("NV402") == []

    def test_staged_bank_shows_in_the_view(self):
        dep = deploy(lambda: reduce_query("fl.a"), array_size=1 << 15)
        pipeline = dep.switch("s0").pipeline
        pipeline.stage_slice(first_slice(dep), pipeline.rule_epoch + 1)
        view = view_of(dep)
        assert view.banks_with_status(STAGED)


class TestExitCode:
    def test_contract_values(self):
        dep_clean = deploy(lambda: reduce_query("fl.a"),
                           array_size=1 << 15)
        assert exit_code(analyze(dep_clean)) == 0

        dep_warn = deploy(lambda: reduce_query("fl.a"), params=SNUG,
                          array_size=4096)
        report = analyze(dep_warn)
        assert report.errors == [] and report.warnings
        assert exit_code(report) == 1
        assert exit_code(report, werror=True) == 2

        dep_err = deploy(lambda: reduce_query("fl.a"))
        assert exit_code(analyze(dep_err, expected_flows=10_000)) == 2
