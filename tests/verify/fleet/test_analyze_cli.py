"""`newton-repro analyze` CLI: families, formats, and the exit contract."""

import json

from repro.cli import main


class TestAnalyzeFamilies:
    def test_default_deployment_reports_all_three_families(self, capsys):
        # Q1+Q2+Q3 on linear(3) with modest registers: NV7xx accuracy
        # errors, NV402 interference and NV601 staging warnings — the
        # acceptance scenario for the fleet analyzer.
        assert main(["analyze"]) == 2
        out = capsys.readouterr().out
        assert "NV402" in out or "NV403" in out  # NV4xx interference
        assert "NV601" in out                    # NV6xx epoch safety
        assert "NV70" in out                     # NV7xx accuracy

    def test_rejected_queries_reported_as_skipped(self, capsys):
        main(["analyze"])
        err = capsys.readouterr().err
        assert "skipped Q3" in err


class TestAnalyzeExitContract:
    def test_clean_deployment_exits_zero(self):
        assert main([
            "analyze", "Q1", "--switches", "1",
            "--array-size", "65536", "--expected-flows", "0",
        ]) == 0

    def test_warnings_exit_one(self):
        assert main([
            "analyze", "--expected-flows", "0",
            "--suppress", "NV702", "--suppress", "NV703",
        ]) == 1

    def test_werror_promotes_to_two(self):
        assert main([
            "analyze", "--expected-flows", "0", "--werror",
            "--suppress", "NV702", "--suppress", "NV703",
        ]) == 2

    def test_errors_exit_two(self):
        assert main(["analyze"]) == 2

    def test_suppress_drops_codes(self, capsys):
        main(["analyze", "--suppress", "NV402"])
        assert "NV402" not in capsys.readouterr().out


class TestAnalyzeJson:
    def test_json_is_machine_readable_with_stable_codes(self, capsys):
        assert main(["analyze", "--format", "json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        codes = {d["code"] for d in payload}
        assert codes & {"NV402", "NV403"}
        assert "NV601" in codes
        assert codes & {"NV701", "NV702", "NV703"}
        sample = payload[0]
        assert {"code", "severity", "message"} <= set(sample)
