"""The shipped examples must keep running end to end.

Each example's ``main()`` is imported and executed with stdout captured;
a regression in any public API surfaces here before a user hits it.
(The two heaviest examples are exercised at reduced scale elsewhere —
``cross_switch_accuracy`` drives the same ``figure14`` harness the
benchmarks cover.)
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "installed 9 table rules" in out
        assert "victim 10.3.0.1" in out
        assert "forwarding never stopped" in out

    def test_ddos_drilldown(self, capsys):
        load_example("ddos_drilldown").main()
        out = capsys.readouterr().out
        assert "Q5 flagged victim" in out
        assert "drill-down installed" in out
        assert "attack sources" in out

    def test_operator_console(self, capsys):
        load_example("operator_console").main()
        out = capsys.readouterr().out
        assert "admission plan" in out
        assert "rejected" in out          # the starved switch rejects some
        assert "newton_init" in out       # rule export shown
        assert "register readout" in out

    def test_network_wide_failover(self, capsys):
        load_example("network_wide_failover").main()
        out = capsys.readouterr().out
        assert "failed; detour" in out
        assert "still detected on the detour" in out
        assert "dropped=0" in out
