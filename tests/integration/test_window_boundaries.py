"""Window (epoch) boundary behaviour.

The 100 ms tumbling window is load-bearing for every result in the paper:
registers reset, thresholds re-arm, reports carry the epoch they belong
to, and deferred CPU execution must close its windows in lockstep with
the data plane.
"""

import pytest

from repro.core.compiler import QueryParams
from repro.core.packet import Packet
from repro.core.query import Query
from repro.network.deployment import build_deployment
from repro.network.topology import linear
from repro.traffic.traces import Trace

PARAMS = QueryParams(cm_depth=2, reduce_registers=256,
                     distinct_registers=256)


def q(threshold=3, qid="wb.q"):
    return (
        Query(qid)
        .filter(proto=6, tcp_flags=2)
        .map("dip")
        .reduce("dip")
        .where(ge=threshold)
    )


def syn(sip, ts, dip=9):
    return Packet(sip=sip, dip=dip, proto=6, tcp_flags=2, ts=ts,
                  src_host="h_src0", dst_host="h_dst0")


class TestThresholdRearming:
    def test_count_split_across_windows_never_fires(self):
        """2+2 SYNs straddling a boundary must not cross a threshold of 3."""
        deployment = build_deployment(linear(1), array_size=512)
        deployment.controller.install_query(q(3), PARAMS, path=["s0"])
        packets = [syn(1, 0.08), syn(2, 0.09), syn(3, 0.11), syn(4, 0.12)]
        stats = deployment.simulator.run(Trace(packets))
        assert stats.total_reports == 0

    def test_each_window_reports_independently(self):
        deployment = build_deployment(linear(1), array_size=512)
        deployment.controller.install_query(q(2), PARAMS, path=["s0"])
        packets = (
            [syn(i, 0.01 + i * 1e-3) for i in range(2)]      # window 0
            + [syn(i, 0.51 + i * 1e-3) for i in range(2)]    # window 5
        )
        deployment.simulator.run(Trace(packets))
        results = deployment.analyzer.results("wb.q")
        assert set(results) == {0, 5}
        assert results[0] == results[5] == {(9,): 2}

    def test_report_epoch_matches_packet_window(self):
        deployment = build_deployment(linear(1), array_size=512)
        deployment.controller.install_query(q(1), PARAMS, path=["s0"])
        deployment.simulator.run(Trace([syn(1, 0.73)]))
        report = deployment.analyzer.reports[0]
        assert report.epoch == 7

    def test_exact_boundary_timestamp_belongs_to_next_window(self):
        deployment = build_deployment(linear(1), array_size=512)
        deployment.controller.install_query(q(2), PARAMS, path=["s0"])
        # ts == 0.1 is window 1 by the half-open convention.
        deployment.simulator.run(Trace([syn(1, 0.0999), syn(2, 0.1)]))
        assert deployment.analyzer.results("wb.q") == {}


class TestCqeWindows:
    def test_sliced_query_resets_on_every_switch(self):
        deployment = build_deployment(linear(2), num_stages=3,
                                      array_size=512)
        deployment.controller.install_query(
            q(3), PARAMS, path=["s0", "s1"], stages_per_switch=3
        )
        # Three crossings in window 0, then three more in window 1: both
        # switches' registers must have rolled together.
        first = [syn(i, 0.01 + i * 1e-3) for i in range(3)]
        second = [syn(i, 0.11 + i * 1e-3) for i in range(3)]
        deployment.simulator.run(Trace(first + second))
        results = deployment.analyzer.results("wb.q")
        assert results == {0: {(9,): 3}, 1: {(9,): 3}}


class TestDeferredWindows:
    def test_cpu_windows_close_with_data_plane(self):
        # One-switch path, two-slice query: remainder runs on CPU; its
        # per-window results must land in the right epochs.
        deployment = build_deployment(linear(1), num_stages=3,
                                      array_size=512)
        deployment.controller.install_query(
            q(2), PARAMS, path=["s0"], stages_per_switch=3
        )
        assert deployment.controller.total_slices("wb.q") >= 2
        packets = (
            [syn(i, 0.01 + i * 1e-3) for i in range(2)]
            + [syn(i, 0.21 + i * 1e-3) for i in range(4)]
        )
        deployment.simulator.run(Trace(packets))
        results = deployment.analyzer.results("wb.q")
        assert results[0] == {(9,): 2}
        assert results[2] == {(9,): 4}
        assert 1 not in results or not results[1]


class TestCustomWindowLength:
    def test_window_ms_parameter_respected(self):
        deployment = build_deployment(linear(1), array_size=512,
                                      window_ms=500)
        deployment.controller.install_query(q(2), PARAMS, path=["s0"])
        # 0.08 and 0.3 share a 500 ms window but not a 100 ms one.
        deployment.simulator.run(Trace([syn(1, 0.08), syn(2, 0.3)]))
        assert deployment.analyzer.results("wb.q")[0] == {(9,): 2}
