"""End-to-end: every library query's data-plane detections must match the
exact ground-truth engine when sketches are collision-free."""

import pytest

from repro.core.compiler import QueryParams
from repro.core.groundtruth import GroundTruthEngine
from repro.core.library import build_query
from repro.core.query import CompositeQuery, flatten
from repro.experiments.common import evaluation_thresholds, workload
from repro.network.deployment import build_deployment
from repro.network.topology import linear
from repro.traffic.generators import assign_hosts

#: Generous sketches: collisions become negligible, so the data plane must
#: agree with exact evaluation.
PARAMS = QueryParams(cm_depth=2, bf_hashes=3,
                     reduce_registers=1 << 14, distinct_registers=1 << 14)


@pytest.fixture(scope="module")
def trace():
    return workload("caida", n_packets=8000, duration_s=0.3, seed=11)


def run_query(name, trace):
    query = build_query(name, evaluation_thresholds())
    deployment = build_deployment(linear(1), array_size=1 << 18)
    deployment.controller.install_query(query, PARAMS, path=["s0"])
    routed = assign_hosts(trace, [("h_src0", "h_dst0")])
    deployment.simulator.run(routed)
    return query, deployment.analyzer


def truth_detections(query, trace):
    engine = GroundTruthEngine(query)
    windows = engine.evaluate(trace.packets)
    out = {}
    for epoch, window in windows.items():
        if isinstance(query, CompositeQuery):
            out[epoch] = engine.join(window)
        else:
            out[epoch] = sorted(window[query.qid].keys)
    return out


@pytest.mark.parametrize("name", [f"Q{i}" for i in range(1, 10)])
def test_query_matches_ground_truth(name, trace):
    query, analyzer = run_query(name, trace)
    measured = analyzer.detections(name)
    expected = truth_detections(query, trace)
    if name == "Q8":
        # Q8's CPU join sees threshold-clipped counts, so the ratio test
        # differs from exact arithmetic; require the true victims to be
        # found and nothing implausible (superset containment).
        for epoch, victims in expected.items():
            found = set(measured.get(epoch, []))
            assert set(victims) <= found
        return
    for epoch, keys in expected.items():
        if keys:
            assert measured.get(epoch) == keys, (name, epoch)
    # No spurious detections either.
    for epoch, keys in measured.items():
        assert set(keys) <= set(expected.get(epoch, [])) or not keys


def test_all_queries_coexist(trace):
    """All nine queries installed concurrently still detect correctly."""
    deployment = build_deployment(linear(1), array_size=1 << 18)
    queries = {
        name: build_query(name, evaluation_thresholds())
        for name in [f"Q{i}" for i in range(1, 10)]
    }
    for query in queries.values():
        deployment.controller.install_query(query, PARAMS, path=["s0"])
    routed = assign_hosts(trace, [("h_src0", "h_dst0")])
    deployment.simulator.run(routed)
    for name, query in queries.items():
        expected = truth_detections(query, trace)
        measured = deployment.analyzer.detections(name)
        hits = sum(
            1 for epoch, keys in expected.items()
            if keys and set(measured.get(epoch, [])) >= set(
                k for k in keys
            )
        )
        want = sum(1 for keys in expected.values() if keys)
        assert hits == want, name
