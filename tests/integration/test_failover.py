"""Resilient placement under network dynamics (paper §5.2, Figure 9)."""

import pytest

from repro.core.compiler import QueryParams
from repro.core.packet import Packet
from repro.core.query import Query
from repro.network.deployment import build_deployment
from repro.network.topology import fat_tree, isp_backbone
from repro.traffic.traces import Trace

PARAMS = QueryParams(cm_depth=2, reduce_registers=256,
                     distinct_registers=256)


def q1(threshold=3, qid="fo.q1"):
    return (
        Query(qid)
        .filter(proto=6, tcp_flags=2)
        .map("dip")
        .reduce("dip")
        .where(ge=threshold)
    )


def syn_stream(src_host, dst_host, n, start=0.0):
    return [
        Packet(sip=i + 1, dip=42, proto=6, tcp_flags=2,
               ts=start + i * 0.001, src_host=src_host, dst_host=dst_host)
        for i in range(n)
    ]


class TestFatTreeFailover:
    def _deployment(self):
        topo = fat_tree(4)
        deployment = build_deployment(topo, num_stages=4, array_size=512,
                                      ecmp=False)
        deployment.controller.install_query(
            q1(), PARAMS, topology=topo, stages_per_switch=4
        )
        return topo, deployment

    def test_monitoring_survives_reroute(self):
        topo, deployment = self._deployment()
        hosts = sorted(topo.hosts)
        src, dst = hosts[0], hosts[-1]
        # Break the primary path's first link; traffic reroutes (Figure 9
        # f1 -> f1'), and the redundant placement still covers it.
        primary = deployment.router.path_for(
            Packet(sip=1, dip=42, proto=6, tcp_flags=2,
                   src_host=src, dst_host=dst)
        )
        deployment.router.fail_link(primary[0], primary[1])
        stats = deployment.simulator.run(Trace(syn_stream(src, dst, 5)))
        assert stats.dropped == 0
        results = deployment.analyzer.results("fo.q1")[0]
        assert (42,) in results and results[(42,)] >= 3

    def test_every_ecmp_path_monitored(self):
        topo = fat_tree(4)
        deployment = build_deployment(topo, num_stages=4, array_size=512,
                                      ecmp=True)
        deployment.controller.install_query(
            q1(threshold=1), PARAMS, topology=topo, stages_per_switch=4
        )
        hosts = sorted(topo.hosts)
        src, dst = hosts[0], hosts[-1]
        # Many flows spread over ECMP paths; each must produce its report.
        packets = [
            Packet(sip=100 + f, dip=42, proto=6, tcp_flags=2,
                   sport=1000 + f, ts=f * 0.001,
                   src_host=src, dst_host=dst)
            for f in range(32)
        ]
        stats = deployment.simulator.run(Trace(packets))
        # Every flow is monitored somewhere (no deferral, no silence)...
        assert stats.total_reports >= 1
        assert stats.deferred == 0
        # ...but register state fragments across the ECMP paths' switches,
        # so at most one crossing fires per distinct reporting switch (the
        # §7 limitation the paper acknowledges for dynamic paths).
        assert stats.total_reports == len(stats.reports_by_switch)


class TestIspFailover:
    def test_california_monitoring_survives_backbone_failure(self):
        topo = isp_backbone()
        deployment = build_deployment(topo, num_stages=4, array_size=512,
                                      ecmp=False)
        deployment.controller.install_query(
            q1(qid="fo.isp"), PARAMS, topology=topo,
            edge_switches=["Los Angeles"], stages_per_switch=4,
        )
        src = "h_Los_Angeles_0"
        dst = "h_New_York_0"
        primary = deployment.router.path_for(
            Packet(proto=6, tcp_flags=2, src_host=src, dst_host=dst)
        )
        deployment.router.fail_link(primary[1], primary[2])
        stats = deployment.simulator.run(Trace(syn_stream(src, dst, 4)))
        assert stats.dropped == 0
        # Reports fire at the threshold crossing (count == 3).
        results = deployment.analyzer.results("fo.isp")[0]
        assert (42,) in results and results[(42,)] >= 3

    def test_rules_multiplexed_not_per_flow(self):
        """Redundant placement is bounded: installing the query once covers
        every flow and path; rule count does not depend on traffic."""
        topo = isp_backbone()
        deployment = build_deployment(topo, num_stages=4, array_size=512)
        result = deployment.controller.install_query(
            q1(qid="fo.isp"), PARAMS, topology=topo,
            edge_switches=["Los Angeles"], stages_per_switch=4,
        )
        before = deployment.controller.rule_count()
        assert before == result.rules_staged
        deployment.simulator.run(
            Trace(syn_stream("h_Los_Angeles_0", "h_Miami_0", 10))
        )
        assert deployment.controller.rule_count() == before
