"""Golden tests: the compiled form of every library query is pinned.

The exported-rule JSON is a deterministic function of (query, params,
optimisations).  Pinning a digest of it catches unintended compiler
behaviour changes; an *intended* change updates the table below (and is
thereby forced to show up in review).
"""

import hashlib
import json

import pytest

from repro.core.compiler import QueryParams, compile_query
from repro.core.export import to_json
from repro.core.library import QueryThresholds, build_query
from repro.core.query import flatten

PARAMS = QueryParams(cm_depth=2, bf_hashes=3,
                     reduce_registers=4096, distinct_registers=4096)
THRESHOLDS = QueryThresholds()


def digest(name: str) -> str:
    query = build_query(name, THRESHOLDS)
    blob = "\n".join(
        to_json(compile_query(sub, PARAMS)) for sub in flatten(query)
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def footprint(name: str):
    query = build_query(name, THRESHOLDS)
    compiled = [compile_query(sub, PARAMS) for sub in flatten(query)]
    return (
        sum(c.num_modules for c in compiled),
        max(c.num_stages for c in compiled),
        sum(c.rule_count for c in compiled),
    )


#: (modules, max sub stages, rules) per library query under PARAMS.
EXPECTED_FOOTPRINTS = {
    "Q1": (8, 6, 9),
    "Q2": (19, 11, 20),
    "Q3": (19, 10, 20),
    "Q4": (19, 10, 20),
    "Q5": (19, 10, 20),
    "Q6": (24, 6, 27),
    "Q7": (16, 6, 18),
    "Q8": (31, 11, 33),
    "Q9": (31, 12, 33),
}


@pytest.mark.parametrize("name", sorted(EXPECTED_FOOTPRINTS))
def test_footprint_pinned(name):
    assert footprint(name) == EXPECTED_FOOTPRINTS[name], name


def test_compilation_is_deterministic():
    for name in ("Q1", "Q6", "Q8"):
        assert digest(name) == digest(name)


def test_params_change_the_artifact():
    base = digest("Q1")
    other = hashlib.sha256(
        to_json(
            compile_query(build_query("Q1", THRESHOLDS),
                          QueryParams(cm_depth=3))
        ).encode()
    ).hexdigest()[:16]
    assert base != other
