"""Cross-switch query execution: equivalence and memory pooling."""

import pytest

from repro.core.compiler import QueryParams, compile_query
from repro.core.library import QueryThresholds, build_query
from repro.experiments.common import workload
from repro.network.deployment import build_deployment
from repro.network.topology import linear
from repro.traffic.generators import assign_hosts


def deploy_q1(hops, registers, cm_depth, threshold=30, window_ms=100):
    query = build_query("Q1", QueryThresholds(new_tcp_conns=threshold))
    params = QueryParams(cm_depth=cm_depth, reduce_registers=registers,
                         distinct_registers=registers)
    probe = compile_query(query, params)
    stages = -(-probe.num_stages // hops)
    deployment = build_deployment(
        linear(hops), num_stages=stages, array_size=registers,
        window_ms=window_ms,
    )
    deployment.controller.install_query(
        query, params, path=[f"s{i}" for i in range(hops)],
        stages_per_switch=stages,
    )
    return deployment


@pytest.fixture(scope="module")
def trace():
    return workload("caida", n_packets=6000, duration_s=0.3, seed=23)


class TestEquivalence:
    def test_sliced_execution_matches_single_switch(self, trace):
        """With identical sketch parameters, splitting the query across
        switches must produce exactly the same reports."""
        single = deploy_q1(1, registers=1 << 14, cm_depth=2)
        sliced = deploy_q1(3, registers=1 << 14, cm_depth=2)
        routed = assign_hosts(trace, [("h_src0", "h_dst0")])
        single.simulator.run(routed)
        sliced.simulator.run(routed)
        assert (
            single.analyzer.results("Q1") == sliced.analyzer.results("Q1")
        )

    def test_report_carries_keys_and_count(self, trace):
        deployment = deploy_q1(2, registers=1 << 14, cm_depth=2)
        routed = assign_hosts(trace, [("h_src0", "h_dst0")])
        deployment.simulator.run(routed)
        report = deployment.analyzer.reports[0]
        assert report.global_result is not None
        fields = report.keys_of_set(0)
        assert "dip" in fields


class TestMemoryPooling:
    def test_more_switches_better_accuracy(self):
        """The Figure 14 mechanism: 3k rows over k switches tighten the
        Count-Min min, so constrained registers miss fewer crossings."""
        from repro.core.groundtruth import evaluate_trace
        from repro.traffic.generators import syn_flood, syn_scan_noise
        from repro.traffic.traces import merge_traces

        trace = merge_traces([
            syn_scan_noise(n_packets=6000, n_destinations=4000,
                           duration_s=0.2, seed=31),
            syn_flood(victim_index=1, n_packets=90, duration_s=0.2, seed=32),
            syn_flood(victim_index=2, n_packets=90, duration_s=0.2, seed=33),
        ])
        query = build_query("Q1", QueryThresholds(new_tcp_conns=30))
        truth = evaluate_trace(query, trace.packets)
        true_positives = {
            epoch: window["Q1"].keys for epoch, window in truth.items()
        }

        def recall(hops):
            deployment = deploy_q1(hops, registers=128,
                                   cm_depth=3 * hops)
            routed = assign_hosts(trace, [("h_src0", "h_dst0")])
            deployment.simulator.run(routed)
            results = deployment.analyzer.results("Q1")
            hit = total = 0
            for epoch, keys in true_positives.items():
                found = set(results.get(epoch, {}))
                hit += len(found & keys)
                total += len(keys)
            return hit / total if total else 1.0

        assert recall(3) >= recall(1)

    def test_sp_headers_only_while_in_flight(self, trace):
        deployment = deploy_q1(3, registers=1 << 12, cm_depth=2)
        routed = assign_hosts(trace, [("h_src0", "h_dst0")])
        stats = deployment.simulator.run(routed)
        # Only SYN packets (the monitored traffic) carry SP bytes, so the
        # overhead stays far below the all-packets worst case.
        assert stats.sp_bytes > 0
        syn_count = sum(1 for p in trace if p.tcp_flags == 2 and p.proto == 6)
        assert stats.sp_bytes <= syn_count * 12 * 2  # <= hops-1 links
