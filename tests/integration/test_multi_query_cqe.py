"""Multiple sliced queries in flight on one packet (shared SP header)."""

import pytest

from repro.core.compiler import QueryParams
from repro.core.packet import Packet
from repro.core.query import Query
from repro.network.deployment import build_deployment
from repro.network.snapshot import SP_HEADER_BYTES
from repro.network.topology import linear
from repro.traffic.traces import Trace

PARAMS = QueryParams(cm_depth=2, reduce_registers=256,
                     distinct_registers=256)


def syn_count_query(qid, key, threshold):
    return (
        Query(qid)
        .filter(proto=6, tcp_flags=2)
        .map(key)
        .reduce(key)
        .where(ge=threshold)
    )


def packets(n):
    return Trace([
        Packet(sip=100 + (i % 4), dip=9, proto=6, tcp_flags=2,
               sport=5000 + i, ts=i * 1e-3,
               src_host="h_src0", dst_host="h_dst0")
        for i in range(n)
    ])


@pytest.fixture
def deployment():
    dep = build_deployment(linear(3), num_stages=3, array_size=512)
    # Two queries over the same traffic, different keys, both sliced
    # across the chain: the SP header carries both simultaneously.
    dep.controller.install_query(
        syn_count_query("mq.dst", "dip", threshold=6), PARAMS,
        path=["s0", "s1", "s2"], stages_per_switch=3,
    )
    dep.controller.install_query(
        syn_count_query("mq.src", "sip", threshold=2), PARAMS,
        path=["s0", "s1", "s2"], stages_per_switch=3,
    )
    return dep


class TestSharedHeader:
    def test_both_queries_detect(self, deployment):
        deployment.simulator.run(packets(8))
        dst = deployment.analyzer.results("mq.dst")
        src = deployment.analyzer.results("mq.src")
        assert dst[0] == {(9,): 6}
        # Four sources send two SYNs each: all cross the threshold of 2.
        assert set(src[0]) == {(100,), (101,), (102,), (103,)}

    def test_sp_bytes_scale_with_inflight_queries(self, deployment):
        stats = deployment.simulator.run(packets(8))
        # Both queries ride every monitored packet over the first link;
        # completion strips them before the last.
        assert stats.sp_bytes >= 8 * 2 * SP_HEADER_BYTES

    def test_queries_complete_independently(self, deployment):
        # Remove one mid-stream; the other keeps working.
        deployment.simulator.run(packets(4))
        deployment.controller.remove_query("mq.src")
        deployment.simulator.run(
            Trace([
                Packet(sip=200, dip=9, proto=6, tcp_flags=2,
                       sport=7000 + i, ts=0.02 + i * 1e-3,
                       src_host="h_src0", dst_host="h_dst0")
                for i in range(4)
            ])
        )
        assert deployment.analyzer.results("mq.dst")[0] == {(9,): 6}
        # The removed query produced results only from before removal.
        src = deployment.analyzer.results("mq.src")
        assert (200,) not in src.get(0, {})
