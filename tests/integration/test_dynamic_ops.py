"""Dynamic query operations: the headline Newton capability.

Installing, removing, and updating queries are pure table-rule
transactions: they must never interrupt forwarding, and they must take
effect immediately (Figure 10/11 behaviours).
"""

import pytest

from repro.core.compiler import QueryParams
from repro.core.library import QueryThresholds, build_query
from repro.core.packet import Packet
from repro.core.query import Query
from repro.network.deployment import build_deployment
from repro.network.topology import linear
from repro.traffic.traces import Trace

PARAMS = QueryParams(cm_depth=2, bf_hashes=2,
                     reduce_registers=512, distinct_registers=512)


def syn_stream(n, dip=9, start=0.0, step=0.001):
    return [
        Packet(sip=i + 1, dip=dip, proto=6, tcp_flags=2,
               ts=start + i * step, src_host="h_src0", dst_host="h_dst0")
        for i in range(n)
    ]


def q1(threshold):
    return (
        Query("dyn.q1")
        .filter(proto=6, tcp_flags=2)
        .map("dip")
        .reduce("dip")
        .where(ge=threshold)
    )


class TestNoInterruption:
    def test_forwarding_continues_through_install(self):
        deployment = build_deployment(linear(1), array_size=4096)
        switch = deployment.switch("s0")
        # Packets forwarded before, during (conceptually), and after the
        # install must all be delivered: the switch never goes down.
        stats1 = deployment.simulator.run(Trace(syn_stream(5)))
        deployment.controller.install_query(q1(3), PARAMS, path=["s0"])
        stats2 = deployment.simulator.run(Trace(syn_stream(5, start=0.01)))
        assert stats1.dropped == stats2.dropped == 0
        assert switch.is_forwarding(at=0.0)
        assert not switch.reboots

    def test_install_takes_effect_immediately(self):
        deployment = build_deployment(linear(1), array_size=4096)
        deployment.simulator.run(Trace(syn_stream(10)))  # before: no query
        assert deployment.analyzer.message_count == 0
        deployment.controller.install_query(q1(3), PARAMS, path=["s0"])
        deployment.simulator.run(Trace(syn_stream(10, start=0.02)))
        assert deployment.analyzer.message_count == 1

    def test_remove_stops_monitoring(self):
        deployment = build_deployment(linear(1), array_size=4096)
        deployment.controller.install_query(q1(2), PARAMS, path=["s0"])
        deployment.simulator.run(Trace(syn_stream(3)))
        before = deployment.analyzer.message_count
        deployment.controller.remove_query("dyn.q1")
        deployment.simulator.run(Trace(syn_stream(10, start=0.02)))
        assert deployment.analyzer.message_count == before

    def test_update_swaps_threshold(self):
        deployment = build_deployment(linear(1), array_size=4096)
        deployment.controller.install_query(q1(3), PARAMS, path=["s0"])
        deployment.controller.update_query(q1(100), PARAMS, path=["s0"])
        deployment.simulator.run(Trace(syn_stream(50)))
        # New threshold (100) never crossed: no reports.
        assert len(deployment.analyzer.reports) == 0


class TestOperationLatency:
    def test_all_library_queries_under_20ms(self):
        deployment = build_deployment(linear(1), array_size=1 << 14)
        params = QueryParams(cm_depth=2, bf_hashes=3,
                             reduce_registers=512, distinct_registers=512)
        for name in [f"Q{i}" for i in range(1, 10)]:
            query = build_query(name, QueryThresholds())
            result = deployment.controller.install_query(
                query, params, path=["s0"]
            )
            removal = deployment.controller.remove_query(name)
            assert result.delay_s < 0.020, name
            assert removal.delay_s < 0.020, name

    def test_sonata_equivalent_update_is_seconds(self):
        """The same operation on Sonata reboots the switch for seconds."""
        from repro.baselines.sonata import (
            SWITCH_P4_DEFAULT_ENTRIES,
            interruption_delay,
        )

        sonata = interruption_delay(SWITCH_P4_DEFAULT_ENTRIES)
        deployment = build_deployment(linear(1), array_size=4096)
        newton = deployment.controller.install_query(
            q1(3), PARAMS, path=["s0"]
        ).delay_s
        assert sonata / newton > 100  # orders of magnitude apart


class TestDrillDown:
    def test_reactive_query_refinement(self):
        """The paper's motivating workflow: detect an anomaly with a broad
        query, then dynamically install a drill-down query scoped to the
        victim — without touching the switch program."""
        from repro.core.ast import CmpOp, FieldPredicate

        deployment = build_deployment(linear(1), array_size=1 << 13)
        deployment.controller.install_query(q1(5), PARAMS, path=["s0"])
        deployment.simulator.run(Trace(syn_stream(8, dip=77)))
        detections = deployment.analyzer.detections("dyn.q1")
        assert detections[0] == [(77,)]

        drill = (
            Query("dyn.drill")
            .filter(
                FieldPredicate("proto", CmpOp.EQ, 6),
                FieldPredicate("tcp_flags", CmpOp.EQ, 2),
                FieldPredicate("dip", CmpOp.EQ, 77),
            )
            .map("sip")
            .reduce("sip")
            .where(ge=2)
        )
        deployment.controller.install_query(drill, PARAMS, path=["s0"])
        attackers = [
            Packet(sip=5, dip=77, proto=6, tcp_flags=2, ts=0.02 + i * 1e-4,
                   src_host="h_src0", dst_host="h_dst0")
            for i in range(3)
        ]
        deployment.simulator.run(Trace(attackers))
        drill_hits = deployment.analyzer.detections("dyn.drill")
        assert drill_hits[0] == [(5,)]
