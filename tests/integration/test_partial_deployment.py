"""Partial deployment (paper §7): only some switches run Newton.

Legacy switches forward traffic (carrying the SP header as opaque bytes)
but host no Newton component.  Placement skips them without advancing the
slice depth, so a sliced query still completes across the Newton-enabled
hops of any path.
"""

import pytest

from repro.core.compiler import QueryParams
from repro.core.packet import Packet
from repro.core.placement import PlacementError, place_slices
from repro.core.query import Query
from repro.network.deployment import build_deployment
from repro.network.topology import linear
from repro.traffic.traces import Trace

PARAMS = QueryParams(cm_depth=2, reduce_registers=256,
                     distinct_registers=256)


def q1(threshold=3):
    return (
        Query("pd.q1")
        .filter(proto=6, tcp_flags=2)
        .map("dip")
        .reduce("dip")
        .where(ge=threshold)
    )


def syn_stream(n):
    return Trace([
        Packet(sip=i + 1, dip=9, proto=6, tcp_flags=2, ts=i * 1e-3,
               src_host="h_src0", dst_host="h_dst0")
        for i in range(n)
    ])


class TestPlacementWithTransit:
    def test_transit_nodes_host_nothing(self):
        topo = linear(4)  # s0 - s1 - s2 - s3, with s1 legacy
        result = place_slices(topo.neighbor_map(), ["s0"], num_slices=2,
                              method="dfs", transit=["s1"])
        assert result.slices_at("s0") == (0,)
        assert result.slices_at("s1") == ()
        assert result.slices_at("s2") == (1,)  # depth 2 in Newton hops

    def test_layered_agrees_on_chain(self):
        topo = linear(5)
        kwargs = dict(edge_switches=["s0"], num_slices=3,
                      transit=["s1", "s3"])
        dfs = place_slices(topo.neighbor_map(), method="dfs", **kwargs)
        layered = place_slices(topo.neighbor_map(), method="layered",
                               **kwargs)
        assert dfs.assignments == layered.assignments

    def test_transit_edge_rejected(self):
        topo = linear(2)
        with pytest.raises(PlacementError):
            place_slices(topo.neighbor_map(), ["s0"], 1, transit=["s0"])


class TestLegacySwitches:
    def test_legacy_switch_refuses_rules(self):
        deployment = build_deployment(linear(2),
                                      newton_switches=["s0"])
        with pytest.raises(RuntimeError):
            deployment.controller.install_query(
                q1(), PARAMS, path=["s1"]
            )

    def test_legacy_switch_forwards_without_monitoring(self):
        deployment = build_deployment(linear(2),
                                      newton_switches=["s0"])
        stats = deployment.simulator.run(syn_stream(5))
        assert stats.delivered == 5
        assert stats.total_reports == 0


class TestEndToEnd:
    def test_cqe_across_a_legacy_gap(self):
        """Newton on s0 and s2, legacy s1 in between: the SP header rides
        through and the query completes on the far Newton switch —
        generalising §7's 'adjacent Newton-enabled switches' requirement.
        """
        topo = linear(3)
        deployment = build_deployment(
            topo, num_stages=3, array_size=256,
            newton_switches=["s0", "s2"],
        )
        result = deployment.controller.install_query(
            q1(), PARAMS, topology=topo, edge_switches=["s0"],
            stages_per_switch=3,
        )
        placement = result.placements["pd.q1"]
        assert placement.slices_at("s0") == (0,)
        assert placement.slices_at("s1") == ()
        assert placement.slices_at("s2") == (1,)
        stats = deployment.simulator.run(syn_stream(5))
        assert stats.total_reports == 1
        assert list(stats.reports_by_switch) == ["s2"]
        assert deployment.analyzer.results("pd.q1")[0] == {(9,): 3}

    def test_single_switch_queries_unaffected(self):
        topo = linear(3)
        deployment = build_deployment(
            topo, num_stages=12, array_size=512,
            newton_switches=["s0"],
        )
        deployment.controller.install_query(
            q1(), PARAMS, topology=topo, edge_switches=["s0"],
        )
        deployment.simulator.run(syn_stream(5))
        assert deployment.analyzer.results("pd.q1")[0] == {(9,): 3}
