"""Every experiment harness runs at reduced scale and keeps its shape."""

import pytest

from repro.experiments.exp_fig7 import figure7, render_figure7
from repro.experiments.exp_fig10 import figure10a, figure10b, render_figure10
from repro.experiments.exp_fig11 import figure11, render_figure11
from repro.experiments.exp_fig13 import figure13, render_figure13
from repro.experiments.exp_fig15 import (
    figure15,
    figure15_sonata,
    render_figure15,
)
from repro.experiments.exp_fig16 import figure16, render_figure16
from repro.experiments.exp_fig17 import figure17a, figure17b, render_figure17
from repro.experiments.exp_table3 import table3, render_table3


class TestTable3:
    def test_rows_complete(self):
        rows = table3()
        categories = {r.category for r in rows}
        assert categories == {"Per-stage", "Per-module", "Per-primitive"}
        assert len(rows) == 10

    def test_compact_is_4x_baseline(self):
        rows = {(r.category, r.metric): r for r in table3()}
        base = rows[("Per-stage", "Baseline")].values
        compact = rows[("Per-stage", "Compact Module Layout")].values
        for name, value in base.items():
            assert compact[name] == pytest.approx(4 * value)

    def test_render(self):
        assert "Per-primitive" in render_table3(table3())


class TestFigure7:
    def test_paper_minimums_hold(self):
        rows = figure7()
        # Paper: >42.4% module reduction — reproduced exactly (Q3).
        assert min(r.module_reduction_pct for r in rows) >= 42.39
        # Paper: >69.7% stage reduction.  Q3 matches it exactly; Q8 lands
        # at 69.0% because our byte-sum threshold adds a report-dedup flag
        # suite the paper's Q8 does not account for (see EXPERIMENTS.md).
        assert min(r.stage_reduction_pct for r in rows) >= 68.9
        q3 = next(r for r in rows if r.query == "Q3")
        assert q3.stage_reduction_pct == pytest.approx(69.7, abs=0.05)
        assert len(rows) == 9

    def test_render(self):
        assert "paper" in render_figure7(figure7())


class TestFigure10:
    def test_shapes(self):
        a = figure10a()
        assert a.sonata_outage_s == pytest.approx(7.5, abs=0.2)
        b = figure10b()
        assert b.delay_s == sorted(b.delay_s)
        assert "Sonata outage" in render_figure10(a, b)


class TestFigure11:
    def test_small_run_under_20ms(self):
        rows = figure11(repetitions=3)
        assert len(rows) == 9
        for row in rows:
            assert max(row.install_ms) < 20
            assert max(row.remove_ms) < 20
        assert "Q1" in render_figure11(rows)


class TestFigure13:
    def test_newton_flat_others_linear(self):
        series = {s.system: s.messages for s in figure13(
            hop_counts=(1, 2, 3), n_packets=3000, duration_s=0.2
        )}
        newton = series["Newton"]
        assert newton[1] == newton[2] == newton[3]
        for system in ("Sonata", "TurboFlow", "*Flow", "FlowRadar"):
            assert series[system][3] == 3 * series[system][1]
        assert newton[3] < series["TurboFlow"][3]

    def test_render(self):
        rendered = render_figure13(
            figure13(hop_counts=(1, 2), n_packets=2000, duration_s=0.2)
        )
        assert "Newton" in rendered


class TestFigure15:
    def test_monotone_improvement(self):
        for row in figure15():
            modules = [row.levels[l][0] for l in
                       ("baseline", "+Opt.1", "+Opt.2", "+Opt.3")]
            stages = [row.levels[l][1] for l in
                      ("baseline", "+Opt.1", "+Opt.2", "+Opt.3")]
            assert modules == sorted(modules, reverse=True)
            assert stages == sorted(stages, reverse=True)

    def test_sonata_comparison(self):
        sonata = figure15_sonata()
        rows = {r.query: r for r in figure15()}
        for name, (tables, stages) in sonata.items():
            assert rows[name].levels["+Opt.3"][1] < stages

    def test_render(self):
        assert "Sonata comparison" in render_figure15(
            figure15(), figure15_sonata()
        )


class TestFigure16:
    def test_p_newton_flat(self):
        points = figure16(counts=(1, 10, 25), validate_install=True)
        assert points[0].p_newton_modules == points[-1].p_newton_modules
        assert points[0].p_newton_stages == points[-1].p_newton_stages
        assert points[-1].s_newton_modules == 25 * points[0].s_newton_modules
        # Measured rules grow linearly with query count.
        assert points[-1].p_newton_rules == 25 * points[0].p_newton_rules
        assert "P-Newton" in render_figure16(points)


class TestFigure17:
    def test_more_slices_more_entries(self):
        points = figure17a(stage_budgets=(10, 3, 2))
        by_topo = {}
        for p in points:
            by_topo.setdefault(p.topology, []).append(p)
        for topo_points in by_topo.values():
            totals = [p.total_entries for p in topo_points]
            assert totals == sorted(totals)

    def test_average_stabilises_with_scale(self):
        points = figure17b(arities=(4, 8), stages_per_switch=4)
        assert points[0].average_entries == pytest.approx(
            points[1].average_entries, rel=0.05
        )
        totals = [p.total_entries for p in points]
        switches = [p.num_switches for p in points]
        assert totals[1] / totals[0] == pytest.approx(
            switches[1] / switches[0], rel=0.05
        )

    def test_render(self):
        assert "Figure 17(b)" in render_figure17(
            figure17a(stage_budgets=(10, 2)), figure17b(arities=(4,))
        )
