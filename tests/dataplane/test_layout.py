"""Module layout tests (naive vs compact, dependency rules)."""

import pytest

from repro.dataplane.layout import (
    LayoutKind,
    ModuleLayout,
    WRITE_READ_DEPENDENCIES,
    can_share_stage,
)
from repro.dataplane.module_types import MODULE_ORDER, ModuleType


class TestCompactLayout:
    def test_four_modules_per_stage(self):
        layout = ModuleLayout(num_stages=3, kind=LayoutKind.COMPACT)
        for stage in range(3):
            assert set(layout.stage_slots(stage)) == set(MODULE_ORDER)

    def test_module_count(self):
        layout = ModuleLayout(num_stages=12)
        assert len(layout.modules()) == 48

    def test_state_banks_enumerated(self):
        layout = ModuleLayout(num_stages=5)
        assert len(layout.state_banks()) == 5

    def test_stage_bounds_checked(self):
        layout = ModuleLayout(num_stages=2)
        with pytest.raises(IndexError):
            layout.stage_slots(2)

    def test_instance_ids_unique(self):
        layout = ModuleLayout(num_stages=4)
        ids = [m.instance_id for m in layout.modules()]
        assert len(ids) == len(set(ids))


class TestNaiveLayout:
    def test_one_module_per_stage(self):
        layout = ModuleLayout(num_stages=8, kind=LayoutKind.NAIVE)
        for stage in range(8):
            assert len(layout.stage_slots(stage)) == 1

    def test_cycles_module_types(self):
        layout = ModuleLayout(num_stages=8, kind=LayoutKind.NAIVE)
        types = [next(iter(layout.stage_slots(s))) for s in range(8)]
        assert types[:4] == list(MODULE_ORDER)
        assert types[4:] == list(MODULE_ORDER)

    def test_naive_uses_quarter_of_registers(self):
        """The §4.2 claim: naive layout reaches at most 25% of registers."""
        naive = ModuleLayout(num_stages=12, kind=LayoutKind.NAIVE)
        compact = ModuleLayout(num_stages=12, kind=LayoutKind.COMPACT)
        assert len(naive.state_banks()) == len(compact.state_banks()) // 4


class TestResourceAudit:
    def test_compact_stage_usage_below_capacity(self):
        layout = ModuleLayout(num_stages=1)
        from repro.dataplane.resources import STAGE_CAPACITY

        assert layout.stage_usage(0).fits_within(STAGE_CAPACITY)

    def test_total_usage_scales_with_stages(self):
        one = ModuleLayout(num_stages=1).total_usage()
        four = ModuleLayout(num_stages=4).total_usage()
        assert four.sram == pytest.approx(4 * one.sram)


class TestDependencies:
    def test_same_set_writer_reader_conflict(self):
        for writer, reader in WRITE_READ_DEPENDENCIES:
            assert not can_share_stage((writer, 0), (reader, 0))

    def test_different_sets_never_conflict(self):
        for writer, reader in WRITE_READ_DEPENDENCIES:
            assert can_share_stage((writer, 0), (reader, 1))

    def test_independent_modules_share(self):
        assert can_share_stage(
            (ModuleType.KEY_SELECTION, 0), (ModuleType.RESULT_PROCESS, 0)
        )


class TestValidation:
    def test_rejects_zero_stages(self):
        with pytest.raises(ValueError):
            ModuleLayout(num_stages=0)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ModuleLayout(num_stages=1, kind="diagonal")

    def test_describe_lists_stages(self):
        text = ModuleLayout(num_stages=2).describe()
        assert "stage 0" in text and "stage 1" in text
