"""Liveness queries must not scan the outage history (regression).

``is_forwarding`` used to walk every RebootRecord per call, making
per-packet liveness O(reboot count).  It now answers from merged
outage intervals: O(1) against the most recent interval, binary search
otherwise.
"""

import time

import numpy as np
import pytest

from repro.dataplane.switch import Switch
from repro.engine.vector import _forwarding_mask


class NoIterList(list):
    """Guard: appending is fine, but any scan fails the test."""

    def __iter__(self):
        raise AssertionError(
            "liveness query iterated the reboot history"
        )


def make_switch():
    return Switch("s0", num_stages=3, reboot_base_s=0.001,
                  entry_restore_s=0.0)


class TestIntervalMerging:
    def test_forwarding_inside_and_outside_an_outage(self):
        switch = make_switch()
        switch.reboot(1.0, 0)  # down [1.0, 1.001)
        assert switch.is_forwarding(0.5)
        assert not switch.is_forwarding(1.0005)
        assert switch.is_forwarding(1.01)
        assert switch.is_alive(1.01)

    def test_overlapping_outages_merge(self):
        switch = make_switch()
        switch.crash(1.0, down_for=0.5)
        switch.crash(1.2, down_for=0.5)  # overlaps: merged [1.0, 1.7)
        assert switch.outage_intervals() == [(1.0, 1.7)]
        assert not switch.is_forwarding(1.65)
        assert switch.is_forwarding(1.75)

    def test_disjoint_outages_stay_separate(self):
        switch = make_switch()
        switch.crash(1.0, down_for=0.1)
        switch.crash(3.0, down_for=0.1)
        assert switch.outage_intervals() == [(1.0, 1.1), (3.0, 3.1)]
        assert switch.is_forwarding(2.0)
        assert not switch.is_forwarding(3.05)

    def test_out_of_order_outage_insertion(self):
        switch = make_switch()
        switch.crash(5.0, down_for=0.1)
        switch.crash(1.0, down_for=0.1)
        assert switch.outage_intervals() == [(1.0, 1.1), (5.0, 5.1)]
        assert not switch.is_forwarding(1.05)
        assert switch.is_forwarding(4.0)

    def test_permanent_crash_never_forwards_again(self):
        switch = make_switch()
        switch.crash(1.0)  # no down_for: down for good
        assert not switch.is_forwarding(1.5)
        assert not switch.is_forwarding(1e9)


class TestNoHistoryScan:
    def test_liveness_never_iterates_reboot_history(self):
        switch = make_switch()
        switch.reboots = NoIterList()
        switch.crashes = NoIterList()
        for i in range(100):
            switch.reboot(float(i), 0)
        # Any per-call scan of the histories would raise.
        for i in range(100):
            switch.is_forwarding(i + 0.5)
            switch.heartbeat(i + 0.5)

    def test_10k_reboots_liveness_stays_sublinear(self):
        """1k liveness probes after 10k reboots must not cost 10M
        record visits.  Generous bound: scanning implementations are
        ~100x over it, the interval version is ~100x under."""
        switch = make_switch()
        for i in range(10_000):
            switch.reboot(float(i), 0)
        probes = [i * 9.99 + 0.5 for i in range(1_000)]
        start = time.perf_counter()
        for ts in probes:
            switch.is_forwarding(ts)
        elapsed = time.perf_counter() - start
        assert elapsed < 0.5, (
            f"1k probes over 10k reboots took {elapsed:.2f}s — "
            f"liveness is scanning the history again"
        )

    def test_latest_outage_fast_path(self):
        """Probes at/after the newest interval (the per-packet common
        case) answer without bisecting."""
        switch = make_switch()
        for i in range(50):
            switch.crash(float(i), down_for=0.5)
        assert switch.is_forwarding(49.9)   # after last outage end
        assert not switch.is_forwarding(49.2)  # inside last outage


class TestVectorMaskEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_mask_matches_scalar_liveness(self, seed):
        rng = np.random.default_rng(seed)
        switch = make_switch()
        for start in sorted(rng.uniform(0, 100, size=20)):
            switch.crash(float(start), down_for=float(rng.uniform(0.1, 5)))
        ts = rng.uniform(-1, 110, size=500)
        mask = _forwarding_mask(switch, ts)
        expected = np.array([switch.is_forwarding(t) for t in ts])
        np.testing.assert_array_equal(mask, expected)

    def test_mask_all_true_without_outages(self):
        switch = make_switch()
        ts = np.linspace(0, 1, 17)
        assert _forwarding_mask(switch, ts).all()
