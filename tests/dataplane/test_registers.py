"""Register array allocation and stateful execution."""

import pytest

from repro.dataplane.alu import StatefulOp
from repro.dataplane.registers import AllocationError, RegisterArray


class TestAllocation:
    def test_first_fit(self):
        array = RegisterArray(100)
        a = array.allocate(("q1", 0), 40)
        b = array.allocate(("q2", 0), 40)
        assert a.offset == 0
        assert b.offset == 40
        assert array.free_registers() == 20

    def test_exhaustion_raises(self):
        array = RegisterArray(64)
        array.allocate(("q1", 0), 64)
        with pytest.raises(AllocationError):
            array.allocate(("q2", 0), 1)

    def test_release_reclaims_gap(self):
        array = RegisterArray(100)
        array.allocate(("a", 0), 50)
        array.allocate(("b", 0), 50)
        array.release(("a", 0))
        again = array.allocate(("c", 0), 50)
        assert again.offset == 0

    def test_release_zeroes_cells(self):
        array = RegisterArray(10)
        array.allocate(("a", 0), 10)
        array.execute(("a", 0), 3, StatefulOp.ADD, 5)
        array.release(("a", 0))
        array.allocate(("b", 0), 10)
        old, _ = array.execute(("b", 0), 3, StatefulOp.READ, 0)
        assert old == 0

    def test_double_allocation_rejected(self):
        array = RegisterArray(10)
        array.allocate(("a", 0), 5)
        with pytest.raises(AllocationError):
            array.allocate(("a", 0), 2)

    def test_release_unknown_owner(self):
        with pytest.raises(AllocationError):
            RegisterArray(8).release(("ghost", 0))

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            RegisterArray(0)
        with pytest.raises(ValueError):
            RegisterArray(8).allocate(("a", 0), 0)


class TestExecution:
    def test_add_accumulates(self):
        array = RegisterArray(16)
        array.allocate(("q", 0), 16)
        for expected in range(1, 5):
            old, new = array.execute(("q", 0), 3, StatefulOp.ADD, 1)
            assert new == expected
            assert old == expected - 1

    def test_index_wraps_within_slice(self):
        array = RegisterArray(16)
        array.allocate(("q", 0), 4)
        array.execute(("q", 0), 1, StatefulOp.ADD, 1)
        _, again = array.execute(("q", 0), 5, StatefulOp.ADD, 1)  # 5 % 4 == 1
        assert again == 2

    def test_isolation_between_owners(self):
        array = RegisterArray(32)
        array.allocate(("a", 0), 16)
        array.allocate(("b", 0), 16)
        array.execute(("a", 0), 0, StatefulOp.ADD, 100)
        old, _ = array.execute(("b", 0), 0, StatefulOp.READ, 0)
        assert old == 0

    def test_or_test_and_set(self):
        array = RegisterArray(8)
        array.allocate(("q", 0), 8)
        old1, new1 = array.execute(("q", 0), 2, StatefulOp.OR, 1)
        old2, new2 = array.execute(("q", 0), 2, StatefulOp.OR, 1)
        assert (old1, new1) == (0, 1)
        assert (old2, new2) == (1, 1)

    def test_unallocated_execution_rejected(self):
        with pytest.raises(AllocationError):
            RegisterArray(8).execute(("q", 0), 0, StatefulOp.ADD, 1)


class TestWindows:
    def test_reset_slice(self):
        array = RegisterArray(8)
        array.allocate(("q", 0), 8)
        array.execute(("q", 0), 0, StatefulOp.ADD, 9)
        array.reset_slice(("q", 0))
        old, _ = array.execute(("q", 0), 0, StatefulOp.READ, 0)
        assert old == 0

    def test_reset_all(self):
        array = RegisterArray(8)
        array.allocate(("q", 0), 4)
        array.execute(("q", 0), 0, StatefulOp.ADD, 9)
        array.reset_all()
        assert array.read_slice(("q", 0)).sum() == 0

    def test_occupancy(self):
        array = RegisterArray(100)
        assert array.occupancy() == 0.0
        array.allocate(("q", 0), 25)
        assert array.occupancy() == pytest.approx(0.25)
