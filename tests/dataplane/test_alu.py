"""Stateful and result ALU semantics."""

import pytest

from repro.dataplane.alu import (
    REGISTER_MAX,
    ResultOp,
    StatefulOp,
    apply_result,
    apply_stateful,
)


class TestStatefulAlu:
    def test_read_leaves_value(self):
        assert apply_stateful(StatefulOp.READ, 7, 99) == 7

    def test_add(self):
        assert apply_stateful(StatefulOp.ADD, 10, 5) == 15

    def test_add_saturates(self):
        assert apply_stateful(StatefulOp.ADD, REGISTER_MAX, 10) == REGISTER_MAX

    def test_or_sets_bits(self):
        assert apply_stateful(StatefulOp.OR, 0b0101, 0b0011) == 0b0111

    def test_max(self):
        assert apply_stateful(StatefulOp.MAX, 4, 9) == 9
        assert apply_stateful(StatefulOp.MAX, 9, 4) == 9


class TestResultAlu:
    def test_pass_overwrites(self):
        assert apply_result(ResultOp.PASS, 100, 7) == 7

    def test_pass_with_none_global(self):
        assert apply_result(ResultOp.PASS, None, 7) == 7

    def test_nop_keeps_global(self):
        assert apply_result(ResultOp.NOP, 5, 99) == 5

    def test_none_state_is_identity(self):
        assert apply_result(ResultOp.MIN, 5, None) == 5
        assert apply_result(ResultOp.ADD, 5, None) == 5

    def test_min_fold(self):
        assert apply_result(ResultOp.MIN, 9, 4) == 4
        assert apply_result(ResultOp.MIN, 4, 9) == 4

    def test_min_loads_when_global_none(self):
        assert apply_result(ResultOp.MIN, None, 12) == 12

    def test_max_fold(self):
        assert apply_result(ResultOp.MAX, 3, 8) == 8

    def test_add_fold_saturates(self):
        assert apply_result(ResultOp.ADD, REGISTER_MAX, 1) == REGISTER_MAX

    def test_sub_floors_at_zero(self):
        assert apply_result(ResultOp.SUB, 3, 10) == 0
        assert apply_result(ResultOp.SUB, 10, 3) == 7
