"""Resource model: Table 3's numbers must fall out of the unit costs."""

import pytest

from repro.dataplane.module_types import MODULE_ORDER, ModuleType
from repro.dataplane.resources import (
    MODULE_COSTS,
    RESOURCE_CATEGORIES,
    STAGE_CAPACITY,
    SWITCH_P4_USAGE,
    ResourceVector,
)


class TestResourceVector:
    def test_addition(self):
        a = ResourceVector(crossbar=1, sram=2)
        b = ResourceVector(crossbar=3, vliw=4)
        c = a + b
        assert c.crossbar == 4 and c.sram == 2 and c.vliw == 4

    def test_scalar_multiplication(self):
        v = ResourceVector(tcam=3) * 2
        assert v.tcam == 6

    def test_fits_within(self):
        small = ResourceVector(sram=1)
        big = ResourceVector(sram=2)
        assert small.fits_within(big)
        assert not big.fits_within(small)

    def test_normalized_by(self):
        v = ResourceVector(crossbar=10)
        basis = ResourceVector(crossbar=100)
        assert v.normalized_by(basis)["crossbar"] == pytest.approx(10.0)

    def test_normalized_by_zero_basis(self):
        pct = ResourceVector(salu=5).normalized_by(ResourceVector())
        assert pct["salu"] == 0.0

    def test_total(self):
        total = ResourceVector.total(
            [ResourceVector(sram=1), ResourceVector(sram=2)]
        )
        assert total.sram == 3


class TestPaperCalibration:
    """Pin the Table 3 percentages the integer costs were recovered from."""

    def test_field_selection_row(self):
        pct = MODULE_COSTS[ModuleType.KEY_SELECTION].normalized_by(
            SWITCH_P4_USAGE
        )
        assert pct["crossbar"] == pytest.approx(0.243, abs=0.002)
        assert pct["sram"] == pytest.approx(0.704, abs=0.002)
        assert pct["vliw"] == pytest.approx(3.521, abs=0.002)
        assert pct["gateway"] == pytest.approx(1.428, abs=0.002)

    def test_hash_calculation_row(self):
        pct = MODULE_COSTS[ModuleType.HASH_CALCULATION].normalized_by(
            SWITCH_P4_USAGE
        )
        assert pct["crossbar"] == pytest.approx(2.682, abs=0.002)
        assert pct["hash_bits"] == pytest.approx(1.589, abs=0.002)

    def test_state_bank_row(self):
        pct = MODULE_COSTS[ModuleType.STATE_BANK].normalized_by(
            SWITCH_P4_USAGE
        )
        assert pct["sram"] == pytest.approx(3.521, abs=0.002)
        assert pct["tcam"] == pytest.approx(2.150, abs=0.002)
        assert pct["salu"] == pytest.approx(5.555, abs=0.002)

    def test_result_process_row(self):
        pct = MODULE_COSTS[ModuleType.RESULT_PROCESS].normalized_by(
            SWITCH_P4_USAGE
        )
        assert pct["tcam"] == pytest.approx(4.301, abs=0.002)
        assert pct["vliw"] == pytest.approx(10.56, abs=0.01)

    def test_compact_stage_is_sum_of_modules(self):
        compact = ResourceVector.total(MODULE_COSTS[t] for t in MODULE_ORDER)
        pct = compact.normalized_by(SWITCH_P4_USAGE)
        assert pct["vliw"] == pytest.approx(16.90, abs=0.01)
        assert pct["sram"] == pytest.approx(4.929, abs=0.002)

    def test_one_of_each_module_fits_a_stage(self):
        compact = ResourceVector.total(MODULE_COSTS[t] for t in MODULE_ORDER)
        assert compact.fits_within(STAGE_CAPACITY)

    def test_fifth_state_bank_does_not_fit(self):
        # The compact layout is maximal: adding a second S to a full stage
        # exceeds the stage's stateful-ALU budget.
        compact = ResourceVector.total(MODULE_COSTS[t] for t in MODULE_ORDER)
        overfull = compact + MODULE_COSTS[ModuleType.STATE_BANK]
        assert not overfull.fits_within(STAGE_CAPACITY)

    def test_all_categories_covered(self):
        assert set(RESOURCE_CATEGORIES) == set(
            SWITCH_P4_USAGE.as_dict().keys()
        )
