"""K/H/S/R module execution engines."""

import pytest

from repro.core.rules import (
    HashMode,
    HConfig,
    KConfig,
    MatchSource,
    ModuleRuleSpec,
    RAction,
    RConfig,
    RMatchEntry,
    SConfig,
)
from repro.dataplane.alu import ResultOp, StatefulOp
from repro.dataplane.hashing import HashFamily
from repro.dataplane.module_types import ModuleType
from repro.dataplane.modules import (
    ExecutionEnv,
    HashCalculationModule,
    KeySelectionModule,
    ResultProcessModule,
    StateBankModule,
    build_module,
)
from repro.dataplane.phv import PhvContext


def make_env(**fields):
    base = {"sip": 1, "dip": 2, "proto": 6, "sport": 10, "dport": 80,
            "tcp_flags": 2, "len": 64, "ttl": 64, "dns_ancount": 0}
    base.update(fields)
    return ExecutionEnv(fields=base, ts=0.0, epoch=0, switch_id="s0",
                        hash_family=HashFamily())


def spec_for(mtype, config, set_id=0, step=0):
    return ModuleRuleSpec(
        qid="q", step=step, module_type=mtype, set_id=set_id, stage=0,
        config=config,
    )


class TestKeySelection:
    def test_selects_masked_fields(self):
        module = KeySelectionModule(0, 0)
        spec = spec_for(ModuleType.KEY_SELECTION, KConfig.select("dip"))
        ctx = PhvContext()
        module.execute(spec, ctx, make_env(dip=0x0A000001))
        assert ctx.set(0).oper_fields == {"dip": 0x0A000001}
        assert ctx.set(0).oper_keys == (0x0A000001).to_bytes(4, "big")

    def test_prefix_mask_conceals_low_bits(self):
        module = KeySelectionModule(0, 0)
        config = KConfig(masks=(("dip", 0xFFFFFF00),))
        ctx = PhvContext()
        module.execute(spec_for(ModuleType.KEY_SELECTION, config), ctx,
                       make_env(dip=0x0A0000FF))
        assert ctx.set(0).oper_fields["dip"] == 0x0A000000

    def test_writes_only_its_set(self):
        module = KeySelectionModule(0, 0)
        spec = spec_for(ModuleType.KEY_SELECTION, KConfig.select("sip"),
                        set_id=1)
        ctx = PhvContext()
        module.execute(spec, ctx, make_env())
        assert ctx.set(0).oper_keys == b""
        assert ctx.set(1).oper_fields == {"sip": 1}

    def test_wrong_module_type_rejected(self):
        module = KeySelectionModule(0, 0)
        with pytest.raises(ValueError):
            module.install(spec_for(ModuleType.HASH_CALCULATION, HConfig()))


class TestHashCalculation:
    def test_hash_mode_in_range(self):
        module = HashCalculationModule(0, 0)
        config = HConfig(seed_index=0, range_size=128)
        ctx = PhvContext()
        ctx.set(0).oper_keys = b"abc"
        module.execute(spec_for(ModuleType.HASH_CALCULATION, config), ctx,
                       make_env())
        assert 0 <= ctx.set(0).hash_result < 128

    def test_direct_mode_forwards_field(self):
        module = HashCalculationModule(0, 0)
        config = HConfig(mode=HashMode.DIRECT, direct_field="dport")
        ctx = PhvContext()
        module.execute(spec_for(ModuleType.HASH_CALCULATION, config), ctx,
                       make_env(dport=53))
        assert ctx.set(0).hash_result == 53

    def test_same_keys_same_hash(self):
        module = HashCalculationModule(0, 0)
        config = HConfig(seed_index=3, range_size=1 << 16)
        results = []
        for _ in range(2):
            ctx = PhvContext()
            ctx.set(0).oper_keys = b"stable"
            module.execute(
                spec_for(ModuleType.HASH_CALCULATION, config), ctx, make_env()
            )
            results.append(ctx.set(0).hash_result)
        assert results[0] == results[1]


class TestStateBank:
    def test_counting(self):
        module = StateBankModule(0, 0, array_size=64)
        config = SConfig(op=StatefulOp.ADD, operand_const=1, slice_size=64)
        spec = spec_for(ModuleType.STATE_BANK, config)
        module.install(spec)
        env = make_env()
        for expected in (1, 2, 3):
            ctx = PhvContext()
            ctx.set(0).hash_result = 5
            module.execute(spec, ctx, env)
            assert ctx.set(0).state_result == expected

    def test_field_operand(self):
        module = StateBankModule(0, 0, array_size=16)
        config = SConfig(op=StatefulOp.ADD, operand_source="field",
                         operand_field="len", slice_size=16)
        spec = spec_for(ModuleType.STATE_BANK, config)
        module.install(spec)
        ctx = PhvContext()
        ctx.set(0).hash_result = 0
        module.execute(spec, ctx, make_env(len=1500))
        assert ctx.set(0).state_result == 1500

    def test_passthrough(self):
        module = StateBankModule(0, 0, array_size=16)
        spec = spec_for(ModuleType.STATE_BANK, SConfig(passthrough=True))
        module.install(spec)
        ctx = PhvContext()
        ctx.set(0).hash_result = 42
        module.execute(spec, ctx, make_env())
        assert ctx.set(0).state_result == 42

    def test_output_old_test_and_set(self):
        module = StateBankModule(0, 0, array_size=16)
        config = SConfig(op=StatefulOp.OR, operand_const=1,
                         output_old=True, slice_size=16)
        spec = spec_for(ModuleType.STATE_BANK, config)
        module.install(spec)
        results = []
        for _ in range(2):
            ctx = PhvContext()
            ctx.set(0).hash_result = 7
            module.execute(spec, ctx, make_env())
            results.append(ctx.set(0).state_result)
        assert results == [0, 1]

    def test_missing_hash_raises(self):
        module = StateBankModule(0, 0, array_size=16)
        spec = spec_for(ModuleType.STATE_BANK, SConfig(slice_size=16))
        module.install(spec)
        with pytest.raises(RuntimeError):
            module.execute(spec, PhvContext(), make_env())

    def test_window_reset(self):
        module = StateBankModule(0, 0, array_size=16)
        spec = spec_for(ModuleType.STATE_BANK, SConfig(slice_size=16))
        module.install(spec)
        ctx = PhvContext()
        ctx.set(0).hash_result = 1
        module.execute(spec, ctx, make_env())
        module.reset_window()
        ctx2 = PhvContext()
        ctx2.set(0).hash_result = 1
        module.execute(spec, ctx2, make_env())
        assert ctx2.set(0).state_result == 1

    def test_remove_releases_registers(self):
        module = StateBankModule(0, 0, array_size=16)
        spec = spec_for(ModuleType.STATE_BANK, SConfig(slice_size=16))
        module.install(spec)
        module.remove(spec.key)
        module.install(spec)  # would fail if registers leaked

    def test_failed_install_rolls_back_rule(self):
        module = StateBankModule(0, 0, array_size=8)
        big = spec_for(ModuleType.STATE_BANK, SConfig(slice_size=64))
        with pytest.raises(Exception):
            module.install(big)
        assert module.rule_count == 0


class TestResultProcess:
    def test_report_action(self):
        module = ResultProcessModule(0, 0)
        config = RConfig(
            source=MatchSource.STATE,
            entries=(RMatchEntry(5, 5, RAction(report=True)),),
            default=RAction(),
        )
        spec = spec_for(ModuleType.RESULT_PROCESS, config)
        ctx = PhvContext()
        ctx.set(0).state_result = 5
        env = make_env()
        module.execute(spec, ctx, env)
        assert len(env.reports) == 1
        assert env.reports[0].qid == "q"

    def test_stop_action(self):
        module = ResultProcessModule(0, 0)
        config = RConfig(default=RAction(stop=True))
        ctx = PhvContext()
        ctx.set(0).state_result = 1
        module.execute(spec_for(ModuleType.RESULT_PROCESS, config), ctx,
                       make_env())
        assert ctx.stopped

    def test_min_fold_into_global(self):
        module = ResultProcessModule(0, 0)
        config = RConfig(default=RAction(result_op=ResultOp.MIN))
        ctx = PhvContext()
        ctx.global_result = 9
        ctx.set(0).state_result = 4
        module.execute(spec_for(ModuleType.RESULT_PROCESS, config), ctx,
                       make_env())
        assert ctx.global_result == 4

    def test_global_source_matching(self):
        module = ResultProcessModule(0, 0)
        config = RConfig(
            source=MatchSource.GLOBAL,
            entries=(RMatchEntry(10, 10, RAction(report=True)),),
            default=RAction(stop=True),
        )
        ctx = PhvContext()
        ctx.global_result = 10
        env = make_env()
        module.execute(spec_for(ModuleType.RESULT_PROCESS, config), ctx, env)
        assert env.reports and not ctx.stopped

    def test_report_sink_invoked(self):
        captured = []
        module = ResultProcessModule(0, 0)
        config = RConfig(default=RAction(report=True))
        env = make_env()
        env.report_sink = captured.append
        ctx = PhvContext()
        module.execute(spec_for(ModuleType.RESULT_PROCESS, config), ctx, env)
        assert len(captured) == 1


class TestFactory:
    def test_build_every_type(self):
        for mtype in ModuleType:
            module = build_module(mtype, instance_id=1, stage=2)
            assert module.module_type is mtype
            assert module.stage == 2

    def test_state_bank_gets_array_size(self):
        module = build_module(ModuleType.STATE_BANK, 0, 0, array_size=99)
        assert module.array.size == 99
