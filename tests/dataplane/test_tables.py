"""Match-action table tests."""

import pytest

from repro.dataplane.tables import (
    ExactMatchTable,
    TableFullError,
    TernaryRule,
    TernaryTable,
)


class TestExactMatchTable:
    def test_insert_lookup_remove(self):
        table = ExactMatchTable("t", capacity=4)
        table.insert(("q1", 0), "cfg")
        assert table.lookup(("q1", 0)) == "cfg"
        assert ("q1", 0) in table
        assert table.remove(("q1", 0)) == "cfg"
        assert table.lookup(("q1", 0)) is None

    def test_capacity_enforced(self):
        table = ExactMatchTable("t", capacity=2)
        table.insert(1, "a")
        table.insert(2, "b")
        with pytest.raises(TableFullError):
            table.insert(3, "c")

    def test_update_in_place_does_not_count_twice(self):
        table = ExactMatchTable("t", capacity=1)
        table.insert(1, "a")
        table.insert(1, "b")  # overwrite allowed at capacity
        assert table.lookup(1) == "b"
        assert len(table) == 1

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            ExactMatchTable("t").remove("ghost")

    def test_free_counts(self):
        table = ExactMatchTable("t", capacity=3)
        table.insert(1, "a")
        assert table.free == 2


def _rule(match, priority=0, action="hit"):
    return TernaryRule.build(match, priority, action)


class TestTernaryRule:
    def test_exact_match(self):
        rule = _rule({"dport": (53, 0xFFFF)})
        assert rule.matches({"dport": 53})
        assert not rule.matches({"dport": 54})

    def test_masked_match(self):
        rule = _rule({"sip": (0x0A000000, 0xFF000000)})  # 10.0.0.0/8
        assert rule.matches({"sip": 0x0A636363})
        assert not rule.matches({"sip": 0x0B000000})

    def test_missing_field_treated_as_zero(self):
        rule = _rule({"tcp_flags": (0, 0xFF)})
        assert rule.matches({})

    def test_empty_match_is_wildcard(self):
        rule = _rule({})
        assert rule.matches({"anything": 42})


class TestTernaryTable:
    def test_priority_order(self):
        table = TernaryTable("init")
        low = _rule({"proto": (6, 0xFF)}, priority=1, action="low")
        high = _rule({"proto": (6, 0xFF)}, priority=9, action="high")
        table.insert(low)
        table.insert(high)
        hit = table.lookup({"proto": 6})
        assert hit is not None and hit.action == "high"

    def test_lookup_all_returns_every_match(self):
        table = TernaryTable("init")
        table.insert(_rule({"proto": (6, 0xFF)}, action="tcp"))
        table.insert(_rule({}, action="any"))
        table.insert(_rule({"proto": (17, 0xFF)}, action="udp"))
        actions = {r.action for r in table.lookup_all({"proto": 6})}
        assert actions == {"tcp", "any"}

    def test_capacity(self):
        table = TernaryTable("init", capacity=1)
        table.insert(_rule({}, action="a"))
        with pytest.raises(TableFullError):
            table.insert(_rule({}, action="b"))

    def test_remove(self):
        table = TernaryTable("init")
        rule = _rule({"proto": (6, 0xFF)})
        table.insert(rule)
        table.remove(rule)
        assert table.lookup({"proto": 6}) is None

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            TernaryTable("init").remove(_rule({}))

    def test_remove_if(self):
        table = TernaryTable("init")
        table.insert(_rule({}, action="q1"))
        table.insert(_rule({}, action="q2"))
        removed = table.remove_if(lambda r: r.action == "q1")
        assert removed == 1
        assert len(table) == 1

    def test_no_match_returns_none(self):
        table = TernaryTable("init")
        table.insert(_rule({"proto": (6, 0xFF)}))
        assert table.lookup({"proto": 17}) is None
