"""Pipeline-level tests: dispatch, slices, windows, rollback."""

import pytest

from repro.core.compiler import QueryParams, compile_query, slice_compiled
from repro.core.packet import Packet, Proto, TcpFlags
from repro.core.query import Query
from repro.dataplane.pipeline import NewtonPipeline
from repro.network.snapshot import SnapshotHeader


def q1(threshold=3):
    return (
        Query("p.q1")
        .filter(proto=Proto.TCP, tcp_flags=TcpFlags.SYN)
        .map("dip")
        .reduce("dip")
        .where(ge=threshold)
    )


def small_params():
    return QueryParams(cm_depth=2, reduce_registers=128,
                       distinct_registers=128)


def syn(sip, dip, ts=0.0):
    return Packet(sip=sip, dip=dip, proto=6, tcp_flags=2, ts=ts)


def install(pipeline, query, threshold=3, stages=None):
    compiled = compile_query(query, small_params(),
                             hash_family=pipeline.hash_family)
    slices = slice_compiled(compiled, stages or pipeline.layout.num_stages)
    for s in slices:
        pipeline.install_slice(s)
    return compiled, slices


class TestSingleSwitch:
    def test_report_at_threshold_crossing(self):
        pipeline = NewtonPipeline(num_stages=12, array_size=256)
        install(pipeline, q1(threshold=3))
        reports = []
        for i in range(5):
            result = pipeline.process(syn(sip=i + 1, dip=9))
            reports.extend(result.reports)
        assert len(reports) == 1
        assert reports[0].payload["global_result"] == 3
        assert reports[0].payload["set0_fields"] == {"dip": 9}

    def test_non_matching_traffic_ignored(self):
        pipeline = NewtonPipeline(num_stages=12, array_size=256)
        install(pipeline, q1())
        result = pipeline.process(Packet(proto=17, dip=9))
        assert not result.initiated and not result.reports

    def test_window_reset_requires_recrossing(self):
        pipeline = NewtonPipeline(num_stages=12, array_size=256)
        install(pipeline, q1(threshold=2))
        pipeline.process(syn(1, 9))
        assert pipeline.process(syn(2, 9)).reports
        pipeline.advance_window()
        pipeline.process(syn(3, 9))
        assert pipeline.process(syn(4, 9)).reports  # crossing again

    def test_reports_tag_epoch(self):
        pipeline = NewtonPipeline(num_stages=12, array_size=256)
        install(pipeline, q1(threshold=1))
        pipeline.advance_window()
        pipeline.advance_window()
        result = pipeline.process(syn(1, 9))
        assert result.reports[0].epoch == 2


class TestRuleManagement:
    def test_rule_count_and_removal(self):
        pipeline = NewtonPipeline(num_stages=12, array_size=256)
        compiled, _ = install(pipeline, q1())
        assert pipeline.rule_count == compiled.rule_count
        removed = pipeline.remove_query("p.q1")
        assert removed == compiled.rule_count
        assert pipeline.rule_count == 0

    def test_duplicate_install_rejected(self):
        pipeline = NewtonPipeline(num_stages=12, array_size=256)
        _, slices = install(pipeline, q1())
        with pytest.raises(ValueError):
            pipeline.install_slice(slices[0])

    def test_failed_install_rolls_back(self):
        # Arrays too small for the requested slices: nothing must remain.
        pipeline = NewtonPipeline(num_stages=12, array_size=16)
        compiled = compile_query(q1(), small_params(),
                                 hash_family=pipeline.hash_family)
        with pytest.raises(Exception):
            pipeline.install_slice(
                slice_compiled(compiled, 12)[0]
            )
        assert pipeline.rule_count == 0
        assert not pipeline.installed_qids()

    def test_removal_after_traffic(self):
        pipeline = NewtonPipeline(num_stages=12, array_size=256)
        install(pipeline, q1(threshold=1))
        pipeline.process(syn(1, 9))
        pipeline.remove_query("p.q1")
        result = pipeline.process(syn(2, 9))
        assert not result.initiated


class TestEpochVersioning:
    def _staged(self, threshold=1):
        pipeline = NewtonPipeline(num_stages=12, array_size=256)
        compiled = compile_query(q1(threshold=threshold), small_params(),
                                 hash_family=pipeline.hash_family)
        for s in slice_compiled(compiled, pipeline.layout.num_stages):
            pipeline.stage_slice(s, epoch=1)
        return pipeline, compiled

    def test_staged_rules_invisible_until_flip(self):
        pipeline, compiled = self._staged()
        assert pipeline.staged_rule_count == compiled.rule_count
        result = pipeline.process(syn(1, 9))
        assert not result.initiated, "shadow bank must not serve traffic"
        assert pipeline.commit_epoch(1)
        result = pipeline.process(syn(2, 9))
        assert result.initiated == ["p.q1"]
        assert pipeline.staged_rule_count == 0

    def test_stage_rejects_non_future_epoch(self):
        pipeline, _ = self._staged()
        pipeline.commit_epoch(1)
        compiled = compile_query(q1(threshold=9), small_params(),
                                 hash_family=pipeline.hash_family)
        with pytest.raises(ValueError):
            pipeline.stage_slice(slice_compiled(compiled, 12)[0], epoch=1)

    def test_abort_staged_restores_prior_state(self):
        pipeline, _ = self._staged()
        dropped = pipeline.abort_staged()
        assert dropped > 0
        assert pipeline.staged_rule_count == 0
        assert pipeline.rule_count == 0
        assert pipeline.rule_epoch == 0

    def test_abort_staged_clears_retire_marks(self):
        """An aborted make-before-break update must also unmark the old
        version it intended to retire — it keeps serving."""
        pipeline = NewtonPipeline(num_stages=12, array_size=256)
        install(pipeline, q1(threshold=1))
        marked = pipeline.retire_query("p.q1", epoch=1)
        assert marked > 0
        pipeline.abort_staged()
        # The retire mark is gone: flipping to epoch 1 anyway must leave
        # the old version serving, with nothing awaiting GC.
        pipeline.commit_epoch(1)
        assert pipeline.retired_rule_count == 0
        result = pipeline.process(syn(1, 9))
        assert result.initiated == ["p.q1"]

    def test_retired_rules_serve_until_gc(self):
        pipeline = NewtonPipeline(num_stages=12, array_size=256)
        compiled, _ = install(pipeline, q1(threshold=1))
        pipeline.retire_query("p.q1", epoch=1)
        # Still at epoch 0: the retiring version keeps serving.
        assert pipeline.process(syn(1, 9)).initiated == ["p.q1"]
        pipeline.commit_epoch(1)
        assert not pipeline.process(syn(2, 9)).initiated
        # Physically resident (double occupancy) until GC reclaims it.
        assert pipeline.rule_count == compiled.rule_count
        assert pipeline.gc_retired() == compiled.rule_count
        assert pipeline.rule_count == 0

    def test_rollback_epoch_reactivates_old_bank(self):
        pipeline = NewtonPipeline(num_stages=12, array_size=256)
        install(pipeline, q1(threshold=1))
        pipeline.retire_query("p.q1", epoch=1)
        pipeline.commit_epoch(1)
        assert not pipeline.process(syn(1, 9)).initiated
        pipeline.rollback_epoch(0)
        assert pipeline.process(syn(2, 9)).initiated == ["p.q1"]

    def test_ingress_stamp_pins_the_serving_epoch(self):
        """A downstream switch must serve the bank stamped at ingress even
        if it has already flipped further — per-packet atomicity."""
        from repro.dataplane.hashing import HashFamily

        family = HashFamily(99)
        ingress = NewtonPipeline(num_stages=3, array_size=256,
                                 hash_family=family)
        egress = NewtonPipeline(num_stages=3, array_size=256,
                                hash_family=family)
        compiled = compile_query(q1(threshold=1), small_params(),
                                 hash_family=family)
        slices = slice_compiled(compiled, 3)
        assert len(slices) == 2
        ingress.install_slice(slices[0])
        egress.install_slice(slices[1])
        # Egress flips ahead, retiring its half of the query.
        egress.retire_query("p.q1", epoch=1)
        egress.commit_epoch(1)
        snapshot = SnapshotHeader()
        result = ingress.process(syn(1, 9), snapshot)
        assert result.initiated == ["p.q1"]
        assert snapshot.rule_epoch == 0
        # The stamp resolves the retired-but-resident epoch-0 bank.
        downstream = egress.process(syn(1, 9), snapshot,
                                    ingress_edge=False)
        assert downstream.reports, "stamped bank must keep serving"


class TestCrossSwitch:
    def _chain(self, n, stages, threshold=3):
        from repro.dataplane.hashing import HashFamily

        family = HashFamily(99)
        pipelines = [
            NewtonPipeline(switch_id=f"s{i}", num_stages=stages,
                           array_size=256, hash_family=family)
            for i in range(n)
        ]
        compiled = compile_query(q1(threshold), small_params(),
                                 hash_family=family)
        slices = slice_compiled(compiled, stages)
        assert len(slices) == n
        for pipeline, query_slice in zip(pipelines, slices):
            pipeline.install_slice(query_slice)
        return pipelines

    def _walk(self, pipelines, packet):
        header = SnapshotHeader()
        reports = []
        for pipeline in pipelines:
            reports.extend(pipeline.process(packet, header).reports)
        return reports, header

    def test_two_switch_equivalence(self):
        pipelines = self._chain(2, stages=3)
        all_reports = []
        for i in range(5):
            reports, _ = self._walk(pipelines, syn(i + 1, 7))
            all_reports.extend(reports)
        assert len(all_reports) == 1
        # The report comes from the final slice's switch.
        assert all_reports[0].switch_id == "s1"

    def test_header_stripped_after_completion(self):
        pipelines = self._chain(2, stages=3)
        _, header = self._walk(pipelines, syn(1, 7))
        assert len(header) == 0

    def test_missing_second_slice_keeps_cursor(self):
        pipelines = self._chain(2, stages=3)
        header = SnapshotHeader()
        pipelines[0].process(syn(1, 7), header)
        entry = header.get("p.q1")
        assert entry is not None and entry.cursor == 1

    def test_multi_switch_requires_header(self):
        pipelines = self._chain(2, stages=3)
        with pytest.raises(RuntimeError):
            pipelines[0].process(syn(1, 7))  # no SP header available

    def test_no_reinitiation_mid_path(self):
        # The second switch also hosts slice 0 (redundant placement); a
        # packet already carrying cursor 1 must not restart the query.
        from repro.dataplane.hashing import HashFamily

        family = HashFamily(5)
        compiled = compile_query(q1(1), small_params(), hash_family=family)
        slices = slice_compiled(compiled, 3)
        first = NewtonPipeline("a", num_stages=3, array_size=256,
                               hash_family=family)
        second = NewtonPipeline("b", num_stages=3, array_size=256,
                                hash_family=family)
        first.install_slice(slices[0])
        second.install_slice(slices[0])  # redundant copy
        second.install_slice(slices[1])
        header = SnapshotHeader()
        first.process(syn(1, 7), header)
        result = second.process(syn(1, 7), header)
        assert result.continued == ["p.q1"]
        assert not result.initiated
