"""Vectorized data-plane primitives vs their scalar references.

The vectorized engine's correctness rests on two batch primitives being
bit-identical to the per-packet code paths they replace: seeded hashing
over packed key rows and the register ALU's grouped-scan batch execution.
"""

import numpy as np
import pytest

from repro.dataplane.alu import REGISTER_MAX, StatefulOp
from repro.dataplane.hashing import HashFamily, hash_bytes, hash_rows
from repro.dataplane.registers import RegisterArray


class TestHashRows:
    def test_matches_per_row_hash_bytes(self):
        rng = np.random.default_rng(7)
        rows = rng.integers(0, 256, size=(300, 6)).astype(np.uint8)
        out = hash_rows(rows, seed=99)
        for i in range(len(rows)):
            assert int(out[i]) == hash_bytes(rows[i].tobytes(), 99)

    def test_duplicate_rows_share_one_digest(self):
        rows = np.zeros((50, 4), dtype=np.uint8)
        rows[:, 0] = 3
        out = hash_rows(rows, seed=1)
        assert len(set(int(v) for v in out)) == 1
        assert int(out[0]) == hash_bytes(rows[0].tobytes(), 1)

    def test_cache_is_filled_and_reused(self):
        cache = {}
        rows = np.arange(12, dtype=np.uint8).reshape(3, 4)
        first = hash_rows(rows, seed=5, cache=cache)
        assert len(cache) == 3
        cache_before = dict(cache)
        second = hash_rows(rows, seed=5, cache=cache)
        assert cache == cache_before
        assert np.array_equal(first, second)

    def test_empty_batch(self):
        out = hash_rows(np.empty((0, 4), dtype=np.uint8), seed=2)
        assert out.shape == (0,)


class TestHashUnitMany:
    def test_matches_scalar_call(self):
        unit = HashFamily(0x5EED).unit(2, range_size=1024)
        rng = np.random.default_rng(11)
        rows = rng.integers(0, 256, size=(200, 5)).astype(np.uint8)
        out = unit.many(rows)
        assert out.dtype == np.int64
        for i in range(len(rows)):
            assert int(out[i]) == unit(rows[i].tobytes())


def _paired_arrays(size=16, slice_size=8):
    owner = ("q", 0)
    reference = RegisterArray(size)
    batched = RegisterArray(size)
    reference.allocate(owner, slice_size)
    batched.allocate(owner, slice_size)
    return owner, reference, batched


class TestExecuteMany:
    @pytest.mark.parametrize(
        "op", [StatefulOp.READ, StatefulOp.ADD, StatefulOp.OR,
               StatefulOp.MAX],
    )
    def test_matches_sequential_execution(self, op):
        """Heavy index collisions: the grouped scans must produce the
        same per-call old/new values as the one-at-a-time loop."""
        owner, reference, batched = _paired_arrays()
        rng = np.random.default_rng(int(hash(op.value)) & 0xFFFF)
        indices = rng.integers(0, 5, size=400).astype(np.int64)
        operands = rng.integers(0, 9, size=400).astype(np.int64)

        expected = [reference.execute(owner, int(i), op, int(v))
                    for i, v in zip(indices, operands)]
        old, new = batched.execute_many(owner, indices, op, operands)

        assert [int(v) for v in old] == [e[0] for e in expected]
        assert [int(v) for v in new] == [e[1] for e in expected]
        assert np.array_equal(reference.dump(), batched.dump())

    def test_add_saturates_like_sequential(self):
        owner, reference, batched = _paired_arrays()
        n = 64
        indices = np.zeros(n, dtype=np.int64)
        operands = np.full(n, REGISTER_MAX // 8, dtype=np.int64)
        expected = [reference.execute(owner, 0, StatefulOp.ADD, int(v))
                    for v in operands]
        old, new = batched.execute_many(
            owner, indices, StatefulOp.ADD, operands
        )
        assert [int(v) for v in old] == [e[0] for e in expected]
        assert [int(v) for v in new] == [e[1] for e in expected]
        assert int(batched.dump().max()) <= REGISTER_MAX
