"""PHV context tests."""

import pytest

from repro.dataplane.phv import NUM_METADATA_SETS, MetadataSet, PhvContext


class TestMetadataSet:
    def test_defaults_empty(self):
        mset = MetadataSet()
        assert mset.oper_keys == b""
        assert mset.hash_result is None
        assert mset.state_result is None

    def test_clear(self):
        mset = MetadataSet(oper_keys=b"x", hash_result=1, state_result=2)
        mset.clear()
        assert mset.oper_keys == b"" and mset.hash_result is None

    def test_copy_is_deep_for_fields(self):
        mset = MetadataSet(oper_fields={"dip": 1})
        clone = mset.copy()
        clone.oper_fields["dip"] = 99
        assert mset.oper_fields["dip"] == 1


class TestPhvContext:
    def test_two_sets(self):
        ctx = PhvContext()
        assert len(ctx.sets) == NUM_METADATA_SETS == 2
        assert ctx.set(0) is not ctx.set(1)

    def test_set_bounds(self):
        ctx = PhvContext()
        with pytest.raises(IndexError):
            ctx.set(2)
        with pytest.raises(IndexError):
            ctx.set(-1)

    def test_wrong_set_count_rejected(self):
        with pytest.raises(ValueError):
            PhvContext(sets=[MetadataSet()])

    def test_copy_independent(self):
        ctx = PhvContext()
        ctx.global_result = 5
        ctx.set(0).state_result = 1
        clone = ctx.copy()
        clone.global_result = 9
        clone.set(0).state_result = 7
        assert ctx.global_result == 5
        assert ctx.set(0).state_result == 1

    def test_report_payload_structure(self):
        ctx = PhvContext()
        ctx.global_result = 42
        ctx.set(1).oper_fields = {"dip": 3}
        ctx.set(1).hash_result = 8
        payload = ctx.report_payload()
        assert payload["global_result"] == 42
        assert payload["set1_fields"] == {"dip": 3}
        assert payload["set1_hash"] == 8
        assert payload["set0_fields"] == {}

    def test_payload_copies_fields(self):
        ctx = PhvContext()
        ctx.set(0).oper_fields = {"sip": 1}
        payload = ctx.report_payload()
        payload["set0_fields"]["sip"] = 99
        assert ctx.set(0).oper_fields["sip"] == 1
