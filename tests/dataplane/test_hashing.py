"""Hash family unit tests."""

import pytest

from repro.dataplane.hashing import HashFamily, HashUnit, hash_bytes


class TestHashBytes:
    def test_deterministic(self):
        assert hash_bytes(b"abc", 1) == hash_bytes(b"abc", 1)

    def test_seed_changes_output(self):
        assert hash_bytes(b"abc", 1) != hash_bytes(b"abc", 2)

    def test_data_changes_output(self):
        assert hash_bytes(b"abc", 1) != hash_bytes(b"abd", 1)

    def test_64_bit_range(self):
        value = hash_bytes(b"anything", 12345)
        assert 0 <= value < (1 << 64)

    def test_empty_key_is_valid(self):
        assert isinstance(hash_bytes(b"", 0), int)


class TestHashUnit:
    def test_respects_range(self):
        unit = HashUnit(seed=7, range_size=100)
        for i in range(200):
            assert 0 <= unit(str(i).encode()) < 100

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            HashUnit(seed=1, range_size=0)

    def test_distribution_roughly_uniform(self):
        unit = HashUnit(seed=3, range_size=16)
        counts = [0] * 16
        for i in range(4096):
            counts[unit(i.to_bytes(4, "big"))] += 1
        # Expected 256 per bucket; allow generous slack.
        assert min(counts) > 150
        assert max(counts) < 400


class TestHashFamily:
    def test_units_differ_by_index(self):
        family = HashFamily(1)
        u0, u1 = family.unit(0, 1 << 20), family.unit(1, 1 << 20)
        collisions = sum(
            1 for i in range(500)
            if u0(i.to_bytes(4, "big")) == u1(i.to_bytes(4, "big"))
        )
        assert collisions < 5

    def test_same_seed_same_units(self):
        a, b = HashFamily(42), HashFamily(42)
        assert a.unit(3, 100) == b.unit(3, 100)
        assert a == b

    def test_different_base_seed(self):
        assert HashFamily(1) != HashFamily(2)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            HashFamily().unit(-1, 10)

    def test_hashable(self):
        assert len({HashFamily(1), HashFamily(1), HashFamily(2)}) == 2
