"""Count-Min sketch tests."""

import pytest

from repro.dataplane.hashing import HashFamily
from repro.sketches.countmin import CountMinSketch


class TestBasics:
    def test_never_underestimates(self):
        cm = CountMinSketch(width=64, depth=3)
        truth = {}
        for i in range(500):
            key = f"k{i % 40}".encode()
            truth[key] = truth.get(key, 0) + 1
            cm.add(key)
        for key, count in truth.items():
            assert cm.estimate(key) >= count

    def test_exact_when_no_collisions(self):
        cm = CountMinSketch(width=4096, depth=3)
        for _ in range(7):
            cm.add(b"solo")
        assert cm.estimate(b"solo") == 7

    def test_weighted_add(self):
        cm = CountMinSketch(width=64, depth=2)
        cm.add(b"x", amount=100)
        assert cm.estimate(b"x") >= 100

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            CountMinSketch(8, 1).add(b"x", amount=-1)

    def test_clear(self):
        cm = CountMinSketch(width=16, depth=2)
        cm.add(b"x")
        cm.clear()
        assert cm.estimate(b"x") == 0
        assert cm.total == 0

    def test_shape(self):
        assert CountMinSketch(32, 4).shape == (4, 32)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CountMinSketch(0, 1)
        with pytest.raises(ValueError):
            CountMinSketch(8, 0)


class TestAccuracy:
    def test_deeper_sketch_estimates_no_worse(self):
        """More rows — the CQE memory-pooling effect — tightens estimates."""
        keys = [f"k{i}".encode() for i in range(2000)]
        shallow = CountMinSketch(width=128, depth=1, seed_base=0)
        deep = CountMinSketch(width=128, depth=6, seed_base=0)
        for key in keys:
            shallow.add(key)
            deep.add(key)
        shallow_err = sum(shallow.estimate(k) - 1 for k in keys)
        deep_err = sum(deep.estimate(k) - 1 for k in keys)
        assert deep_err < shallow_err

    def test_error_bound_scales_with_width(self):
        narrow = CountMinSketch(width=64, depth=2)
        wide = CountMinSketch(width=1024, depth=2)
        for i in range(1000):
            narrow.add(f"{i}".encode())
            wide.add(f"{i}".encode())
        assert wide.error_bound() < narrow.error_bound()

    def test_heavy_keys(self):
        cm = CountMinSketch(width=512, depth=3)
        for _ in range(50):
            cm.add(b"heavy")
        cm.add(b"light")
        found = cm.heavy_keys([b"heavy", b"light"], threshold=40)
        assert b"heavy" in found and b"light" not in found


class TestDataPlaneAgreement:
    def test_matches_state_bank_rows(self):
        from repro.dataplane.alu import StatefulOp
        from repro.dataplane.registers import RegisterArray

        family = HashFamily(0x5EED)
        width, depth, seed_base = 64, 2, 3
        cm = CountMinSketch(width, depth, family=family, seed_base=seed_base)
        arrays = [RegisterArray(width) for _ in range(depth)]
        units = [family.unit(seed_base + i, width) for i in range(depth)]
        for array in arrays:
            array.allocate(("q", 0), width)

        def dataplane_add(key: bytes) -> int:
            news = []
            for array, unit in zip(arrays, units):
                _, new = array.execute(("q", 0), unit(key), StatefulOp.ADD, 1)
                news.append(new)
            return min(news)

        for i in range(400):
            key = f"key{i % 30}".encode()
            assert cm.add(key) == dataplane_add(key)
