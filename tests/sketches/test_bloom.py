"""Bloom filter tests."""

import pytest

from repro.dataplane.hashing import HashFamily
from repro.sketches.bloom import BloomFilter


class TestBasics:
    def test_no_false_negatives(self):
        bf = BloomFilter(bits=1024, num_hashes=3)
        keys = [f"k{i}".encode() for i in range(100)]
        for key in keys:
            bf.add(key)
        assert all(key in bf for key in keys)

    def test_test_and_set_semantics(self):
        bf = BloomFilter(bits=1024, num_hashes=3)
        assert bf.add(b"x") is False  # new
        assert bf.add(b"x") is True   # present

    def test_add_all_counts_new(self):
        bf = BloomFilter(bits=1024, num_hashes=2)
        assert bf.add_all([b"a", b"b", b"a"]) == 2

    def test_clear(self):
        bf = BloomFilter(bits=64, num_hashes=2)
        bf.add(b"x")
        bf.clear()
        assert b"x" not in bf
        assert bf.inserted == 0

    def test_fill_ratio(self):
        bf = BloomFilter(bits=100, num_hashes=1)
        assert bf.fill_ratio == 0.0
        bf.add(b"x")
        assert bf.fill_ratio == pytest.approx(0.01)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(bits=0, num_hashes=1)
        with pytest.raises(ValueError):
            BloomFilter(bits=8, num_hashes=0)


class TestAccuracy:
    def test_fpr_grows_with_load(self):
        bf = BloomFilter(bits=256, num_hashes=2)
        light_fpr = None
        for i in range(64):
            bf.add(f"in{i}".encode())
        light_fpr = sum(
            1 for i in range(1000) if f"out{i}".encode() in bf
        ) / 1000
        for i in range(64, 512):
            bf.add(f"in{i}".encode())
        heavy_fpr = sum(
            1 for i in range(1000) if f"out{i}".encode() in bf
        ) / 1000
        assert heavy_fpr > light_fpr

    def test_analytic_estimate_reasonable(self):
        bf = BloomFilter(bits=1024, num_hashes=3)
        for i in range(200):
            bf.add(f"in{i}".encode())
        measured = sum(
            1 for i in range(2000) if f"out{i}".encode() in bf
        ) / 2000
        predicted = bf.false_positive_rate()
        assert abs(measured - predicted) < 0.1

    def test_empty_filter_has_zero_fpr(self):
        assert BloomFilter(64, 2).false_positive_rate() == 0.0


class TestDataPlaneAgreement:
    def test_matches_state_bank_rows(self):
        """A BloomFilter with the data plane's seeds answers identically
        to the distinct primitive's S modules."""
        from repro.dataplane.alu import StatefulOp
        from repro.dataplane.registers import RegisterArray

        family = HashFamily(0x5EED)
        bits, rows, seed_base = 128, 3, 10
        bf = BloomFilter(bits, rows, family=family, seed_base=seed_base)
        arrays = [RegisterArray(bits) for _ in range(rows)]
        units = [family.unit(seed_base + i, bits) for i in range(rows)]
        for array in arrays:
            array.allocate(("q", 0), bits)

        def dataplane_add(key: bytes) -> bool:
            olds = []
            for array, unit in zip(arrays, units):
                old, _ = array.execute(("q", 0), unit(key), StatefulOp.OR, 1)
                olds.append(old)
            return min(olds) == 1  # seen before

        for i in range(300):
            key = f"key{i % 60}".encode()
            assert bf.add(key) == dataplane_add(key)
