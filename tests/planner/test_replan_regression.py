"""Back-to-back re-plan regression: repeated hitless updates must not
fragment the register array or double-count against NV601.

Before the retiring-aware allocator anchor, every make-before-break
update bounced a query's register slice between the two ends of its free
space (first fit places the staged copy after the live one; GC then
frees the front).  Whether a later *grow* fit became a function of the
re-plan count's parity: the NV601 sum-based gate approved the plan, and
the 2PC prepare phase then died with ``AllocationError`` mid-flight.
The planner re-plans in exactly this pattern, so the allocator now picks
the staging anchor that maximises the post-GC contiguous free block.
"""

import dataclasses

import pytest

from repro.core.compiler import QueryParams
from repro.core.query import Query
from repro.dataplane.registers import AllocationError, RegisterArray
from repro.network.deployment import build_deployment
from repro.network.topology import linear
from repro.verify.fleet import check_staging_plan

ARRAY = 4096
PARAMS = QueryParams(cm_depth=2, bf_hashes=2,
                     reduce_registers=1500, distinct_registers=256)


def q(threshold=3):
    return (
        Query("plan.q", "re-plan regression")
        .filter(proto=6, tcp_flags=2)
        .map("dip")
        .reduce("dip")
        .where(ge=threshold)
    )


def deploy():
    return build_deployment(linear(1), array_size=ARRAY)


class TestBackToBackReplans:
    def test_grow_fits_after_any_number_of_same_size_replans(self):
        """Grow to (array - current) must succeed regardless of how many
        same-size re-plans preceded it — both parities of the old bug."""
        for replans in (1, 2, 3, 4):
            dep = deploy()
            dep.controller.install_query(q(), PARAMS, path=["s0"])
            for i in range(replans):
                dep.controller.update_query(q(threshold=4 + i), PARAMS,
                                            path=["s0"])
            grown = dataclasses.replace(PARAMS, reduce_registers=2400)
            result = dep.controller.update_query(q(threshold=99), grown,
                                                 path=["s0"])
            assert result.rules_staged > 0, f"grow failed after {replans}"
            assert dep.switch("s0").staged_rule_count == 0
            assert dep.switch("s0").retired_rule_count == 0

    def test_shrink_then_regrow_cycles(self):
        """Oscillating resizes (the planner's resize loop) stay hitless."""
        dep = deploy()
        dep.controller.install_query(q(), PARAMS, path=["s0"])
        for i, registers in enumerate((512, 2400, 512, 2400, 1500)):
            params = dataclasses.replace(PARAMS, reduce_registers=registers)
            dep.controller.update_query(q(threshold=5 + i), params,
                                        path=["s0"])
        assert dep.switch("s0").staged_rule_count == 0
        assert dep.switch("s0").retired_rule_count == 0


class TestVacatingAnchor:
    def test_anchor_leaves_largest_post_gc_block(self):
        array = RegisterArray(4096)
        array.allocate(("q", 0, 0), 1500)
        # Staged replacement: old slice will vacate at GC.  First fit
        # would pick 1500; the anchor policy picks the tail so the freed
        # front merges with the remaining gap.
        alloc = array.allocate(("q", 0, 1), 1500, vacating=[("q", 0, 0)])
        assert alloc.offset == 4096 - 1500
        array.release(("q", 0, 0))
        # Post-GC: one contiguous block of 2596 at the front.
        assert array._find_gap(2596) == 0

    def test_anchor_never_overlaps_live_vacating_cells(self):
        array = RegisterArray(1024)
        array.allocate(("q", 0, 0), 600)
        with pytest.raises(AllocationError):
            # 600 live + 600 staged does not fit 1024 even though the
            # vacating slice will free later — double occupancy is real.
            array.allocate(("q", 0, 1), 600, vacating=[("q", 0, 0)])

    def test_plain_allocation_stays_first_fit(self):
        array = RegisterArray(1024)
        array.allocate(("a",), 100)
        array.release(("a",))
        alloc = array.allocate(("b",), 50)
        assert alloc.offset == 0

    def test_vacating_owner_absent_from_array_is_ignored(self):
        array = RegisterArray(1024)
        alloc = array.allocate(("q", 0, 1), 100, vacating=[("ghost",)])
        assert alloc.offset == 0


class TestStagingPlanDedup:
    def test_duplicate_slices_not_double_counted(self):
        """A plan listing the same slice twice (retried/composed op) must
        cost one slice's demand — the data plane stages it once."""
        dep = deploy()
        dep.controller.install_query(q(), PARAMS, path=["s0"])
        installed = dep.controller.installed["plan.q"]
        slices = [qs for per_sub in installed.slices.values()
                  for qs in per_sub]
        assert slices, "placement must have produced slices"
        doubled = slices + slices
        report = check_staging_plan(
            dep.switches, {"s0": doubled}, target_epoch=99,
        )
        errors = [d for d in report.diagnostics if d.code == "NV601"]
        # 1500 staged beside 1500 resident fits 4096; the doubled listing
        # (3000 staged) would not have left room for a later grow — and
        # before the dedup it *did* veto legitimate plans.
        assert errors == []
