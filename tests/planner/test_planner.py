"""Unit and behavior tests for the dynamic planner stack.

Bottom-up: the compiler's ``refine_query`` remasking, the refinement
ladder, placement skew helpers, admission ``best_fit`` headroom clamps,
the plan driver's failure semantics, and the :class:`DynamicPlanner`
triggers (refine/coarsen/grow/shrink/rebalance) against a real deployed
control plane — every planner step is an ordinary verified 2PC
transaction, so these tests also double-check hitlessness invariants.
"""

from dataclasses import replace

import pytest

from repro.collector.signals import QuerySignals, WindowSignals
from repro.core.admission import AdmissionPlanner
from repro.core.ast import CmpOp, Filter, Map, Reduce
from repro.core.compiler import CompilationError, QueryParams, refine_query
from repro.core.library import build_query
from repro.core.placement import offload_path, report_skew
from repro.core.query import Query
from repro.experiments.common import evaluation_thresholds
from repro.network.deployment import build_deployment
from repro.network.topology import linear
from repro.planner import (
    DynamicPlanner,
    PlanDriver,
    PlanError,
    PlannerConfig,
    RefinementLadder,
)
from repro.traffic.generators import assign_hosts, caida_like, syn_flood
from repro.traffic.traces import merge_traces

PARAMS = QueryParams(cm_depth=2, reduce_registers=256)


def heavy_hitter(qid="hh"):
    return (Query(qid).filter(proto=6).map("dip")
            .reduce("dip").where(ge=3))


def key_masks(query, primitive_type):
    return [
        k.mask
        for prim in query.primitives if isinstance(prim, primitive_type)
        for k in prim.keys
    ]


class TestRefineQuery:
    def test_remasks_map_and_reduce_keys(self):
        coarse = refine_query(heavy_hitter(), "dip", 0xFF000000)
        assert key_masks(coarse, Map) == [0xFF000000]
        assert key_masks(coarse, Reduce) == [0xFF000000]
        # The original query is untouched.
        assert key_masks(heavy_hitter(), Map) == [None]

    def test_scope_folds_into_leading_filter(self):
        child = refine_query(
            heavy_hitter(), "dip", 0xFFFF0000, qid="hh.r0",
            scope=(0x0A000000, 0xFF000000),
        )
        assert child.qid == "hh.r0"
        leading = child.primitives[0]
        assert isinstance(leading, Filter)
        scoped = [p for p in leading.predicates if p.op is CmpOp.MASK_EQ]
        assert [(p.value, p.mask) for p in scoped] == [
            (0x0A000000, 0xFF000000)
        ]
        # The original equality predicate is preserved ahead of it.
        assert leading.predicates[0].field == "proto"

    def test_scope_without_filter_inserts_one(self):
        bare = Query("b").map("dip").reduce("dip").where(ge=1)
        child = refine_query(bare, "dip", None, qid="b.r0",
                             scope=(0x0A000000, 0xFF000000))
        assert isinstance(child.primitives[0], Filter)

    def test_field_not_in_keys_rejected(self):
        with pytest.raises(CompilationError):
            refine_query(heavy_hitter(), "sip", 0xFF000000)


class TestRefinementLadder:
    def test_ipv4_defaults(self):
        ladder = RefinementLadder.ipv4()
        assert ladder.rungs == (
            0xFF000000, 0xFFFF0000, 0xFFFFFF00, 0xFFFFFFFF,
        )
        assert ladder.max_rung == 3

    def test_none_rung_resolves_to_full_width(self):
        ladder = RefinementLadder("dip", (0xFF000000, None))
        assert ladder.mask_at(1) == 0xFFFFFFFF

    def test_rejects_single_rung_and_non_monotone(self):
        with pytest.raises(ValueError):
            RefinementLadder("dip", (0xFF000000,))
        with pytest.raises(ValueError):
            RefinementLadder("dip", (0xFFFF0000, 0xFF000000))

    def test_zoom_composes_scopes_recursively(self):
        ladder = RefinementLadder.ipv4()
        coarse = ladder.coarse(heavy_hitter())
        child = ladder.zoom(coarse, 0, 0x0A000000, "hh.r0")
        grandchild = ladder.zoom(child, 1, 0x0A010000, "hh.r0.r0")
        scoped = [p for p in grandchild.primitives[0].predicates
                  if p.op is CmpOp.MASK_EQ]
        assert [(p.value, p.mask) for p in scoped] == [
            (0x0A000000, 0xFF000000),  # outer /8 scope survives
            (0x0A010000, 0xFFFF0000),  # inner /16 scope added
        ]
        assert key_masks(grandchild, Reduce) == [0xFFFFFF00]

    def test_zoom_at_full_granularity_rejected(self):
        ladder = RefinementLadder.ipv4()
        with pytest.raises(ValueError):
            ladder.zoom(heavy_hitter(), ladder.max_rung, 0, "x")


class TestPlacementHelpers:
    def test_report_skew(self):
        assert report_skew({}) == 0.0
        assert report_skew({"s0": 0}) == 0.0
        assert report_skew({"s0": 10, "s1": 10}) == pytest.approx(1.0)
        assert report_skew({"s0": 30, "s1": 10, "s2": 20}) \
            == pytest.approx(1.5)

    def test_offload_path_drops_busiest(self):
        path = ("s0", "s1", "s2")
        loads = {"s0": 5, "s1": 100, "s2": 7}
        assert offload_path(path, loads, min_len=1) == ("s0", "s2")

    def test_offload_path_respects_min_len(self):
        assert offload_path(("s0", "s1"), {"s0": 9}, min_len=2) is None

    def test_offload_path_no_loaded_switch(self):
        assert offload_path(("s0", "s1"), {"s9": 4}, min_len=1) is None


class TestBestFit:
    def test_clamped_to_free_headroom(self):
        dep = build_deployment(linear(1), array_size=1 << 12)
        query = build_query("Q1", evaluation_thresholds())
        dep.controller.install_query(query, PARAMS, path=["s0"])
        record = dep.controller.installed["Q1"]
        admission = AdmissionPlanner(dep.switches["s0"], opts=record.opts)
        fit = admission.best_fit(query, PARAMS, ceiling=1 << 20)
        assert fit is not None
        assert fit.reduce_registers > PARAMS.reduce_registers
        # Make-before-break: the staged copy at the chosen size must fit
        # next to the running one, so a real update at that size commits.
        dep.controller.update_query(query, fit, path=["s0"])

    def test_none_when_no_size_fits(self):
        dep = build_deployment(linear(1), array_size=1 << 12)
        query = build_query("Q1", evaluation_thresholds())
        dep.controller.install_query(query, PARAMS, path=["s0"])
        record = dep.controller.installed["Q1"]
        admission = AdmissionPlanner(dep.switches["s0"], opts=record.opts)
        huge = replace(PARAMS, reduce_registers=1 << 11)
        assert admission.best_fit(query, huge, ceiling=1 << 12) is None


class TestPlanDriver:
    class _Boom:
        def __init__(self):
            self.calls = []

        def install_query(self, query, params, **deploy):
            self.calls.append(query.qid)
            if query.qid == "bad":
                raise RuntimeError("verifier said no")

            class R:
                delay_s = 0.001
                rules_staged = 3
                rules_removed = 0
            return R()

    def test_failure_skips_remaining_steps(self):
        from repro.planner.plan import PlanStep

        controller = self._Boom()
        driver = PlanDriver(controller)
        steps = [
            PlanStep(kind="install", qid=q, trigger="refine", reason="",
                     query=heavy_hitter(q), params=PARAMS, seq=i)
            for i, q in enumerate(["ok", "bad", "after"])
        ]
        driver.execute(steps)
        assert [s.status for s in steps] == [
            "committed", "failed", "skipped",
        ]
        assert "verifier said no" in steps[1].error
        # The skipped step never reached the controller.
        assert controller.calls == ["ok", "bad"]


def drive_windows(dep, planner, windows, make_trace):
    """Run per-window segments, stepping the planner between windows."""
    executions = []
    mixed = 0
    for index in range(windows):
        trace = make_trace(index)
        if trace is not None and len(trace):
            stats = dep.simulator.run(trace)
            mixed += stats.mixed_rule_epoch_packets
        dep.simulator.roll_window()
        execution = planner.step()
        if execution is not None:
            executions.append(execution)
    return executions, mixed


def flood_trace(index, window_s=0.1, seed=5):
    start = index * window_s
    return assign_hosts(merge_traces([
        caida_like(800, duration_s=window_s, seed=seed + index,
                   start_s=start),
        syn_flood(n_packets=600, duration_s=window_s,
                  seed=seed + 60 + index, start_s=start),
    ]), [("h_src0", "h_dst0")])


class TestDynamicPlannerLifecycle:
    def _managed(self, config=None, switches=1):
        dep = build_deployment(linear(switches), array_size=1 << 13)
        planner = DynamicPlanner(dep, config or PlannerConfig())
        query = build_query(
            "Q1", replace(evaluation_thresholds(), new_tcp_conns=3)
        )
        planner.manage(query, PARAMS, ladder=RefinementLadder.ipv4(),
                       path=[f"s{i}" for i in range(switches)])
        return dep, planner

    def test_refine_then_coarsen_roundtrip(self):
        dep, planner = self._managed(PlannerConfig(
            occupancy_high=1.1,  # isolate the refine/coarsen triggers
            child_idle_windows=2, cooldown_windows=1,
        ))
        drive_windows(dep, planner, 3, flood_trace)
        children = set(planner.plans["Q1"].children)
        assert children, "the flood's hot /8 must have been zoomed into"
        assert children <= set(dep.controller.installed)
        # Traffic stops entirely; children idle out and are removed via
        # coarsen.  (All generators emit into 10/8, so any TCP traffic
        # would legitimately keep the /8-scoped child alive.)
        executions, mixed = drive_windows(dep, planner, 6, lambda i: None)
        coarsens = [s for e in executions for s in e.steps
                    if s.trigger == "coarsen"]
        assert coarsens and all(s.status == "committed" for s in coarsens)
        assert not planner.plans["Q1"].children
        assert set(dep.controller.installed) == {"Q1"}
        assert mixed == 0

    def test_cooldown_rests_query_between_replans(self):
        dep, planner = self._managed(PlannerConfig(
            occupancy_high=1.1, cooldown_windows=3, child_idle_windows=99,
        ))
        drive_windows(dep, planner, 1, flood_trace)
        parent = planner.plans["Q1"]
        assert parent.children
        resting_epoch = planner.last_epoch + 1
        assert parent.in_cooldown(resting_epoch)
        # A window inside the cooldown decides nothing for the parent.
        signals = WindowSignals(epoch=resting_epoch, queries=(
            QuerySignals(sub_qid="Q1", top_qid="Q1",
                         key_fields=("dip",), occupancy=0.99,
                         reported_keys=5,
                         heavy_keys=(((0xBB000000,), 50),)),
        ))
        execution = planner.step(signals)
        assert [s for s in execution.steps if s.qid == "Q1"] == []

    def test_rebalance_moves_slices_off_busiest_switch(self):
        dep = build_deployment(linear(3), array_size=1 << 13)
        planner = DynamicPlanner(dep, PlannerConfig(skew_ratio=1.5))
        query = build_query("Q1", evaluation_thresholds())
        planner.manage(query, PARAMS, path=["s0", "s1", "s2"])
        signals = WindowSignals(
            epoch=1, queries=(),
            reports_by_switch={"s0": 300, "s1": 2, "s2": 1},
        )
        execution = planner.step(signals)
        steps = [s for s in execution.steps if s.trigger == "rebalance"]
        assert len(steps) == 1
        assert steps[0].status == "committed"
        assert list(steps[0].deploy["path"]) == ["s1", "s2"]
        assert planner.plans["Q1"].deploy["path"] == ("s1", "s2")
        # The query survived the move and still answers.
        assert "Q1" in dep.controller.installed

    def test_manage_twice_rejected(self):
        dep, planner = self._managed()
        with pytest.raises(ValueError, match="already managed"):
            planner.manage(
                build_query("Q1", evaluation_thresholds()), PARAMS,
                path=["s0"],
            )

    def test_failed_bootstrap_raises_and_installs_nothing(self):
        dep = build_deployment(linear(1), array_size=1 << 12)
        planner = DynamicPlanner(dep)
        query = build_query("Q1", evaluation_thresholds())
        with pytest.raises(PlanError):
            planner.manage(
                query, replace(PARAMS, reduce_registers=1 << 20),
                path=["s0"],
            )
        assert not planner.plans
        assert "Q1" not in dep.controller.installed

    def test_release_with_remove_clears_subtree(self):
        dep, planner = self._managed(PlannerConfig(
            occupancy_high=1.1, child_idle_windows=99,
        ))
        drive_windows(dep, planner, 2, flood_trace)
        assert len(dep.controller.installed) > 1
        planner.release("Q1", remove=True)
        assert planner.plans == {}
        assert dep.controller.installed == {}

    def test_repeat_step_same_window_is_noop(self):
        dep, planner = self._managed()
        drive_windows(dep, planner, 1, flood_trace)
        assert planner.step() is None  # same epoch: already planned
