"""Planner over the fabric plane: plan ops replay through per-shard RPC.

A :class:`ShardedDeployment` duck-types the deployment facade the
planner drives — its fan-out controller replays every install/update/
remove on all shard workers and its collector merges per-shard window
signals — so one :class:`DynamicPlanner` instance must produce the
*same* plan trajectory (same steps, same sizes, same refinement tree)
and bit-identical window answers whether the data plane is one process
or N shard workers.
"""

from dataclasses import replace

import pytest

from repro.core.compiler import QueryParams
from repro.core.library import build_query
from repro.core.query import flatten
from repro.experiments.common import evaluation_thresholds
from repro.fabric import ShardedDeployment
from repro.network.deployment import build_deployment
from repro.network.topology import linear
from repro.planner import DynamicPlanner, PlannerConfig, RefinementLadder
from repro.traffic.generators import (
    assign_hosts,
    caida_like,
    syn_flood,
    syn_scan_noise,
)
from repro.traffic.traces import merge_traces

PARAMS = QueryParams(cm_depth=2, reduce_registers=128)
CONFIG = PlannerConfig(cooldown_windows=1, child_idle_windows=2)
WINDOW_S = 0.1
TOPOLOGY_N = 2
PATH = ["s0", "s1"]


def window_trace(index, seed=9):
    """Background for two windows, then a shift (flood + scan noise)."""
    start = index * WINDOW_S
    parts = [caida_like(1000, duration_s=WINDOW_S, seed=seed + index,
                        start_s=start)]
    if index >= 2:
        parts.append(syn_flood(
            n_packets=700, duration_s=WINDOW_S, seed=seed + 70 + index,
            start_s=start,
        ))
        parts.append(syn_scan_noise(
            n_packets=1500, duration_s=WINDOW_S, seed=seed + 90 + index,
            start_s=start,
        ))
    return assign_hosts(merge_traces(parts), [("h_src0", "h_dst0")])


def trajectory(dep, windows=6):
    """Manage Q1 and step the planner per window; return observables."""
    planner = DynamicPlanner(dep, CONFIG)
    query = build_query(
        "Q1", replace(evaluation_thresholds(), new_tcp_conns=3)
    )
    planner.manage(query, PARAMS, ladder=RefinementLadder.ipv4(),
                   path=PATH)
    steps = []
    mixed = 0
    for index in range(windows):
        stats = dep.simulator.run(window_trace(index))
        mixed += stats.mixed_rule_epoch_packets
        dep.simulator.roll_window()
        execution = planner.step()
        if execution is None:
            continue
        steps.extend(
            (execution.epoch, s.kind, s.qid, s.trigger, s.status,
             None if s.params is None else s.params.reduce_registers)
            for s in execution.steps
        )
    answers = {}
    for qid, record in dep.controller.installed.items():
        for sub in flatten(record.query):
            answers[sub.qid] = dep.collector.merged_results(sub.qid)
    return {
        "steps": steps,
        "installed": sorted(dep.controller.installed),
        "plans": planner.state()["queries"],
        "answers": answers,
        "mixed": mixed,
    }


class TestFabricPlanReplay:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_sharded_trajectory_identical(self, workers):
        base = trajectory(
            build_deployment(linear(TOPOLOGY_N), array_size=1 << 13)
        )
        with ShardedDeployment(
            linear(TOPOLOGY_N), workers=workers, inline=True,
            array_size=1 << 13,
        ) as sd:
            shard = trajectory(sd)
        assert base["mixed"] == 0 and shard["mixed"] == 0
        assert shard["steps"] == base["steps"]
        assert shard["installed"] == base["installed"]
        assert shard["plans"] == base["plans"]
        assert shard["answers"] == base["answers"]
        # The sweep is not vacuous: the shift actually re-planned.
        triggers = {s[3] for s in base["steps"]}
        assert "refine" in triggers

    def test_multiprocess_backend_replays_plan_ops(self):
        """Real worker processes: every planner-initiated 2PC op fans
        out over the RPC pipe and the merged state stays identical."""
        base = trajectory(
            build_deployment(linear(TOPOLOGY_N), array_size=1 << 13),
            windows=4,
        )
        with ShardedDeployment(
            linear(TOPOLOGY_N), workers=2, inline=False,
            array_size=1 << 13,
        ) as sd:
            shard = trajectory(sd, windows=4)
        assert shard["steps"] == base["steps"]
        assert shard["answers"] == base["answers"]
        assert shard["mixed"] == 0
