"""Recovery manager end-to-end: crash -> detect -> re-stage / re-place."""

import pytest

from repro.core.compiler import QueryParams
from repro.core.packet import Packet
from repro.core.query import Query
from repro.network.deployment import build_deployment
from repro.network.topology import linear
from repro.resilience import (
    DetectorConfig,
    FaultPlan,
    RecoveryConfig,
    ResilienceConfig,
    SwitchState,
    corrupt_registers,
    crash,
    reboot,
)
from repro.traffic.traces import Trace

PARAMS = QueryParams(cm_depth=2, reduce_registers=256,
                     distinct_registers=256)


def syn_query(qid="rz.q", threshold=2):
    return (
        Query(qid)
        .filter(proto=6, tcp_flags=2)
        .map("dip")
        .reduce("dip")
        .where(ge=threshold)
    )


def syn_trace(n=60, dt=0.02):
    return Trace([
        Packet(sip=100 + (i % 4), dip=9, proto=6, tcp_flags=2,
               sport=5000 + i, ts=i * dt,
               src_host="h_src0", dst_host="h_dst0")
        for i in range(n)
    ])


def deploy(plan, n=3, engine="scalar", resilience=None):
    dep = build_deployment(
        linear(n), num_stages=3, array_size=512, engine=engine,
        faults=plan, resilience=resilience,
    )
    dep.controller.install_query(
        syn_query(), PARAMS,
        path=[f"s{i}" for i in range(n)], stages_per_switch=3,
    )
    return dep


@pytest.mark.parametrize("engine", ["scalar", "vector"])
class TestReinstall:
    def test_crash_is_detected_and_reinstalled(self, engine):
        plan = FaultPlan(events=(crash("s0", 0.21, down_for=0.15),))
        dep = deploy(plan, engine=engine)
        dep.simulator.run(syn_trace())
        assert dep.detector.state_of("s0") == SwitchState.ALIVE
        [incident] = dep.recovery.records
        assert incident.action == "reinstall"
        assert incident.qids == ("rz.q",)
        assert incident.detect_latency_s > 0

    def test_reinstalled_slices_match_placement(self, engine):
        plan = FaultPlan(events=(crash("s0", 0.21, down_for=0.15),))
        dep = deploy(plan, engine=engine)
        dep.simulator.run(syn_trace())
        record = dep.controller.installed["rz.q"]
        for sid, entries in record.by_switch.items():
            pipeline = dep.switches[sid].pipeline
            for sub_qid, index in entries:
                assert pipeline.hosts_slice(sub_qid, index), (
                    f"slice ({sub_qid}, {index}) missing on {sid}"
                )
            assert dep.switches[sid].staged_rule_count == 0

    def test_monitoring_resumes_after_recovery(self, engine):
        plan = FaultPlan(events=(crash("s0", 0.21, down_for=0.15),))
        dep = deploy(plan, engine=engine)
        dep.simulator.run(syn_trace())
        results = dep.analyzer.results("rz.q")
        # Windows after the recovery window must produce detections again.
        recovered_epoch = dep.recovery.records[0].completed_epoch
        later = [e for e in results if e > recovered_epoch]
        assert later, "no windows observed after recovery"
        assert any(results[e] for e in later), (
            "monitoring never resumed after re-install"
        )

    def test_coverage_gaps_are_epoch_stamped(self, engine):
        plan = FaultPlan(events=(crash("s0", 0.21, down_for=0.15),))
        dep = deploy(plan, engine=engine)
        dep.simulator.run(syn_trace())
        coverage = dep.recovery.coverage
        full, total = coverage.windows("rz.q")
        assert full + coverage.gap_count("rz.q") >= total
        gaps = coverage.gap_epochs("rz.q")
        assert gaps, "crash left no recorded coverage gap"
        # The crash spans windows 2-3 (0.21 .. 0.36).
        assert set(gaps) <= {2, 3}
        assert 0 < coverage.coverage("rz.q") < 1

    def test_plain_reboot_needs_no_reinstall(self, engine):
        # Reboots take DEFAULT_REBOOT_BASE_S (5 s): run a long sparse
        # trace and keep the replacement threshold out of the way.
        plan = FaultPlan(events=(reboot("s0", 0.21, entries=0),))
        dep = deploy(plan, engine=engine, resilience=ResilienceConfig(
            recovery=RecoveryConfig(replace_after_windows=100),
        ))
        dep.simulator.run(syn_trace(n=70, dt=0.1))
        assert dep.detector.state_of("s0") == SwitchState.ALIVE
        # Committed state survived the reboot: no recovery incident.
        assert dep.recovery.records == []


class TestReplace:
    def test_permanent_crash_replaces_onto_survivors(self):
        plan = FaultPlan(events=(crash("s0", 0.21),))  # never comes back
        dep = deploy(plan, resilience=ResilienceConfig(
            recovery=RecoveryConfig(replace_after_windows=2),
        ))
        dep.simulator.run(syn_trace())
        [incident] = dep.recovery.records
        assert incident.action == "replace"
        record = dep.controller.installed["rz.q"]
        assert "s0" not in record.by_switch
        assert set(record.by_switch) <= {"s1", "s2"}
        for sid, entries in record.by_switch.items():
            pipeline = dep.switches[sid].pipeline
            assert all(pipeline.hosts_slice(sq, ix) for sq, ix in entries)

    def test_single_survivor_degrades_with_gap_record(self):
        plan = FaultPlan(events=(crash("s0", 0.21),))
        dep = deploy(plan, n=2, resilience=ResilienceConfig(
            recovery=RecoveryConfig(replace_after_windows=2),
        ))
        dep.simulator.run(syn_trace())
        record = dep.controller.installed["rz.q"]
        assert set(record.by_switch) == {"s1"}
        reasons = {g.reason for g in dep.recovery.coverage.gaps("rz.q")}
        assert "single-switch" in reasons

    def test_no_survivor_is_explicit_degradation_not_silence(self):
        plan = FaultPlan(events=(crash("s0", 0.21),))
        dep = deploy(plan, n=1, resilience=ResilienceConfig(
            recovery=RecoveryConfig(replace_after_windows=2),
        ))
        dep.simulator.run(syn_trace())
        coverage = dep.recovery.coverage
        assert coverage.is_degraded("rz.q")
        assert "no-placement" in coverage.degraded()["rz.q"]
        # Every window after degradation is still graded (as a gap).
        assert coverage.gap_count("rz.q") > 0


class TestCorruption:
    def test_register_corruption_records_a_gap(self):
        plan = FaultPlan(
            events=(corrupt_registers("s1", 0.15, fraction=1.0),), seed=3,
        )
        dep = deploy(plan)
        dep.simulator.run(syn_trace())
        gaps = dep.recovery.coverage.gaps("rz.q")
        corrupt = [g for g in gaps if g.reason == "register-corruption"]
        assert corrupt and corrupt[0].epoch == 1
        assert corrupt[0].switch == "s1"
        # Corruption doesn't take the switch down.
        assert dep.detector.state_of("s1") == SwitchState.ALIVE
        assert dep.recovery.records == []


class TestDetectorTuning:
    def test_resilience_config_reaches_detector(self):
        plan = FaultPlan(events=(crash("s0", 0.21, down_for=0.35),))
        dep = deploy(plan, resilience=ResilienceConfig(
            detector=DetectorConfig(suspect_after=2, down_after=4),
        ))
        dep.simulator.run(syn_trace())
        downs = [t for t in dep.detector.transitions
                 if t.new == SwitchState.DOWN]
        # 4 misses at 100 ms windows: close 0.3, 0.4, 0.5, DOWN at 0.6.
        assert downs and downs[0].epoch == 5
