"""Failure-detector state machine (ALIVE -> SUSPECT -> DOWN -> ...)."""

import pytest

from repro.collector.metrics import MetricsRegistry
from repro.resilience.health import (
    DetectorConfig,
    FailureDetector,
    SwitchState,
)
from repro.runtime.clock import WindowClock


class FakeSwitch:
    """Heartbeat stub: scriptable liveness + boot id."""

    def __init__(self):
        self.alive = True
        self.boot_id = 0

    def heartbeat(self, at):
        del at
        return self.boot_id if self.alive else None


def make_detector(n=1, **cfg):
    switches = {f"s{i}": FakeSwitch() for i in range(n)}
    detector = FailureDetector(
        switches, WindowClock(window_ms=100),
        config=DetectorConfig(**cfg) if cfg else None,
        registry=MetricsRegistry(),
    )
    return detector, switches


class TestConfig:
    def test_rejects_zero_suspect_threshold(self):
        with pytest.raises(ValueError):
            DetectorConfig(suspect_after=0)

    def test_rejects_down_before_suspect(self):
        with pytest.raises(ValueError):
            DetectorConfig(suspect_after=3, down_after=2)


class TestStateMachine:
    def test_healthy_switch_stays_alive(self):
        detector, _ = make_detector()
        for epoch in range(5):
            detector.on_window_close(epoch)
        assert detector.state_of("s0") == SwitchState.ALIVE
        assert detector.transitions == []

    def test_misses_escalate_suspect_then_down(self):
        detector, switches = make_detector(suspect_after=1, down_after=3)
        switches["s0"].alive = False
        detector.on_window_close(0)
        assert detector.state_of("s0") == SwitchState.SUSPECT
        detector.on_window_close(1)
        assert detector.state_of("s0") == SwitchState.SUSPECT
        detector.on_window_close(2)
        assert detector.state_of("s0") == SwitchState.DOWN
        health = detector.health("s0")
        assert health.down_since_epoch == 2
        assert health.down_at_s == pytest.approx(0.3)
        assert not health.restarted

    def test_phi_normalised_to_down_threshold(self):
        detector, switches = make_detector(suspect_after=1, down_after=4)
        switches["s0"].alive = False
        cfg = detector.config
        assert detector.health("s0").phi(cfg) == 0.0
        detector.on_window_close(0)
        assert detector.health("s0").phi(cfg) == pytest.approx(0.25)
        for epoch in range(1, 4):
            detector.on_window_close(epoch)
        assert detector.health("s0").phi(cfg) == 1.0

    def test_same_boot_id_return_recovers_to_alive(self):
        """A planned reboot keeps committed state: the switch goes
        straight back to ALIVE, no recovery needed."""
        detector, switches = make_detector(down_after=2)
        switches["s0"].alive = False
        detector.on_window_close(0)
        detector.on_window_close(1)
        assert detector.state_of("s0") == SwitchState.DOWN
        switches["s0"].alive = True
        detector.on_window_close(2)
        health = detector.health("s0")
        assert health.state == SwitchState.ALIVE
        assert not health.restarted
        assert health.down_since_epoch is None

    def test_boot_id_change_is_immediate_down_with_restart_flag(self):
        """A crash shorter than the miss threshold is still caught: the
        returning beat carries a new boot id (banks were wiped)."""
        detector, switches = make_detector(down_after=5)
        detector.on_window_close(0)
        switches["s0"].boot_id += 1  # crashed and restarted between beats
        detector.on_window_close(1)
        health = detector.health("s0")
        assert health.state == SwitchState.DOWN
        assert health.restarted
        assert health.down_since_epoch == 1

    def test_transitions_fire_listeners_in_order(self):
        detector, switches = make_detector(suspect_after=1, down_after=2)
        seen = []
        detector.subscribe(lambda t: seen.append((t.old, t.new, t.epoch)))
        switches["s0"].alive = False
        detector.on_window_close(0)
        detector.on_window_close(1)
        assert seen == [
            (SwitchState.ALIVE, SwitchState.SUSPECT, 0),
            (SwitchState.SUSPECT, SwitchState.DOWN, 1),
        ]

    def test_recovering_with_missed_beat_falls_back_to_down(self):
        detector, switches = make_detector(down_after=1)
        switches["s0"].alive = False
        detector.on_window_close(0)
        detector.mark_recovering("s0", 0)
        assert detector.state_of("s0") == SwitchState.RECOVERING
        detector.on_window_close(1)
        assert detector.state_of("s0") == SwitchState.DOWN

    def test_mark_alive_clears_incident_state(self):
        detector, switches = make_detector(down_after=1)
        switches["s0"].boot_id = 3
        detector.on_window_close(0)
        assert detector.health("s0").restarted
        detector.mark_alive("s0", 0)
        health = detector.health("s0")
        assert health.state == SwitchState.ALIVE
        assert not health.restarted
        assert health.misses == 0

    def test_per_switch_isolation(self):
        detector, switches = make_detector(n=3, down_after=1)
        switches["s1"].alive = False
        detector.on_window_close(0)
        assert detector.state_of("s0") == SwitchState.ALIVE
        assert detector.state_of("s1") == SwitchState.DOWN
        assert detector.state_of("s2") == SwitchState.ALIVE

    def test_miss_counter_metric(self):
        detector, switches = make_detector(down_after=3)
        switches["s0"].alive = False
        for epoch in range(3):
            detector.on_window_close(epoch)
        counter = detector.registry.counter(
            "resilience_heartbeat_misses_total"
        )
        assert counter.value(switch="s0") == 3
