"""Unified declarative FaultPlan: schema, compilation, scheduling."""

import json

import pytest

from repro.ctrlplane import ChannelFaultPlan, FaultyControlChannel
from repro.network.deployment import build_deployment
from repro.network.topology import linear
from repro.resilience import (
    FaultEvent,
    FaultPlan,
    control_faults,
    corrupt_registers,
    crash,
    reboot,
    report_faults,
)


class TestSchema:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(kind="meteor")

    def test_switch_faults_need_a_switch(self):
        for kind in ("crash", "reboot", "corrupt"):
            with pytest.raises(ValueError, match="needs a switch"):
                FaultEvent(kind=kind)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            crash("s0", at=-1.0)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError, match="fraction"):
            corrupt_registers("s0", at=0.1, fraction=1.5)

    def test_events_normalised_to_tuple(self):
        plan = FaultPlan(events=[crash("s0", 0.1)])
        assert isinstance(plan.events, tuple)


class TestRoundTrip:
    def test_json_round_trip(self):
        plan = FaultPlan(
            events=(
                crash("s0", 0.2, down_for=0.15),
                reboot("s1", 0.5, entries=128),
                corrupt_registers("s2", 0.3, fraction=0.25),
                control_faults(loss=0.1, timeout=0.05),
                report_faults(loss=0.02, delay=0.01),
            ),
            seed=42,
        )
        back = FaultPlan.from_json(json.dumps(plan.to_dict()))
        assert back == plan

    def test_from_dict_requires_kind(self):
        with pytest.raises(ValueError, match="missing 'kind'"):
            FaultPlan.from_dict({"events": [{"switch": "s0"}]})


class TestCompilation:
    def test_report_events_become_collector_faults(self):
        plan = FaultPlan(
            events=(report_faults(loss=0.1, duplication=0.02),), seed=9,
        )
        cfg = plan.collector_faults()
        assert cfg is not None and cfg.active
        assert cfg.loss == 0.1 and cfg.duplication == 0.02
        assert cfg.seed == 10  # derived from the plan seed

    def test_no_report_events_no_collector_faults(self):
        assert FaultPlan(events=(crash("s0", 0.1),)).collector_faults() is None

    def test_control_events_become_faulty_channel(self):
        plan = FaultPlan(events=(control_faults(loss=0.3),), seed=4)
        channel = plan.build_channel()
        assert isinstance(channel, FaultyControlChannel)
        assert isinstance(plan.channel_plan(), ChannelFaultPlan)
        assert plan.channel_plan().loss_rate == 0.3

    def test_no_control_events_no_channel(self):
        assert FaultPlan().build_channel() is None


class TestScheduling:
    def test_unknown_switch_is_an_error(self):
        plan = FaultPlan(events=(crash("nope", 0.1),))
        dep = build_deployment(linear(2))
        with pytest.raises(KeyError, match="unknown switch"):
            plan.schedule(dep.simulator, dep.switches)

    def test_timed_events_fire_on_the_switch(self):
        plan = FaultPlan(events=(crash("s0", 0.05, down_for=0.02),))
        dep = build_deployment(linear(2), faults=plan)
        from repro.core.packet import Packet
        from repro.traffic.traces import Trace
        dep.simulator.run(Trace([
            Packet(sip=1, dip=2, ts=i * 0.01,
                   src_host="h_src0", dst_host="h_dst0")
            for i in range(12)
        ]))
        assert len(dep.switches["s0"].crashes) == 1
        assert dep.switches["s0"].boot_id == 1

    def test_corruption_is_seed_deterministic(self):
        def corrupted_cells(seed):
            plan = FaultPlan(
                events=(corrupt_registers("s0", 0.0, fraction=0.5),),
                seed=seed,
            )
            dep = build_deployment(linear(1), array_size=512, faults=plan)
            from repro.core.compiler import QueryParams
            from repro.core.query import Query
            q = (Query("fp.q").filter(proto=6).map("dip").reduce("dip")
                 .where(ge=1))
            dep.controller.install_query(
                q, QueryParams(cm_depth=2, reduce_registers=64),
                path=["s0"],
            )
            from repro.core.packet import Packet
            from repro.traffic.traces import Trace
            dep.simulator.run(Trace([
                Packet(sip=1, dip=2, proto=6, ts=0.01,
                       src_host="h_src0", dst_host="h_dst0")
            ]))
            banks = dep.switches["s0"].pipeline.layout.state_banks()
            return tuple(
                tuple(bank.array.dump().tolist()) for bank in banks
            )

        assert corrupted_cells(5) == corrupted_cells(5)
        assert corrupted_cells(5) != corrupted_cells(6)
