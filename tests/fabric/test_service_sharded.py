"""The service plane drives a sharded deployment unchanged.

:class:`ShardedDeployment` duck-types :class:`Deployment`, so
``NewtonService`` runs its CRUD, tick, prune, and health paths against
the fabric facade without modification — and every published window
event matches a single-process service bit for bit.
"""

from dataclasses import replace

import pytest

from repro.core.library import build_query
from repro.experiments.common import evaluation_thresholds
from repro.fabric import ShardedDeployment
from repro.network.deployment import build_deployment
from repro.network.topology import linear
from repro.resilience import ResilienceConfig
from repro.service.service import NewtonService, ServiceConfig
from repro.service.sources import GeneratorSource

WINDOWS = 8


def make_service(deployment):
    config = ServiceConfig(window_ms=100, engine="vector",
                           prune_lateness=3)
    source = GeneratorSource(pps=20_000, seed=3, max_windows=WINDOWS)
    return NewtonService(source, config, deployment=deployment)


def deploy_kwargs():
    return dict(
        num_stages=12, table_capacity=256, array_size=1 << 13,
        window_ms=100, engine="vector", resilience=ResilienceConfig(),
    )


def install_queries(service):
    th = replace(evaluation_thresholds(), new_tcp_conns=3, port_scan=4)
    for name in ("Q1", "Q4"):
        service.deployment.controller.install_query(
            build_query(name, th), service.config.params,
            path=service.path,
        )


def drive(service):
    events = []
    while True:
        event = service.tick()
        if event is None:
            break
        events.append(event)
    return events


class TestServiceParity:
    def test_window_events_bit_identical(self):
        baseline = make_service(
            build_deployment(linear(3), **deploy_kwargs())
        )
        install_queries(baseline)
        base_events = drive(baseline)

        with ShardedDeployment(
            linear(3), workers=2, inline=True, record_reports=False,
            **deploy_kwargs(),
        ) as sd:
            sharded = make_service(sd)
            install_queries(sharded)
            shard_events = drive(sharded)

        assert len(base_events) == WINDOWS
        assert shard_events == base_events
        assert sum(e["packets"] for e in base_events) > 0

    def test_crud_and_health_through_the_facade(self):
        """Install / update / remove via the service's spec path, plus
        health and metrics, all through the fan-out proxies."""
        with ShardedDeployment(
            linear(3), workers=2, inline=True, record_reports=False,
            **deploy_kwargs(),
        ) as sd:
            service = make_service(sd)
            spec = {
                "qid": "t.live",
                "pipeline": [
                    {"op": "filter", "eq": {"proto": 6}},
                    {"op": "map", "keys": ["dip"]},
                    {"op": "reduce", "keys": ["dip"]},
                    {"op": "where", "ge": 3},
                ],
            }
            out = service.install(spec)
            assert out["qid"] == "t.live"
            assert "t.live" in sd.qpart.owners()

            service.tick()
            health = service.health()
            assert health["queries"] == ["t.live"]
            assert health["window_epoch"] == 1
            assert "service_windows_total" in service.metrics_text()

            spec["pipeline"][-1] = {"op": "where", "ge": 9}
            service.update("t.live", spec)
            assert "t.live" in sd.qpart.owners()

            service.remove("t.live")
            assert "t.live" not in sd.qpart.owners()
            assert service.health()["queries"] == []

    def test_simulator_at_is_rejected(self):
        """Opaque callbacks cannot fan out; the facade points callers at
        the declarative schedule_* API instead."""
        with ShardedDeployment(
            linear(3), workers=2, inline=True, **deploy_kwargs()
        ) as sd:
            with pytest.raises(NotImplementedError):
                sd.simulator.at(0.1, lambda: None)
            with pytest.raises(NotImplementedError):
                sd.controller.replace_query("Q1")
