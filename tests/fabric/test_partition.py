"""Partitioner properties: determinism, exactly-one-shard coverage, and
scalar/columnar bit-identity of the flow hash."""

import numpy as np
import pytest

from repro.core.library import build_query
from repro.core.query import Query
from repro.experiments.common import evaluation_thresholds
from repro.fabric import (
    FlowHashPartitioner,
    QueryPartitioner,
    ShardContext,
    owned_sub_qids,
)
from repro.traffic.columnar import ColumnarTrace
from repro.traffic.generators import caida_like


def trace(seed, n=2000):
    return caida_like(n, duration_s=0.2, seed=seed)


def columnar(t):
    return ColumnarTrace.from_packets(list(t))


class TestFlowHashPartitioner:
    @pytest.mark.parametrize("seed", [0, 1, 0xF1F0, (1 << 64) - 1])
    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 7])
    def test_deterministic_per_seed(self, seed, shards):
        """Two independently built partitioners with the same seed agree
        on every packet; a different seed produces a different map."""
        a = FlowHashPartitioner(seed, shards)
        b = FlowHashPartitioner(seed, shards)
        packets = list(trace(5))
        assignments = [a.shard_of_packet(p) for p in packets]
        assert assignments == [b.shard_of_packet(p) for p in packets]
        assert all(0 <= s < shards for s in assignments)
        if shards > 1:
            other = FlowHashPartitioner(seed + 1, shards)
            assert assignments != [
                other.shard_of_packet(p) for p in packets
            ]

    @pytest.mark.parametrize("seed", range(10))
    def test_every_packet_exactly_one_shard(self, seed):
        """Summing the shard-ownership masks over all shard contexts
        gives exactly one owner per packet — scalar and columnar."""
        shards = 4
        part = FlowHashPartitioner(0xF1F0 + seed, shards)
        contexts = [ShardContext(part, i) for i in range(shards)]
        t = trace(seed)
        batch = columnar(t)
        owners = np.zeros(len(batch), dtype=np.int64)
        for ctx in contexts:
            owners += ctx.owned_mask(batch).astype(np.int64)
        assert (owners == 1).all()
        for packet in list(t)[:200]:
            assert sum(ctx.owns_packet(packet) for ctx in contexts) == 1

    @pytest.mark.parametrize("seed", range(10))
    def test_scalar_columnar_bit_identical(self, seed):
        """``shard_of_packet`` (python ints) and ``shard_column`` (uint64
        numpy) are the same function row by row."""
        part = FlowHashPartitioner(0xABCD + seed, 5)
        t = trace(seed + 100)
        batch = columnar(t)
        vec = part.shard_column(batch.columns)
        scalar = [part.shard_of_packet(p) for p in t]
        assert vec.tolist() == scalar

    def test_flow_affinity(self):
        """All packets of one 5-tuple land on the same shard."""
        part = FlowHashPartitioner(7, 3)
        t = trace(11)
        by_flow = {}
        for p in t:
            key = (p.sip, p.dip, p.proto, p.sport, p.dport)
            by_flow.setdefault(key, set()).add(part.shard_of_packet(p))
        assert all(len(shards) == 1 for shards in by_flow.values())

    def test_spread_is_nontrivial(self):
        part = FlowHashPartitioner(0xF1F0, 4)
        batch = columnar(trace(3, n=4000))
        counts = np.bincount(part.shard_column(batch.columns), minlength=4)
        assert (counts > 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowHashPartitioner(1, 0)
        part = FlowHashPartitioner(1, 2)
        with pytest.raises(ValueError):
            ShardContext(part, 2)
        with pytest.raises(ValueError):
            ShardContext(part, -1)


class TestQueryPartitioner:
    def queries(self, names):
        th = evaluation_thresholds()
        return [build_query(name, th) for name in names]

    def test_deterministic_per_seed_and_order(self):
        names = ["Q1", "Q2", "Q3", "Q4", "Q5"]
        a = QueryPartitioner(4, seed=0xA55)
        b = QueryPartitioner(4, seed=0xA55)
        owners_a = [a.assign(q) for q in self.queries(names)]
        owners_b = [b.assign(q) for q in self.queries(names)]
        assert owners_a == owners_b

    def test_eight_singletons_on_four_shards_balance(self):
        """Eight single-chain queries on four shards land 2/2/2/2."""
        part = QueryPartitioner(4)
        th = evaluation_thresholds()
        for name in ["Q1", "Q2", "Q3", "Q4", "Q5"]:
            q = build_query(name, th)
            if len(owned_sub_qids(q)) == 1:
                part.assign(q)
        # Pad with synthetic single-chain queries up to eight.
        i = 0
        while sum(part.loads()) < 8:
            pad = Query(f"pad{i}", "pad").map("dip").reduce("dip")\
                .where(ge=1)
            part.assign(pad)
            i += 1
        assert sorted(part.loads()) == [2, 2, 2, 2]

    def test_composite_weight_and_release(self):
        part = QueryPartitioner(2)
        th = evaluation_thresholds()
        q6 = build_query("Q6", th)
        weight = len(owned_sub_qids(q6))
        assert weight > 1  # composite: multiple data-plane chains
        owner = part.assign(q6)
        assert part.owner_of(q6.qid) == owner
        assert part.loads()[owner] == weight
        assert part.release(q6.qid) == owner
        assert part.loads() == (0, 0)

    def test_double_assign_rejected(self):
        part = QueryPartitioner(2)
        q = build_query("Q1", evaluation_thresholds())
        part.assign(q)
        with pytest.raises(ValueError):
            part.assign(q)
