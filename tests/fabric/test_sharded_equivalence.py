"""Differential properties: a sharded fabric run is bit-identical to a
single-process deployment.

Every scenario runs one seeded workload twice — once through a plain
``build_deployment`` and once through a :class:`ShardedDeployment` —
and compares the full observable outcome: merged simulation stats, the
canonically ordered report stream (payloads included), the merged
register dumps of every state bank, and the collector / analyzer window
answers.  The 100-trace sweep is the headline property from the issue;
the remaining tests cover the multiprocess backend, composite queries
with mid-trace scheduled control ops, and the merged metrics registry.
"""

from dataclasses import replace

import pytest

from repro.core.compiler import QueryParams
from repro.core.library import build_query
from repro.core.query import flatten
from repro.experiments.common import evaluation_thresholds
from repro.fabric import ShardedDeployment, canonical_reports
from repro.network.deployment import build_deployment
from repro.network.topology import leaf_spine, linear
from repro.traffic.generators import (
    assign_hosts,
    caida_like,
    port_scan,
    syn_flood,
)
from repro.traffic.traces import merge_traces

PARAMS = QueryParams(cm_depth=2, reduce_registers=2048,
                     distinct_registers=2048)
#: Sized so the Q6 composite's three chains verify on one switch.
COMPOSITE_PARAMS = QueryParams(cm_depth=2, reduce_registers=1024,
                               distinct_registers=1024)
LINEAR_KW = dict(
    topology=linear(3),
    install_kw={"path": ["s0", "s1", "s2"]},
    array_size=1 << 13,
)


def thresholds():
    """Low enough that the small test traces actually produce reports."""
    return replace(evaluation_thresholds(), new_tcp_conns=3, port_scan=4)


def workload(seed, n_packets=1200, duration_s=0.3,
             pairs=(("h_src0", "h_dst0"),)):
    """Multi-window benign mix plus Q1/Q4 anomalies."""
    trace = merge_traces([
        caida_like(n_packets, duration_s=duration_s, seed=seed),
        syn_flood(n_packets=max(n_packets // 8, 150),
                  duration_s=duration_s, seed=seed + 50),
        port_scan(n_ports=120, duration_s=duration_s, seed=seed + 99),
    ])
    return assign_hosts(trace, list(pairs))


def record_reports(deployment):
    """Wrap every switch's report sink with the fabric's report
    signature, so a baseline stream compares against ``sd.reports``."""
    recorded = []

    def wrap(sid, inner):
        def sink(report):
            recorded.append((
                str(sid), report.qid, float(report.ts), int(report.epoch),
                tuple(sorted(report.payload.items())),
            ))
            if inner is not None:
                inner(report)
        return sink

    for sid, switch in deployment.switches.items():
        switch.pipeline.report_sink = wrap(sid, switch.pipeline.report_sink)
    return recorded


def stats_sig(stats):
    return (
        stats.packets, stats.delivered, stats.dropped,
        dict(stats.reports_by_switch), stats.deferred,
        stats.stale_deferred, stats.sp_bytes, stats.payload_bytes,
        stats.epochs, stats.mixed_rule_epoch_packets,
        dict(stats.initiated_by_query),
    )


def register_dumps(deployment):
    return {
        str(sid): tuple(
            tuple(bank.array.dump().tolist())
            for bank in switch.pipeline.layout.state_banks()
        )
        for sid, switch in deployment.switches.items()
    }


def window_answers(collector, analyzer, queries):
    """Every sub-query's merged windows plus every intent's detections."""
    answers = {}
    for query in queries:
        for sub in flatten(query):
            answers[("windows", sub.qid)] = collector.merged_results(sub.qid)
        try:
            answers[("detections", query.qid)] = analyzer.detections(
                query.qid
            )
        except KeyError:
            pass
    return answers


def run_baseline(trace, engine, queries, topology, install_kw, th=None,
                 params=PARAMS, schedule=None, **deploy_kw):
    deployment = build_deployment(topology, engine=engine, **deploy_kw)
    built = [build_query(name, th or thresholds()) for name in queries]
    for query in built:
        deployment.controller.install_query(query, params, **install_kw)
    recorded = record_reports(deployment)
    if schedule is not None:
        schedule(deployment)
    stats = deployment.simulator.run(trace)
    return {
        "stats": stats_sig(stats),
        "reports": canonical_reports([recorded]),
        "registers": register_dumps(deployment),
        "answers": window_answers(
            deployment.collector, deployment.analyzer, built
        ),
        "reports_total": stats.reports_total,
    }


def run_sharded(trace, engine, queries, topology, install_kw, workers,
                th=None, params=PARAMS, schedule=None, inline=True,
                **deploy_kw):
    with ShardedDeployment(
        topology, workers=workers, inline=inline, engine=engine,
        **deploy_kw,
    ) as sd:
        built = [build_query(name, th or thresholds()) for name in queries]
        for query in built:
            sd.install_query(query, params, **install_kw)
        if schedule is not None:
            schedule(sd)
        stats = sd.run(trace)
        return {
            "stats": stats_sig(stats),
            "reports": sd.reports,
            "registers": sd.register_dumps(),
            "answers": window_answers(sd.collector, sd.analyzer, built),
            "reports_total": stats.reports_total,
        }


def assert_identical(base, shard):
    assert shard["stats"] == base["stats"]
    assert shard["reports"] == base["reports"]
    assert shard["registers"] == base["registers"]
    assert shard["answers"] == base["answers"]


class TestShardedEquivalence:
    def test_hundred_seed_sweep(self):
        """100 seeded traces — 70 vector, 30 scalar — across 2/3/4-way
        sharding; every observable merges bit-identically."""
        reports_seen = 0
        for seed in range(100):
            engine = "vector" if seed < 70 else "scalar"
            workers = 2 + seed % 3
            trace = workload(seed)
            base = run_baseline(trace, engine, ("Q1", "Q4"), **LINEAR_KW)
            shard = run_sharded(
                trace, engine, ("Q1", "Q4"), workers=workers, **LINEAR_KW
            )
            assert_identical(base, shard)
            reports_seen += base["reports_total"]
        assert reports_seen > 100  # the sweep is not vacuous

    @pytest.mark.parametrize("engine", ["scalar", "vector"])
    def test_multiprocess_backend(self, engine):
        """The real worker-process pool (pipe + bounded handoff queue)
        merges bit-identically to single-process execution."""
        trace = workload(7, n_packets=2500)
        base = run_baseline(trace, engine, ("Q1", "Q4"), **LINEAR_KW)
        shard = run_sharded(
            trace, engine, ("Q1", "Q4"), workers=2, inline=False,
            chunk_size=512, queue_chunks=2, **LINEAR_KW,
        )
        assert_identical(base, shard)
        assert base["reports_total"] > 0

    def test_composite_queries_on_leaf_spine(self):
        """A composite (Q6: multiple data-plane chains + CPU join) owned
        by one shard produces identical detections, on a two-tier Clos
        fabric where ECMP spreads the pairs across spines."""
        topo = leaf_spine(2, 2)
        pairs = [("hlf0n0", "hlf1n0"), ("hlf1n0", "hlf0n0")]
        th = replace(thresholds(), syn_flood=2, syn_flood_sub=4)
        trace = workload(7, n_packets=4000, pairs=pairs)
        kw = dict(
            topology=topo, install_kw={"topology": topo}, th=th,
            params=COMPOSITE_PARAMS, array_size=1 << 14,
        )
        base = run_baseline(trace, "vector", ("Q1", "Q4", "Q6"), **kw)
        shard = run_sharded(
            trace, "vector", ("Q1", "Q4", "Q6"), workers=3, **kw
        )
        assert_identical(base, shard)
        assert base["reports_total"] > 0
        assert base["answers"][("detections", "Q6")]  # the join fired

    def test_scheduled_update_mid_trace(self):
        """``schedule_update`` fires the rule-epoch flip at the same
        packet position on every shard as ``simulator.at`` does in the
        single-process baseline."""
        trace = workload(31, n_packets=2000)
        updated = build_query(
            "Q1", replace(evaluation_thresholds(), new_tcp_conns=8)
        )

        def schedule_base(deployment):
            deployment.simulator.at(0.15, lambda: (
                deployment.controller.update_query(
                    updated, PARAMS, path=["s0", "s1", "s2"]
                )
            ))

        def schedule_shard(sd):
            sd.schedule_update(0.15, updated, PARAMS,
                               path=["s0", "s1", "s2"])

        base = run_baseline(
            trace, "vector", ("Q1", "Q4"), schedule=schedule_base,
            **LINEAR_KW,
        )
        shard = run_sharded(
            trace, "vector", ("Q1", "Q4"), workers=3,
            schedule=schedule_shard, **LINEAR_KW,
        )
        assert_identical(base, shard)
        assert base["reports_total"] > 0

    def test_remove_query_releases_ownership(self):
        """Removing a query everywhere stops its execution; the other
        query's results still merge bit-identically."""
        trace = workload(41)

        def no_q4_baseline(deployment):
            deployment.controller.remove_query("Q4")

        def no_q4_sharded(sd):
            sd.remove_query("Q4")

        base = run_baseline(
            trace, "vector", ("Q1", "Q4"), schedule=no_q4_baseline,
            **LINEAR_KW,
        )
        shard = run_sharded(
            trace, "vector", ("Q1", "Q4"), workers=2,
            schedule=no_q4_sharded, **LINEAR_KW,
        )
        # Q4's windows are gone on both sides; Q1 is identical.
        assert shard["stats"] == base["stats"]
        assert shard["reports"] == base["reports"]
        assert base["reports_total"] > 0

    def test_merged_metrics_report_counters(self):
        """Report-path metrics sum across shards to the baseline's
        counts.  (Control-plane metrics are replicated — every replica
        installs every query — so only traffic-driven counters are
        comparable.)"""
        trace = workload(51)
        topology = linear(3)
        path = ["s0", "s1", "s2"]

        base_dep = build_deployment(
            topology, engine="vector", array_size=1 << 13
        )
        for name in ("Q1", "Q4"):
            base_dep.controller.install_query(
                build_query(name, thresholds()), PARAMS, path=path
            )
        base_stats = base_dep.simulator.run(trace)

        with ShardedDeployment(
            topology, workers=3, inline=True, engine="vector",
            array_size=1 << 13,
        ) as sd:
            for name in ("Q1", "Q4"):
                sd.install_query(
                    build_query(name, thresholds()), PARAMS, path=path
                )
            sd.run(trace)
            merged = sd.merged_metrics()

        def ingested(registry):
            return sum(
                sample.value for sample in registry.samples()
                if sample.name == "collector_reports_ingested_total"
            )

        assert base_stats.reports_total > 0
        assert ingested(merged) == ingested(base_dep.collector.metrics)
