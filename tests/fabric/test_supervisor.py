"""Fabric supervision: detection, respawn-with-replay, degrade, hygiene.

The headline property is the issue's acceptance bar: SIGKILLing a shard
worker mid-stream must surface as a typed :class:`WorkerDiedError`
(never a hang), and the respawned replica — after replaying the
control-op log and the retained window stream — must drive the merged
end state (stats, canonical reports, register dumps) to bit-identity
with the no-fault run.  The remaining classes cover the backend's
bounded queue/pipe ops, the exitcode watch at window rolls, the degrade
policy once the respawn budget is spent, and the shutdown paths that
used to leak queues and process handles.
"""

import os
import signal
import threading
import time
from dataclasses import replace

import pytest

from repro.core.compiler import QueryParams
from repro.core.library import build_query
from repro.experiments.common import evaluation_thresholds
from repro.fabric import (
    ShardedDeployment,
    SupervisorConfig,
    WorkerDiedError,
)
from repro.network.topology import linear
from repro.traffic.columnar import ColumnarTrace
from repro.traffic.generators import assign_hosts, caida_like

PARAMS = QueryParams(cm_depth=2, reduce_registers=2048,
                     distinct_registers=2048)
PATH = ["s0", "s1", "s2"]


def thresholds():
    return replace(evaluation_thresholds(), new_tcp_conns=3, port_scan=4)


def queries(names=("Q1", "Q2")):
    th = thresholds()
    return [build_query(n, th) for n in names]


def make_trace(seed, n_packets=2000, start_s=0.0):
    pkts = list(assign_hosts(
        caida_like(n_packets, duration_s=0.4, start_s=start_s, seed=seed),
        [("h_src0", "h_dst0")],
    ))
    return ColumnarTrace.from_packets(pkts)


def make_sharded(workers=2, array_size=1 << 13, **sup):
    return ShardedDeployment(
        linear(3), workers=workers, chunk_size=512,
        supervisor=SupervisorConfig(**sup),
        num_stages=12, table_capacity=512, array_size=array_size,
        window_ms=100, engine="vector",
    )


def install(sd, names=("Q1", "Q2")):
    for query in queries(names):
        sd.install_query(query, PARAMS, path=PATH)


def backend_of(sd, index):
    return next(b for b in sd._backends if b.index == index)


def kill_worker(sd, index):
    proc = backend_of(sd, index).proc
    os.kill(proc.pid, signal.SIGKILL)
    proc.join(timeout=10)


def end_state(sd, stats):
    key = (stats.packets, stats.delivered, stats.dropped,
           stats.payload_bytes)
    return (key, sd.reports, sd.register_dumps())


class TestBoundedBackendOps:
    """Every queue/pipe op raises a typed error instead of hanging."""

    def test_request_to_dead_worker_raises_with_shard_id(self):
        with make_sharded() as sd:
            install(sd)
            kill_worker(sd, 1)
            backend = backend_of(sd, 1)
            with pytest.raises(WorkerDiedError) as excinfo:
                backend.request("dumps")
            assert excinfo.value.shard == 1
            assert excinfo.value.detected_at <= time.perf_counter()

    def test_feed_and_finish_to_dead_worker_raise(self):
        trace = make_trace(seed=1, n_packets=200)
        with make_sharded() as sd:
            install(sd)
            kill_worker(sd, 0)
            backend = backend_of(sd, 0)
            with pytest.raises(WorkerDiedError) as excinfo:
                # The queue may absorb a few chunks; a dead consumer
                # must surface by finish_stream at the latest — never
                # hang.
                backend.start_stream("full")
                for _ in range(50):
                    backend.feed(trace)
                backend.finish_stream()
            assert excinfo.value.shard == 0

    def test_command_failure_is_not_a_death(self):
        with make_sharded() as sd:
            install(sd)
            with pytest.raises(RuntimeError, match="fabric worker failed"):
                sd._backends[0].request("op", ("no-such-op",))
            # The worker answered; it is alive and keeps serving.
            assert sd._backends[0].alive()
            assert sd.supervisor.restarts_total() == 0


class TestRespawnWithReplay:
    def test_sigkill_mid_stream_is_bit_identical_to_no_fault_run(self):
        trace = make_trace(seed=7)
        with make_sharded(workers=4) as sd:
            install(sd)
            baseline = end_state(sd, sd.run(trace))

        with make_sharded(workers=4) as sd:
            install(sd)
            victim = backend_of(sd, 2).proc
            killer = threading.Timer(
                0.01, os.kill, args=(victim.pid, signal.SIGKILL)
            )
            killer.start()
            stats = sd.run(trace)
            killer.join()
            chaos = end_state(sd, stats)
            events = [e for e in sd.supervisor.events
                      if e["kind"] == "respawn"]
            status = sd.fabric_status()

        assert chaos == baseline
        assert events and events[0]["shard"] == 2
        assert status["states"]["2"] == "running"
        assert status["respawns"] == {"2": 1}

    def test_exitcode_watch_detects_silent_death_at_roll(self):
        """A worker that dies while idle (no RPC in flight to trip a
        timeout) is recovered at the next window roll — within one
        window of the death."""
        with make_sharded() as sd:
            install(sd)
            sd.run(make_trace(seed=3, n_packets=500))
            kill_worker(sd, 1)
            closed = sd.roll_window()
            assert closed >= 0
            assert sd.supervisor.restarts_total() == 1
            assert [e["kind"] for e in sd.supervisor.events] == ["respawn"]
            # The respawned replica serves the next window normally.
            stats = sd.run(make_trace(seed=4, n_packets=500, start_s=0.6))
            assert stats.packets > 0

    def test_restart_metrics_are_exported(self):
        with make_sharded() as sd:
            install(sd)
            kill_worker(sd, 0)
            sd.roll_window()
            text = sd.merged_metrics().render_prometheus()
        assert "fabric_worker_restarts_total" in text
        assert "fabric_worker_state" in text


class TestDegrade:
    def test_budget_exhaustion_repartitions_onto_survivors(self):
        with make_sharded(workers=4, array_size=1 << 16,
                          max_respawns=0) as sd:
            install(sd, names=("Q1", "Q2", "Q6"))
            owners = sd.qpart.owners()
            victim = owners["Q6"]
            kill_worker(sd, victim)
            sd.run(make_trace(seed=5))

            # The dead shard's queries moved onto survivors...
            moved = sd.qpart.owners()
            survivors = {b.index for b in sd._backends}
            assert victim not in survivors
            assert moved["Q6"] in survivors
            assert all(o in survivors for o in moved.values())

            # ...the loss is a supervisor event and a coverage gap...
            events = [e for e in sd.supervisor.events
                      if e["kind"] == "degrade"]
            assert events and events[0]["shard"] == victim
            assert "Q6" in events[0]["moved_qids"]
            gaps = sd.coverage.gaps("Q6")
            assert gaps and gaps[0].reason == "fabric-shard-lost"
            assert gaps[0].switch == f"shard{victim}"

            # ...status reflects it...
            status = sd.fabric_status()
            assert status["states"][str(victim)] == "degraded"
            assert status["degraded"] == [victim]
            assert str(victim) in status["lost"]

            # ...and the fleet keeps running: the heir counts the dead
            # shard's primary flows, so packet accounting is exact again.
            sd.roll_window()
            trace2 = make_trace(seed=6, start_s=0.6)
            stats2 = sd.run(trace2)
            assert stats2.packets == len(trace2)

    def test_no_survivors_raises(self):
        with make_sharded(workers=1, max_respawns=0) as sd:
            install(sd)
            kill_worker(sd, 0)
            with pytest.raises(RuntimeError, match="no survivors left"):
                sd.run(make_trace(seed=2, n_packets=300))


class TestShutdownHygiene:
    """Regression for the leak: terminate without closing queues or the
    process handle left fds and zombies behind."""

    def test_clean_close_reaps_processes_and_queues(self):
        sd = make_sharded()
        install(sd)
        sd.run(make_trace(seed=8, n_packets=300))
        backends = list(sd._backends)
        sd.close()
        for backend in backends:
            assert backend.chunks._closed
            with pytest.raises(ValueError):
                backend.proc.is_alive()  # proc handle closed

    def test_forced_close_after_kill_reaps_too(self):
        sd = make_sharded()
        install(sd)
        kill_worker(sd, 1)
        started = time.perf_counter()
        sd.close()
        assert time.perf_counter() - started < 10
        # Both handles are closed regardless of how the worker ended.
        for index in (0, 1):
            backend = backend_of(sd, index)
            assert backend.chunks._closed
            with pytest.raises(ValueError):
                backend.proc.is_alive()

    def test_close_is_idempotent(self):
        sd = make_sharded()
        sd.close()
        sd.close()


class TestSupervisorConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisorConfig(poll_interval_s=0)
        with pytest.raises(ValueError):
            SupervisorConfig(max_respawns=-1)

    def test_respawn_budget_is_consumed(self):
        cfg = SupervisorConfig(max_respawns=2)
        from repro.collector.metrics import MetricsRegistry
        from repro.fabric.supervisor import WorkerSupervisor

        sup = WorkerSupervisor(2, cfg, MetricsRegistry())
        assert sup.allow_respawn(0)
        assert sup.allow_respawn(0)
        assert not sup.allow_respawn(0)
        assert sup.allow_respawn(1)  # budgets are per shard
