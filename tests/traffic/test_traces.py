"""Trace container tests."""

import pytest

from repro.core.packet import Packet
from repro.traffic.traces import Trace, merge_traces


def pkts(times):
    return [Packet(ts=t) for t in times]


class TestTrace:
    def test_sorts_by_default(self):
        trace = Trace(pkts([0.3, 0.1, 0.2]))
        assert [p.ts for p in trace] == [0.1, 0.2, 0.3]

    def test_assume_sorted_validates(self):
        with pytest.raises(ValueError):
            Trace(pkts([0.3, 0.1]), assume_sorted=True)

    def test_duration(self):
        assert Trace(pkts([0.1, 0.6])).duration_s == pytest.approx(0.5)
        assert Trace([]).duration_s == 0.0

    def test_window_slicing(self):
        trace = Trace(pkts([0.05, 0.15, 0.17, 0.25]))
        assert len(trace.window(1, 0.1)) == 2
        assert len(trace.window(3, 0.1)) == 0

    def test_epochs(self):
        trace = Trace(pkts([0.05, 0.15, 0.25]))
        buckets = trace.epochs(0.1)
        assert set(buckets) == {0, 1, 2}

    def test_with_hosts(self):
        trace = Trace([Packet(sip=1, dip=2)])
        routed = trace.with_hosts("a", "b")
        assert routed[0].src_host == "a"
        assert routed[0].dst_host == "b"
        assert routed[0].sip == 1

    def test_limited(self):
        trace = Trace(pkts([0.1, 0.2, 0.3]))
        assert len(trace.limited(2)) == 2

    def test_stats(self):
        trace = Trace([
            Packet(proto=6, len=100, ts=0.0, sip=1),
            Packet(proto=17, len=200, ts=0.5, sip=2),
        ])
        stats = trace.stats()
        assert stats.packets == 2
        assert stats.flows == 2
        assert stats.bytes == 300
        assert stats.tcp_fraction == 0.5
        assert stats.udp_fraction == 0.5
        assert stats.packet_rate == pytest.approx(4.0)


class TestMerge:
    def test_merge_preserves_order(self):
        a = Trace(pkts([0.1, 0.3]), name="a")
        b = Trace(pkts([0.2, 0.4]), name="b")
        merged = merge_traces([a, b])
        assert [p.ts for p in merged] == [0.1, 0.2, 0.3, 0.4]
        assert merged.name == "a+b"

    def test_merge_empty(self):
        assert len(merge_traces([Trace([]), Trace([])])) == 0
