"""Trace generator tests: each attack must be detectable by its query."""

import pytest

from repro.core.groundtruth import evaluate_trace
from repro.core.library import QueryThresholds, build_query
from repro.core.packet import Proto
from repro.traffic.generators import (
    assign_hosts,
    background_traffic,
    caida_like,
    dns_orphan_responses,
    mawi_like,
    port_scan,
    slowloris,
    ssh_brute_force,
    superspreader,
    syn_flood,
    syn_scan_noise,
    udp_flood,
)
from repro.traffic.traces import merge_traces


class TestBackground:
    def test_packet_budget_respected(self):
        trace = background_traffic(5000, seed=1)
        # SYN-ACK and DNS replies add roughly one packet per flow.
        assert 5000 <= len(trace) < 5000 * 1.2

    def test_deterministic_per_seed(self):
        a = background_traffic(1000, seed=7)
        b = background_traffic(1000, seed=7)
        assert [p.five_tuple for p in a] == [p.five_tuple for p in b]

    def test_seed_changes_trace(self):
        a = background_traffic(1000, seed=7)
        b = background_traffic(1000, seed=8)
        assert [p.five_tuple for p in a] != [p.five_tuple for p in b]

    def test_heavy_tailed_flows(self):
        trace = caida_like(10_000, seed=3)
        from repro.traffic.flows import flow_table

        sizes = sorted(
            (s.packets for s in flow_table(trace).values()), reverse=True
        )
        top_share = sum(sizes[: len(sizes) // 100 + 1]) / sum(sizes)
        assert top_share > 0.15  # top 1% of flows carries >15% of packets

    def test_mawi_more_udp_than_caida(self):
        # Compare at flow granularity: packet-level fractions are dominated
        # by whichever elephant flows the seed happens to draw.
        from repro.traffic.flows import flow_table

        def udp_flow_fraction(trace):
            table = flow_table(trace)
            return sum(1 for k in table if k[2] == 17) / len(table)

        caida = udp_flow_fraction(caida_like(8000, seed=5))
        mawi = udp_flow_fraction(mawi_like(8000, seed=5))
        assert mawi > caida

    def test_time_ordering(self):
        trace = caida_like(2000, seed=9)
        times = [p.ts for p in trace]
        assert times == sorted(times)


class TestAttacksDetectable:
    """Each generator must trip its query against exact ground truth."""

    def _truth_keys(self, query, trace):
        out = evaluate_trace(query, trace.packets)
        keys = set()
        for window in out.values():
            for truth in window.values():
                keys |= truth.keys
        return keys

    def test_syn_flood_trips_q1(self):
        th = QueryThresholds(new_tcp_conns=30)
        trace = syn_flood(n_packets=500, duration_s=0.3)
        assert self._truth_keys(build_query("Q1", th), trace)

    def test_ssh_brute_trips_q2(self):
        th = QueryThresholds(ssh_brute=10)
        trace = ssh_brute_force(n_attempts=200, duration_s=0.3)
        assert self._truth_keys(build_query("Q2", th), trace)

    def test_superspreader_trips_q3(self):
        th = QueryThresholds(superspreader=30)
        trace = superspreader(n_destinations=200, duration_s=0.3)
        assert self._truth_keys(build_query("Q3", th), trace)

    def test_port_scan_trips_q4(self):
        th = QueryThresholds(port_scan=20)
        trace = port_scan(n_ports=200, duration_s=0.3)
        assert self._truth_keys(build_query("Q4", th), trace)

    def test_udp_flood_trips_q5(self):
        th = QueryThresholds(udp_ddos=30)
        trace = udp_flood(n_packets=500, duration_s=0.3)
        assert self._truth_keys(build_query("Q5", th), trace)

    def test_slowloris_shape(self):
        trace = slowloris(n_connections=50, duration_s=0.2)
        stats = trace.stats()
        # Many connections, tiny mean packet size.
        assert stats.bytes / stats.packets < 100

    def test_dns_orphans_have_answers(self):
        trace = dns_orphan_responses(duration_s=0.2)
        assert all(p.dns_ancount > 0 for p in trace)
        assert all(p.proto == Proto.UDP and p.sport == 53 for p in trace)

    def test_syn_noise_cardinality(self):
        trace = syn_scan_noise(n_packets=2000, n_destinations=1500,
                               duration_s=0.1)
        dips = {p.dip for p in trace}
        assert len(dips) > 800


class TestAssignHosts:
    def test_flow_sticks_to_one_pair(self):
        trace = caida_like(2000, seed=2)
        routed = assign_hosts(trace, [("a", "b"), ("c", "d")], seed=1)
        seen = {}
        for p in routed:
            pair = (p.src_host, p.dst_host)
            assert seen.setdefault(p.five_tuple, pair) == pair

    def test_pairs_all_used(self):
        trace = caida_like(4000, seed=2)
        pairs = [("a", "b"), ("c", "d"), ("e", "f")]
        routed = assign_hosts(trace, pairs, seed=1)
        used = {(p.src_host, p.dst_host) for p in routed}
        assert used == set(pairs)

    def test_empty_pairs_rejected(self):
        with pytest.raises(ValueError):
            assign_hosts(caida_like(100), [])


class TestFlows:
    def test_flow_table(self):
        from repro.core.packet import Packet
        from repro.traffic.flows import flow_table

        packets = [
            Packet(sip=1, dip=2, proto=6, sport=5, dport=80, len=100,
                   ts=0.0, tcp_flags=2),
            Packet(sip=1, dip=2, proto=6, sport=5, dport=80, len=200,
                   ts=0.5, tcp_flags=1),
        ]
        table = flow_table(packets)
        assert len(table) == 1
        stats = next(iter(table.values()))
        assert stats.packets == 2
        assert stats.bytes == 300
        assert stats.syn_count == 1
        assert stats.fin_count == 1
        assert stats.duration == pytest.approx(0.5)

    def test_group_by_flow_preserves_order(self):
        from repro.core.packet import Packet
        from repro.traffic.flows import group_by_flow

        packets = [Packet(sip=1, ts=0.1), Packet(sip=1, ts=0.2)]
        groups = group_by_flow(packets)
        flow = next(iter(groups.values()))
        assert [p.ts for p in flow] == [0.1, 0.2]
