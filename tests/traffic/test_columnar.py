"""Columnar trace representation tests."""

import numpy as np
import pytest

from repro.core.packet import Packet
from repro.traffic.columnar import (
    DEFAULT_CHUNK_SIZE,
    ColumnarTrace,
    iter_column_chunks,
)
from repro.traffic.generators import caida_like
from repro.traffic.traces import Trace


def sample_packets():
    return [
        Packet(sip=10, dip=20, proto=6, sport=1000, dport=80, tcp_flags=2,
               len=64, ts=0.01, src_host="hA", dst_host="hB"),
        Packet(sip=11, dip=21, proto=17, sport=53, dport=5353, len=220,
               dns_ancount=2, ts=0.02),
        Packet(sip=12, dip=22, proto=6, sport=1001, dport=443,
               tcp_flags=16, len=1500, ts=0.03, src_host="hB",
               dst_host="hA"),
    ]


def as_tuple(p):
    return (p.sip, p.dip, p.proto, p.sport, p.dport, p.tcp_flags, p.len,
            p.ttl, p.dns_ancount, p.ts, p.src_host, p.dst_host)


class TestRoundTrip:
    def test_packets_roundtrip_losslessly(self):
        packets = sample_packets()
        trace = ColumnarTrace.from_packets(packets)
        assert len(trace) == 3
        back = trace.to_packets()
        assert [as_tuple(a) for a in back] == [as_tuple(b) for b in packets]

    def test_host_interning(self):
        trace = ColumnarTrace.from_packets(sample_packets())
        assert set(trace.host_table) == {"hA", "hB"}
        assert int(trace.src_host_ids[1]) == -1  # None host
        assert trace.host_at(-1) is None

    def test_generated_trace_roundtrip(self):
        trace = caida_like(2000, duration_s=0.1)
        columnar = ColumnarTrace.from_trace(trace)
        assert [as_tuple(p) for p in columnar.iter_packets()] == \
            [as_tuple(p) for p in trace]

    def test_missing_column_rejected(self):
        with pytest.raises(ValueError, match="missing columns"):
            ColumnarTrace({"sip": np.zeros(1, dtype=np.int64)},
                          np.zeros(1))


class TestSlicing:
    def test_slice_is_a_view(self):
        trace = ColumnarTrace.from_packets(sample_packets())
        window = trace.slice(1, 3)
        assert len(window) == 2
        assert window.columns["sip"].base is not None  # a view, no copy
        assert as_tuple(window.packet_at(0)) == \
            as_tuple(trace.packet_at(1))

    def test_with_hosts(self):
        trace = ColumnarTrace.from_packets(sample_packets())
        pinned = trace.with_hosts("src", "dst")
        assert all(p.src_host == "src" and p.dst_host == "dst"
                   for p in pinned.iter_packets())


class TestChunking:
    def test_columnar_source_sliced(self):
        trace = ColumnarTrace.from_packets(
            [Packet(sip=i, ts=i * 0.001) for i in range(10)]
        )
        chunks = list(iter_column_chunks(trace, chunk_size=4))
        assert [len(c) for c in chunks] == [4, 4, 2]
        assert int(chunks[2].columns["sip"][0]) == 8

    def test_iterable_source_buffered(self):
        packets = (Packet(sip=i, ts=i * 0.001) for i in range(7))
        chunks = list(iter_column_chunks(packets, chunk_size=3))
        assert [len(c) for c in chunks] == [3, 3, 1]

    def test_trace_source(self):
        trace = Trace([Packet(sip=i, ts=i * 0.001) for i in range(5)])
        chunks = list(iter_column_chunks(trace, chunk_size=DEFAULT_CHUNK_SIZE))
        assert [len(c) for c in chunks] == [5]

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            list(iter_column_chunks([], chunk_size=0))
