"""Streaming generators match their list-returning wrappers exactly.

The wrappers are now thin views over the lazy/columnar producers, so a
stream consumed incrementally must yield the same packets, in the same
order, with the same field values as the eager list form.
"""

import inspect
import types

import pytest

from repro.traffic import generators as gen


def as_tuple(p):
    return (p.sip, p.dip, p.proto, p.sport, p.dport, p.tcp_flags, p.len,
            p.ttl, p.dns_ancount, p.ts)


CASES = [
    ("background", lambda: gen.background_traffic(4000, seed=7),
     lambda: gen.background_stream(4000, seed=7)),
    ("caida", lambda: gen.caida_like(3000, seed=2),
     lambda: gen.caida_like_stream(3000, seed=2)),
    ("mawi", lambda: gen.mawi_like(3000, seed=5),
     lambda: gen.mawi_like_stream(3000, seed=5)),
    ("syn_flood", lambda: gen.syn_flood(seed=4),
     lambda: gen.syn_flood_stream(seed=4)),
    ("port_scan", lambda: gen.port_scan(seed=4),
     lambda: gen.port_scan_stream(seed=4)),
    ("udp_flood", lambda: gen.udp_flood(seed=4),
     lambda: gen.udp_flood_stream(seed=4)),
    ("ssh_brute_force", lambda: gen.ssh_brute_force(seed=4),
     lambda: gen.ssh_brute_force_stream(seed=4)),
    ("slowloris", lambda: gen.slowloris(seed=4),
     lambda: gen.slowloris_stream(seed=4)),
    ("superspreader", lambda: gen.superspreader(seed=4),
     lambda: gen.superspreader_stream(seed=4)),
    ("dns_orphan", lambda: gen.dns_orphan_responses(seed=4),
     lambda: gen.dns_orphan_responses_stream(seed=4)),
    ("syn_scan_noise", lambda: gen.syn_scan_noise(1500, seed=4),
     lambda: gen.syn_scan_noise_stream(1500, seed=4)),
]


@pytest.mark.parametrize("name,eager,stream",
                         CASES, ids=[c[0] for c in CASES])
def test_stream_matches_list_wrapper(name, eager, stream):
    trace = eager()
    streamed = [as_tuple(p) for p in stream()]
    assert streamed == [as_tuple(p) for p in trace]


def test_attack_streams_are_lazy_generators():
    for name in ("syn_flood_stream", "port_scan_stream",
                 "udp_flood_stream", "slowloris_stream",
                 "dns_orphan_responses_stream", "syn_scan_noise_stream"):
        fn = getattr(gen, name)
        assert inspect.isgeneratorfunction(fn), name
        stream = fn()
        assert isinstance(stream, types.GeneratorType)
        stream.close()


def test_background_columnar_rejects_empty():
    with pytest.raises(ValueError):
        gen.background_columnar(0)
    with pytest.raises(ValueError):
        gen.background_traffic(-5)


def test_columnar_forms_carry_profile_names():
    assert gen.caida_like_columnar(500).name == "caida-like"
    assert gen.mawi_like_columnar(500).name == "mawi-like"
