"""Trace serialization tests."""

import numpy as np
import pytest

from repro.core.packet import Packet
from repro.traffic.generators import assign_hosts, caida_like
from repro.traffic.io import save_trace, load_trace
from repro.traffic.traces import Trace


class TestRoundTrip:
    def test_fields_preserved(self, tmp_path):
        trace = caida_like(500, duration_s=0.2, seed=3)
        path = save_trace(trace, tmp_path / "t.npz")
        loaded = load_trace(path)
        assert len(loaded) == len(trace)
        assert loaded.name == trace.name
        for a, b in zip(trace, loaded):
            assert a.five_tuple == b.five_tuple
            assert a.tcp_flags == b.tcp_flags
            assert a.len == b.len
            assert a.ts == pytest.approx(b.ts)

    def test_host_labels_preserved(self, tmp_path):
        trace = assign_hosts(caida_like(200, duration_s=0.1, seed=4),
                             [("h_a", "h_b"), ("h_c", "h_d")])
        loaded = load_trace(save_trace(trace, tmp_path / "t.npz"))
        assert {(p.src_host, p.dst_host) for p in loaded} == {
            (p.src_host, p.dst_host) for p in trace
        }

    def test_none_hosts_preserved(self, tmp_path):
        trace = Trace([Packet(ts=0.1), Packet(ts=0.2)])
        loaded = load_trace(save_trace(trace, tmp_path / "t.npz"))
        assert all(p.src_host is None for p in loaded)

    def test_empty_trace(self, tmp_path):
        loaded = load_trace(save_trace(Trace([]), tmp_path / "t.npz"))
        assert len(loaded) == 0

    def test_version_checked(self, tmp_path):
        import json

        trace = Trace([Packet(ts=0.0)])
        path = save_trace(trace, tmp_path / "t.npz")
        with np.load(path, allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["meta"] = np.array(json.dumps({"version": 99, "name": "x",
                                              "hosts": []}))
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_trace(path)

    def test_loaded_trace_runs_through_simulator(self, tmp_path):
        from repro.network.deployment import build_deployment
        from repro.network.topology import linear

        trace = assign_hosts(caida_like(300, duration_s=0.1, seed=5),
                             [("h_src0", "h_dst0")])
        loaded = load_trace(save_trace(trace, tmp_path / "t.npz"))
        deployment = build_deployment(linear(1))
        stats = deployment.simulator.run(loaded)
        assert stats.delivered == len(trace)
