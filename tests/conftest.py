"""Shared fixtures for the Newton reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.compiler import QueryParams
from repro.core.packet import Packet, Proto, TcpFlags
from repro.core.query import Query
from repro.network.deployment import build_deployment
from repro.network.topology import linear


@pytest.fixture
def q1_like() -> Query:
    """A small Q1-style query with a low threshold for fast tests."""
    return (
        Query("t.q1", "new TCP connections (test)")
        .filter(proto=Proto.TCP, tcp_flags=TcpFlags.SYN)
        .map("dip")
        .reduce("dip")
        .where(ge=5)
    )


@pytest.fixture
def small_params() -> QueryParams:
    """Sketch parameters sized for unit-test register arrays."""
    return QueryParams(cm_depth=2, bf_hashes=2,
                       reduce_registers=256, distinct_registers=256)


@pytest.fixture
def single_switch_deployment():
    """One switch, one host pair, analyzer wired as report sink."""
    return build_deployment(linear(1), num_stages=12, array_size=4096)


def syn_packet(sip: int, dip: int, ts: float = 0.0, sport: int = 1234,
               dport: int = 80) -> Packet:
    return Packet(sip=sip, dip=dip, proto=int(Proto.TCP), sport=sport,
                  dport=dport, tcp_flags=int(TcpFlags.SYN), ts=ts)


@pytest.fixture
def make_syn():
    return syn_packet
