"""Engine registry and wiring tests."""

import pytest

from repro.engine import (
    ENGINES,
    ExecutionEngine,
    ScalarEngine,
    VectorizedEngine,
    get_engine,
)
from repro.network.deployment import build_deployment
from repro.network.topology import linear


class TestGetEngine:
    def test_none_means_scalar(self):
        assert isinstance(get_engine(None), ScalarEngine)

    def test_by_name(self):
        assert isinstance(get_engine("scalar"), ScalarEngine)
        assert isinstance(get_engine("vector"), VectorizedEngine)

    def test_instance_passthrough(self):
        engine = VectorizedEngine(batch_size=8)
        assert get_engine(engine) is engine

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown execution engine"):
            get_engine("quantum")

    def test_registry_holds_both_builtins(self):
        get_engine("scalar")  # ensure lazy registration happened
        assert {"scalar", "vector"} <= set(ENGINES)
        for cls in ENGINES.values():
            assert issubclass(cls, ExecutionEngine)


class TestVectorizedConfig:
    @pytest.mark.parametrize("bad", [0, -4])
    def test_batch_size_must_be_positive(self, bad):
        with pytest.raises(ValueError, match="batch size"):
            VectorizedEngine(batch_size=bad)

    def test_engine_names(self):
        assert ScalarEngine().name == "scalar"
        assert VectorizedEngine().name == "vector"


class TestDeploymentWiring:
    def test_default_is_scalar(self):
        deployment = build_deployment(linear(1))
        assert isinstance(deployment.simulator.engine, ScalarEngine)

    def test_vector_selected_by_name(self):
        deployment = build_deployment(linear(1), engine="vector")
        assert isinstance(deployment.simulator.engine, VectorizedEngine)
