"""Fault-injectable control channel: semantics and determinism."""

import pytest

from repro.ctrlplane import (
    ChannelLoss,
    ChannelTimeout,
    FaultPlan,
    FaultyControlChannel,
    SwitchRebooted,
)


class _StubSwitch:
    """Just enough switch for the reboot fault's staged-state wipe."""

    def __init__(self):
        self.aborts = 0

    def abort_staged(self) -> int:
        self.aborts += 1
        return 0


class TestFaultPlan:
    def test_rejects_out_of_range_rate(self):
        with pytest.raises(ValueError):
            FaultPlan(loss_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(timeout_rate=-0.1)

    def test_rejects_rates_summing_past_one(self):
        with pytest.raises(ValueError):
            FaultPlan(loss_rate=0.5, timeout_rate=0.4, reboot_rate=0.2)

    def test_rejects_negative_timeout(self):
        with pytest.raises(ValueError):
            FaultPlan(detect_timeout_s=-1.0)


class TestFaultSemantics:
    def test_loss_skips_the_switch_side_effect(self):
        channel = FaultyControlChannel(FaultPlan(loss_rate=1.0, seed=3))
        applied = []
        with pytest.raises(ChannelLoss) as exc:
            channel.send("install", 5, apply=lambda: applied.append(1))
        assert not applied, "a lost message must not be applied"
        assert exc.value.delay_s > 0
        assert channel.faults_injected["loss"] == 1

    def test_timeout_applies_but_hides_the_ack(self):
        channel = FaultyControlChannel(FaultPlan(timeout_rate=1.0, seed=3))
        applied = []
        with pytest.raises(ChannelTimeout):
            channel.send("install", 5, apply=lambda: applied.append(1))
        assert applied == [1], "a timed-out message WAS applied"
        # The attempt is on the wire, so it is in the transaction log.
        assert channel.log[-1].operation == "install"

    def test_reboot_wipes_staged_state(self):
        channel = FaultyControlChannel(FaultPlan(reboot_rate=1.0, seed=3))
        switch = _StubSwitch()
        applied = []
        with pytest.raises(SwitchRebooted):
            channel.send("install", 5, switch=switch,
                         apply=lambda: applied.append(1))
        assert not applied
        assert switch.aborts == 1

    def test_reliable_bypasses_all_faults(self):
        channel = FaultyControlChannel(FaultPlan(loss_rate=1.0, seed=3))
        result, delay = channel.send(
            "install", 5, apply=lambda: "ok", reliable=True
        )
        assert result == "ok"
        assert delay > 0
        assert channel.faults_injected["loss"] == 0

    def test_fault_free_plan_always_delivers(self):
        channel = FaultyControlChannel()
        for _ in range(50):
            result, _ = channel.send("install", 1, apply=lambda: "ok")
            assert result == "ok"


class TestDeterminism:
    def _schedule(self, channel, txn_id, n=20):
        """Fault-kind sequence for n messages of one transaction."""
        channel.begin_transaction(txn_id)
        kinds = []
        for _ in range(n):
            try:
                channel.send("install", 1, apply=lambda: None)
                kinds.append("ok")
            except ChannelLoss:
                kinds.append("loss")
            except SwitchRebooted:
                kinds.append("reboot")
            except ChannelTimeout:
                kinds.append("timeout")
        return kinds

    def test_same_seed_and_txn_replays_identically(self):
        plan = FaultPlan(loss_rate=0.3, timeout_rate=0.2, reboot_rate=0.1,
                         seed=42)
        a = self._schedule(FaultyControlChannel(plan), txn_id=7)
        b = self._schedule(FaultyControlChannel(plan), txn_id=7)
        assert a == b

    def test_different_txn_ids_draw_different_schedules(self):
        plan = FaultPlan(loss_rate=0.3, timeout_rate=0.2, reboot_rate=0.1,
                         seed=42)
        channel = FaultyControlChannel(plan)
        a = self._schedule(channel, txn_id=1)
        b = self._schedule(channel, txn_id=2)
        assert a != b

    def test_different_seeds_draw_different_schedules(self):
        a = self._schedule(FaultyControlChannel(FaultPlan(
            loss_rate=0.4, seed=1)), txn_id=0)
        b = self._schedule(FaultyControlChannel(FaultPlan(
            loss_rate=0.4, seed=2)), txn_id=0)
        assert a != b
