"""Transaction manager: 2PC phases, retries, rollback, journal, metrics."""

import pytest

from repro.core.compiler import QueryParams
from repro.core.query import Query
from repro.ctrlplane import (
    ChannelLoss,
    FaultPlan,
    FaultyControlChannel,
    TransactionAborted,
    TxnConfig,
)
from repro.network.deployment import build_deployment
from repro.network.topology import linear
from repro.runtime.channel import ControlChannel
from repro.verify import VerificationError

PARAMS = QueryParams(cm_depth=2, bf_hashes=2,
                     reduce_registers=128, distinct_registers=128)


def q(qid="txn.q", threshold=3):
    return (
        Query(qid)
        .filter(proto=6, tcp_flags=2)
        .map("dip")
        .reduce("dip")
        .where(ge=threshold)
    )


def deploy(channel=None, switches=3, **kwargs):
    return build_deployment(linear(switches), channel=channel, **kwargs)


class _CommitFailingChannel(FaultyControlChannel):
    """Loses the first ``fail`` unreliable commit flips (prepare is clean)."""

    def __init__(self, fail=100):
        super().__init__(FaultPlan())
        self.fail = fail

    def send(self, operation, rules, switch=None, apply=None,
             overhead_s=None, reliable=False):
        if operation == "commit" and not reliable and self.fail > 0:
            self.fail -= 1
            raise ChannelLoss("commit flip lost", delay_s=0.001)
        return super().send(operation, rules, switch=switch, apply=apply,
                            overhead_s=overhead_s, reliable=reliable)


class TestCommitPath:
    def test_install_flips_every_switch_to_one_epoch(self):
        dep = deploy()
        dep.controller.install_query(q(), PARAMS,
                                     path=["s0", "s1", "s2"])
        epochs = {s.rule_epoch for s in dep.switches.values()}
        assert epochs == {1}, "epoch beacon must reach non-participants too"
        assert dep.controller.txn.epoch == 1
        for switch in dep.switches.values():
            assert switch.staged_rule_count == 0
            assert switch.retired_rule_count == 0

    def test_install_journal_and_metrics(self):
        dep = deploy()
        dep.controller.install_query(q(), PARAMS, path=["s0"])
        txn = dep.controller.txn
        entries = txn.journal.entries()
        assert len(entries) == 1
        assert entries[0].op == "install"
        assert entries[0].state == "committed"
        assert entries[0].rules_staged > 0
        counter = txn.registry.counter("txn_transactions_total")
        assert counter.value(op="install", outcome="committed") == 1

    def test_remove_garbage_collects_everything(self):
        dep = deploy()
        dep.controller.install_query(q(), PARAMS, path=["s0", "s1"])
        before = dep.controller.rule_count()
        removal = dep.controller.remove_query("txn.q")
        assert removal.rules_removed == before
        assert dep.controller.rule_count() == 0
        for switch in dep.switches.values():
            assert switch.retired_rule_count == 0

    def test_channel_log_vocabulary(self):
        dep = deploy()
        dep.controller.install_query(q(), PARAMS, path=["s0"])
        dep.controller.remove_query("txn.q")
        ops = {t.operation for t in dep.controller.channel.log}
        assert {"install", "commit", "retire", "remove"} <= ops

    def test_update_is_one_transaction(self):
        dep = deploy()
        dep.controller.install_query(q(threshold=3), PARAMS, path=["s0"])
        result = dep.controller.update_query(q(threshold=9), PARAMS,
                                             path=["s0"])
        txn = dep.controller.txn
        assert [e.op for e in txn.journal.entries()] == ["install", "update"]
        assert result.rules_staged > 0
        assert result.rules_removed > 0
        # Same definition size: the swap is rule-count neutral after GC.
        assert dep.switch("s0").rule_count == result.rules_staged
        assert dep.switch("s0").staged_rule_count == 0


class TestFaultTolerance:
    def test_commits_under_heavy_faults(self):
        channel = FaultyControlChannel(FaultPlan(
            loss_rate=0.25, timeout_rate=0.2, reboot_rate=0.1, seed=5,
        ))
        dep = deploy(channel=channel,
                     txn_config=TxnConfig(max_attempts=25))
        dep.controller.install_query(q(), PARAMS, path=["s0", "s1", "s2"])
        result = dep.controller.update_query(q(threshold=9), PARAMS,
                                             path=["s0", "s1", "s2"])
        assert result.rules_staged > 0
        assert {s.rule_epoch for s in dep.switches.values()} == {2}
        retries = dep.controller.txn.registry.counter("txn_retries_total")
        assert retries.total > 0, "the fault schedule must have bitten"

    def test_prepare_exhaustion_aborts_cleanly(self):
        channel = FaultyControlChannel(FaultPlan(loss_rate=1.0, seed=5))
        dep = deploy(channel=channel, txn_config=TxnConfig(max_attempts=3))
        with pytest.raises(TransactionAborted):
            dep.controller.install_query(q(), PARAMS, path=["s0"])
        assert "txn.q" not in dep.controller.installed
        assert dep.controller.rule_count() == 0
        assert all(s.rule_epoch == 0 for s in dep.switches.values())
        entry = dep.controller.txn.journal.entries()[-1]
        assert entry.state == "aborted"

    def test_commit_exhaustion_rolls_back_to_prior_epoch(self):
        channel = _CommitFailingChannel()
        dep = deploy(channel=channel, txn_config=TxnConfig(max_attempts=3))
        channel.fail = 0  # let the install through
        dep.controller.install_query(q(threshold=3), PARAMS,
                                     path=["s0", "s1"])
        rules_before = dep.controller.rule_count()
        channel.fail = 10_000  # every commit flip now fails
        with pytest.raises(TransactionAborted):
            dep.controller.update_query(q(threshold=9), PARAMS,
                                        path=["s0", "s1"])
        # Prior epoch fully intact: old rules resident and serving, no
        # staged residue, no retire marks, epochs unchanged.
        assert dep.controller.rule_count() == rules_before
        assert all(s.rule_epoch == 1 for s in dep.switches.values())
        assert all(s.staged_rule_count == 0 for s in dep.switches.values())
        assert all(s.retired_rule_count == 0 for s in dep.switches.values())
        assert "txn.q" in dep.controller.installed
        rollbacks = dep.controller.txn.registry.counter(
            "txn_rollbacks_total"
        )
        assert rollbacks.total == 1

    def test_update_failure_keeps_old_version_serving(self):
        """Regression (ISSUE 3 satellite): the pre-transactional
        update_query left the query uninstalled when the install leg
        failed after the remove leg succeeded."""
        channel = FaultyControlChannel(FaultPlan(loss_rate=1.0, seed=5))
        dep = deploy(channel=channel, txn_config=TxnConfig(max_attempts=2))
        channel.fault_plan = FaultPlan()  # fault-free install
        dep.controller.install_query(q(threshold=3), PARAMS, path=["s0"])
        rules_before = dep.switch("s0").rule_count
        channel.fault_plan = FaultPlan(loss_rate=1.0, seed=5)
        with pytest.raises(TransactionAborted):
            dep.controller.update_query(q(threshold=9), PARAMS, path=["s0"])
        assert "txn.q" in dep.controller.installed
        assert dep.switch("s0").rule_count == rules_before
        # The old threshold is still what the data plane enforces.
        from repro.core.packet import Packet

        reports = []
        for i in range(4):
            res = dep.switch("s0").process(
                Packet(sip=i + 1, dip=9, proto=6, tcp_flags=2, ts=0.0),
                snapshot=None,
            )
            reports.extend(res.reports)
        assert len(reports) == 1, "old version (threshold 3) still serves"


class TestVerificationGate:
    def test_failing_verification_aborts_before_any_switch(self):
        dep = deploy(array_size=64)
        big = QueryParams(cm_depth=2, reduce_registers=4096)
        with pytest.raises(VerificationError):
            dep.controller.install_query(q(), big, path=["s0"])
        assert dep.controller.rule_count() == 0
        assert all(s.rule_epoch == 0 for s in dep.switches.values())
        entry = dep.controller.txn.journal.entries()[-1]
        assert entry.state == "aborted"
        assert "verification" in entry.error

    def test_update_admission_models_double_occupancy(self):
        """Make-before-break needs BOTH versions resident until GC; the
        gate must reject an update whose shadow bank cannot fit."""
        dep = deploy(array_size=1024)
        tight = QueryParams(cm_depth=2, reduce_registers=768)
        dep.controller.install_query(q(), tight, path=["s0"])
        with pytest.raises(VerificationError):
            dep.controller.update_query(q(threshold=9), tight, path=["s0"])
        assert "txn.q" in dep.controller.installed


class TestConfigValidation:
    def test_txn_config_validation(self):
        with pytest.raises(ValueError):
            TxnConfig(max_attempts=0)
        with pytest.raises(ValueError):
            TxnConfig(backoff_factor=0.5)
        assert TxnConfig().backoff_s(2) > TxnConfig().backoff_s(1)

    def test_plain_channel_still_works(self):
        dep = deploy(channel=ControlChannel())
        result = dep.controller.install_query(q(), PARAMS, path=["s0"])
        assert result.rules_staged > 0
