"""Write-ahead log: durability discipline, torn tails, txn integration."""

import json
import os
from dataclasses import replace

import pytest

from repro.collector.metrics import MetricsRegistry
from repro.core.compiler import QueryParams
from repro.core.query import Query
from repro.ctrlplane import WriteAheadLog
from repro.network.deployment import build_deployment
from repro.network.topology import linear

PARAMS = QueryParams(cm_depth=2, bf_hashes=2,
                     reduce_registers=128, distinct_registers=128)


def q(qid="wal.q", threshold=3):
    return (
        Query(qid)
        .filter(proto=6, tcp_flags=2)
        .map("dip")
        .reduce("dip")
        .where(ge=threshold)
    )


class TestAppendReplay:
    def test_round_trip_preserves_order_and_sequence(self, tmp_path):
        with WriteAheadLog(str(tmp_path)) as wal:
            assert wal.append("op", {"op": "install", "spec": {"a": 1}}) == 1
            assert wal.append("txn", {"txn_id": 1, "epoch": 1}) == 2
            assert wal.append("snapshot", {"window_epoch": 4}) == 3

        wal2 = WriteAheadLog(str(tmp_path))
        records = wal2.replay()
        assert [r["kind"] for r in records] == ["op", "txn", "snapshot"]
        assert [r["seq"] for r in records] == [1, 2, 3]
        assert records[0]["payload"] == {"op": "install", "spec": {"a": 1}}
        # The sequence continues where the previous incarnation stopped.
        assert wal2.append("op", {"op": "remove", "qid": "x"}) == 4
        wal2.close()

    def test_append_is_on_disk_before_returning(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append("op", {"op": "install"})
        # Read the file through a separate descriptor without closing
        # the writer: the record must already be durable.
        with open(wal.path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["kind"] == "op"
        wal.close()

    def test_append_after_close_raises(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.close()
        with pytest.raises(ValueError):
            wal.append("op", {})

    def test_metrics(self, tmp_path):
        reg = MetricsRegistry()
        wal = WriteAheadLog(str(tmp_path), registry=reg)
        wal.append("op", {})
        wal.append("op", {})
        wal.append("txn", {})
        assert wal._m_appends.value(kind="op") == 2
        assert wal._m_appends.value(kind="txn") == 1
        assert wal._h_fsync.count() == 3
        wal.replay()
        assert wal._m_replayed.total == 3
        text = reg.render_prometheus()
        assert "wal_appends_total" in text
        assert "wal_fsync_seconds" in text
        wal.close()


class TestTornTail:
    def test_torn_tail_is_truncated_at_open(self, tmp_path):
        with WriteAheadLog(str(tmp_path)) as wal:
            wal.append("op", {"op": "install", "spec": {"a": 1}})
            wal.append("txn", {"txn_id": 1})
            path = wal.path
        # Simulate a crash mid-write: a partial record with no newline.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "op", "se')

        reg = MetricsRegistry()
        wal2 = WriteAheadLog(str(tmp_path), registry=reg)
        records = wal2.replay()
        assert [r["kind"] for r in records] == ["op", "txn"]
        assert wal2._m_torn.total == 1
        # New appends after truncation stay reachable on the next replay
        # (this is why truncation must happen at open, not at read).
        wal2.append("snapshot", {"window_epoch": 2})
        wal2.close()
        records = WriteAheadLog(str(tmp_path)).replay()
        assert [r["kind"] for r in records] == ["op", "txn", "snapshot"]
        assert [r["seq"] for r in records] == [1, 2, 3]

    def test_garbage_line_stops_replay(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append("op", {"n": 1})
        wal.close()
        with open(wal.path, "a", encoding="utf-8") as fh:
            fh.write("not json at all\n")
            fh.write(json.dumps({"kind": "op", "seq": 3,
                                 "payload": {"n": 3}}) + "\n")
        # The unreachable-after-garbage tail is discarded wholesale.
        wal2 = WriteAheadLog(str(tmp_path))
        assert [r["payload"] for r in wal2.replay()] == [{"n": 1}]
        wal2.close()

    def test_empty_directory_replays_nothing(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        assert wal.replay() == []
        assert not os.path.exists(wal.path) or \
            os.path.getsize(wal.path) == 0
        wal.close()


class TestTxnIntegration:
    def test_committed_transactions_append_txn_records(self, tmp_path):
        dep = build_deployment(linear(3))
        wal = WriteAheadLog(str(tmp_path))
        dep.controller.txn.wal = wal
        dep.controller.install_query(q("wal.q1"), PARAMS,
                                     path=["s0", "s1", "s2"])
        dep.controller.remove_query("wal.q1")
        records = wal.replay()
        assert [r["kind"] for r in records] == ["txn", "txn"]
        install, remove = (r["payload"] for r in records)
        assert install["op"] == "install"
        assert install["qid"] == "wal.q1"
        assert install["epoch"] == 1
        assert install["rules_staged"] > 0
        assert remove["op"] == "remove"
        assert remove["epoch"] == 2
        wal.close()

    def test_aborted_transactions_write_nothing(self, tmp_path):
        dep = build_deployment(linear(2))
        wal = WriteAheadLog(str(tmp_path))
        dep.controller.txn.wal = wal
        with pytest.raises(Exception):
            dep.controller.install_query(q("wal.bad"), PARAMS,
                                         path=["s0", "nope"])
        assert wal.replay() == []
        wal.close()


class TestFastForward:
    def test_fast_forward_adopts_epoch_and_rebeacons(self):
        dep = build_deployment(linear(3))
        dep.controller.install_query(q("wal.ff"), PARAMS,
                                     path=["s0", "s1", "s2"])
        txn = dep.controller.txn
        assert txn.epoch == 1
        committed = txn.fast_forward(7)
        assert committed == 7
        assert txn.epoch == 7
        assert {s.rule_epoch for s in dep.switches.values()} == {7}

    def test_fast_forward_never_rolls_back(self):
        dep = build_deployment(linear(2))
        dep.controller.install_query(q("wal.ff2"), PARAMS,
                                     path=["s0", "s1"])
        txn = dep.controller.txn
        assert txn.fast_forward(0) == 1
        assert txn.epoch == 1
        assert {s.rule_epoch for s in dep.switches.values()} == {1}
